//! Arena-based XML tree model.
//!
//! A [`Document`] owns every node in a flat arena (`Vec<Node>`), addressed
//! by dense [`NodeId`]s. This gives O(1) navigation in every direction and
//! cache-friendly whole-document scans — the access patterns that dominate
//! annotation workloads, where the system repeatedly sweeps all nodes of a
//! document to apply or clear accessibility labels.
//!
//! Nodes are never physically removed from the arena; deletion marks the
//! subtree as *detached* so that outstanding [`NodeId`]s can be detected as
//! stale instead of silently aliasing new nodes. Documents subject to heavy
//! update churn can be compacted with [`Document::compact`].

use crate::error::{Error, Result};
use std::fmt;

/// Identifier of a node inside one [`Document`] arena.
///
/// Ids are dense indexes and are only meaningful together with the document
/// that produced them. Ids are stable across mutations (deletion detaches a
/// node but does not reuse its slot until [`Document::compact`] runs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(u32);

impl NodeId {
    /// Arena slot of this node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    #[inline]
    pub(crate) fn new(index: usize) -> Self {
        debug_assert!(index <= u32::MAX as usize, "document too large");
        NodeId(index as u32)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// The label of a node: an element name from `Σ` or a data value from `D`
/// (paper §2.1, `λ_T : V_T → Σ ∪ D`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeKind {
    /// An element node with its tag name.
    Element(String),
    /// A text (character-data) node with its value.
    Text(String),
}

/// One node of the arena.
#[derive(Debug, Clone)]
pub struct Node {
    kind: NodeKind,
    parent: Option<NodeId>,
    children: Vec<NodeId>,
    /// Attributes in document order. The native XML backend stores the
    /// accessibility `sign` here.
    attributes: Vec<(String, String)>,
    /// False once the node has been detached by [`Document::remove_subtree`].
    alive: bool,
}

impl Node {
    /// The node's label kind.
    pub fn kind(&self) -> &NodeKind {
        &self.kind
    }
}

/// A rooted, labelled XML tree.
#[derive(Debug, Clone)]
pub struct Document {
    nodes: Vec<Node>,
    root: NodeId,
    alive_count: usize,
}

impl Document {
    /// Create a document consisting only of a root element named `root_name`.
    pub fn new(root_name: impl Into<String>) -> Self {
        let root = Node {
            kind: NodeKind::Element(root_name.into()),
            parent: None,
            children: Vec::new(),
            attributes: Vec::new(),
            alive: true,
        };
        Document { nodes: vec![root], root: NodeId::new(0), alive_count: 1 }
    }

    /// The root element.
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Number of live nodes (elements + text nodes).
    #[inline]
    pub fn len(&self) -> usize {
        self.alive_count
    }

    /// True if the document contains only detached nodes (never the case for
    /// documents built through the public API, which always keep a root).
    pub fn is_empty(&self) -> bool {
        self.alive_count == 0
    }

    /// Total arena slots, including detached nodes. Useful to size
    /// side-tables indexed by [`NodeId::index`].
    #[inline]
    pub fn arena_len(&self) -> usize {
        self.nodes.len()
    }

    fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.index()]
    }

    /// Whether `id` refers to a live (attached) node of this document.
    pub fn is_alive(&self, id: NodeId) -> bool {
        id.index() < self.nodes.len() && self.nodes[id.index()].alive
    }

    /// Append a new element named `name` as the last child of `parent`.
    pub fn add_element(&mut self, parent: NodeId, name: impl Into<String>) -> NodeId {
        self.add_node(parent, NodeKind::Element(name.into()))
    }

    /// Append a new text node with `value` as the last child of `parent`.
    pub fn add_text(&mut self, parent: NodeId, value: impl Into<String>) -> NodeId {
        self.add_node(parent, NodeKind::Text(value.into()))
    }

    fn add_node(&mut self, parent: NodeId, kind: NodeKind) -> NodeId {
        assert!(self.is_alive(parent), "parent {parent} is not a live node");
        let id = NodeId::new(self.nodes.len());
        self.nodes.push(Node {
            kind,
            parent: Some(parent),
            children: Vec::new(),
            attributes: Vec::new(),
            alive: true,
        });
        self.node_mut(parent).children.push(id);
        self.alive_count += 1;
        id
    }

    /// The element name, or `None` for text nodes.
    pub fn name(&self, id: NodeId) -> Option<&str> {
        match &self.node(id).kind {
            NodeKind::Element(n) => Some(n),
            NodeKind::Text(_) => None,
        }
    }

    /// The text value, or `None` for element nodes.
    pub fn text_value(&self, id: NodeId) -> Option<&str> {
        match &self.node(id).kind {
            NodeKind::Element(_) => None,
            NodeKind::Text(v) => Some(v),
        }
    }

    /// The label `λ_T(n)`: element name for elements, value for text nodes.
    pub fn label(&self, id: NodeId) -> &str {
        match &self.node(id).kind {
            NodeKind::Element(n) => n,
            NodeKind::Text(v) => v,
        }
    }

    /// Node kind accessor.
    pub fn kind(&self, id: NodeId) -> &NodeKind {
        &self.node(id).kind
    }

    /// True for element nodes.
    pub fn is_element(&self, id: NodeId) -> bool {
        matches!(self.node(id).kind, NodeKind::Element(_))
    }

    /// True for text nodes.
    pub fn is_text(&self, id: NodeId) -> bool {
        matches!(self.node(id).kind, NodeKind::Text(_))
    }

    /// Parent of `id` (`None` for the root).
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.node(id).parent
    }

    /// Children of `id` in document order.
    pub fn children(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.node(id).children.iter().copied()
    }

    /// Child *elements* of `id` in document order (skips text nodes).
    pub fn child_elements(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.children(id).filter(move |&c| self.is_element(c))
    }

    /// First child element named `name`, if any.
    pub fn first_child_named(&self, id: NodeId, name: &str) -> Option<NodeId> {
        self.children(id).find(|&c| self.name(c) == Some(name))
    }

    /// Concatenated text content of the element's *direct* text children.
    pub fn text_of(&self, id: NodeId) -> String {
        let mut out = String::new();
        for c in self.children(id) {
            if let Some(t) = self.text_value(c) {
                out.push_str(t);
            }
        }
        out
    }

    /// Pre-order iterator over the subtree rooted at `id`, **including** `id`.
    pub fn subtree(&self, id: NodeId) -> Subtree<'_> {
        Subtree { doc: self, stack: vec![id] }
    }

    /// Pre-order iterator over the strict descendants of `id`.
    pub fn descendants(&self, id: NodeId) -> Subtree<'_> {
        let mut stack: Vec<NodeId> = self.node(id).children.clone();
        stack.reverse();
        Subtree { doc: self, stack }
    }

    /// All live nodes in arena order (document order for documents that were
    /// only appended to).
    pub fn all_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId::new).filter(move |&id| self.nodes[id.index()].alive)
    }

    /// All live *element* nodes.
    pub fn all_elements(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.all_nodes().filter(move |&id| self.is_element(id))
    }

    /// Number of nodes in the subtree rooted at `id` (including `id`).
    pub fn subtree_size(&self, id: NodeId) -> usize {
        self.subtree(id).count()
    }

    /// Depth of `id` (root has depth 0).
    pub fn depth(&self, id: NodeId) -> usize {
        let mut d = 0;
        let mut cur = id;
        while let Some(p) = self.parent(cur) {
            d += 1;
            cur = p;
        }
        d
    }

    /// Height of the tree (a single-node document has height 0).
    pub fn height(&self) -> usize {
        let mut max = 0;
        let mut stack = vec![(self.root, 0usize)];
        while let Some((n, d)) = stack.pop() {
            max = max.max(d);
            for c in self.children(n) {
                stack.push((c, d + 1));
            }
        }
        max
    }

    /// True if `ancestor` is a proper ancestor of `id`.
    pub fn is_ancestor(&self, ancestor: NodeId, id: NodeId) -> bool {
        let mut cur = self.parent(id);
        while let Some(p) = cur {
            if p == ancestor {
                return true;
            }
            cur = self.parent(p);
        }
        false
    }

    /// Attribute value, if present.
    pub fn attribute(&self, id: NodeId, name: &str) -> Option<&str> {
        self.node(id)
            .attributes
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// All attributes of the node in document order.
    pub fn attributes(&self, id: NodeId) -> &[(String, String)] {
        &self.node(id).attributes
    }

    /// Insert or replace an attribute. This is the primitive behind the
    /// paper's `xmlac:annotate()` function (§5.2): insert `sign` if absent,
    /// otherwise replace its value.
    pub fn set_attribute(&mut self, id: NodeId, name: impl Into<String>, value: impl Into<String>) {
        let name = name.into();
        let value = value.into();
        let node = self.node_mut(id);
        if let Some(slot) = node.attributes.iter_mut().find(|(n, _)| *n == name) {
            slot.1 = value;
        } else {
            node.attributes.push((name, value));
        }
    }

    /// Remove an attribute; returns its previous value.
    pub fn remove_attribute(&mut self, id: NodeId, name: &str) -> Option<String> {
        let node = self.node_mut(id);
        let pos = node.attributes.iter().position(|(n, _)| n == name)?;
        Some(node.attributes.remove(pos).1)
    }

    /// Detach the subtree rooted at `id` from the document. The root cannot
    /// be removed. Returns the number of nodes detached.
    pub fn remove_subtree(&mut self, id: NodeId) -> Result<usize> {
        if id == self.root {
            return Err(Error::InvalidNode("cannot remove the document root".into()));
        }
        if !self.is_alive(id) {
            return Err(Error::InvalidNode(format!("node {id} is not attached")));
        }
        let parent = self.node(id).parent.expect("non-root nodes have parents");
        let kids = &mut self.node_mut(parent).children;
        let pos = kids.iter().position(|&c| c == id).expect("child listed under parent");
        kids.remove(pos);

        let mut removed = 0;
        let mut stack = vec![id];
        while let Some(n) = stack.pop() {
            let node = self.node_mut(n);
            if !node.alive {
                continue;
            }
            node.alive = false;
            removed += 1;
            stack.extend(node.children.iter().copied());
        }
        self.alive_count -= removed;
        Ok(removed)
    }

    /// Rebuild the arena, dropping detached nodes. Returns a remapping table
    /// from old [`NodeId`] index to new [`NodeId`] (`None` for dropped
    /// slots). All previously handed-out ids are invalidated.
    pub fn compact(&mut self) -> Vec<Option<NodeId>> {
        let mut remap: Vec<Option<NodeId>> = vec![None; self.nodes.len()];
        let mut new_nodes: Vec<Node> = Vec::with_capacity(self.alive_count);
        // Walk in pre-order from the root so document order is preserved.
        let mut stack = vec![self.root];
        let mut order: Vec<NodeId> = Vec::with_capacity(self.alive_count);
        while let Some(n) = stack.pop() {
            order.push(n);
            let kids = &self.nodes[n.index()].children;
            for &c in kids.iter().rev() {
                stack.push(c);
            }
        }
        for &old in &order {
            remap[old.index()] = Some(NodeId::new(new_nodes.len()));
            new_nodes.push(self.nodes[old.index()].clone());
        }
        for node in &mut new_nodes {
            node.parent = node.parent.and_then(|p| remap[p.index()]);
            node.children = node
                .children
                .iter()
                .filter_map(|c| remap[c.index()])
                .collect();
        }
        self.root = remap[self.root.index()].expect("root survives compaction");
        self.alive_count = new_nodes.len();
        self.nodes = new_nodes;
        remap
    }

    /// Count of live element nodes (the unit the paper's coverage metric is
    /// expressed in).
    pub fn element_count(&self) -> usize {
        self.all_elements().count()
    }
}

/// Pre-order subtree iterator. See [`Document::subtree`].
pub struct Subtree<'a> {
    doc: &'a Document,
    stack: Vec<NodeId>,
}

impl Iterator for Subtree<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let id = self.stack.pop()?;
        let kids = &self.doc.node(id).children;
        for &c in kids.iter().rev() {
            self.stack.push(c);
        }
        Some(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Document, NodeId, NodeId, NodeId) {
        let mut d = Document::new("a");
        let b = d.add_element(d.root(), "b");
        let c = d.add_element(d.root(), "c");
        let t = d.add_text(b, "hello");
        (d, b, c, t)
    }

    #[test]
    fn build_and_navigate() {
        let (d, b, c, t) = sample();
        assert_eq!(d.len(), 4);
        assert_eq!(d.name(d.root()), Some("a"));
        assert_eq!(d.parent(b), Some(d.root()));
        assert_eq!(d.parent(d.root()), None);
        assert_eq!(d.children(d.root()).collect::<Vec<_>>(), vec![b, c]);
        assert_eq!(d.text_value(t), Some("hello"));
        assert_eq!(d.label(t), "hello");
        assert_eq!(d.label(b), "b");
        assert!(d.is_element(b) && d.is_text(t));
    }

    #[test]
    fn subtree_preorder() {
        let (d, b, c, t) = sample();
        let order: Vec<NodeId> = d.subtree(d.root()).collect();
        assert_eq!(order, vec![d.root(), b, t, c]);
        let desc: Vec<NodeId> = d.descendants(d.root()).collect();
        assert_eq!(desc, vec![b, t, c]);
        assert_eq!(d.subtree_size(b), 2);
    }

    #[test]
    fn text_of_concatenates_direct_text() {
        let mut d = Document::new("a");
        let b = d.add_element(d.root(), "b");
        d.add_text(b, "x");
        d.add_element(b, "skip");
        d.add_text(b, "y");
        assert_eq!(d.text_of(b), "xy");
        assert_eq!(d.text_of(d.root()), "");
    }

    #[test]
    fn attributes_upsert_semantics() {
        let (mut d, b, _, _) = sample();
        assert_eq!(d.attribute(b, "sign"), None);
        d.set_attribute(b, "sign", "+");
        assert_eq!(d.attribute(b, "sign"), Some("+"));
        d.set_attribute(b, "sign", "-");
        assert_eq!(d.attribute(b, "sign"), Some("-"));
        assert_eq!(d.attributes(b).len(), 1);
        assert_eq!(d.remove_attribute(b, "sign"), Some("-".to_string()));
        assert_eq!(d.attribute(b, "sign"), None);
        assert_eq!(d.remove_attribute(b, "sign"), None);
    }

    #[test]
    fn remove_subtree_detaches_recursively() {
        let (mut d, b, c, t) = sample();
        let removed = d.remove_subtree(b).unwrap();
        assert_eq!(removed, 2);
        assert_eq!(d.len(), 2);
        assert!(!d.is_alive(b));
        assert!(!d.is_alive(t));
        assert!(d.is_alive(c));
        assert_eq!(d.children(d.root()).collect::<Vec<_>>(), vec![c]);
        assert!(d.remove_subtree(b).is_err(), "double removal is an error");
    }

    #[test]
    fn cannot_remove_root() {
        let (mut d, ..) = sample();
        assert!(d.remove_subtree(d.root()).is_err());
    }

    #[test]
    fn compact_preserves_structure() {
        let (mut d, b, c, _) = sample();
        let extra = d.add_element(c, "e");
        d.remove_subtree(b).unwrap();
        let remap = d.compact();
        assert_eq!(d.len(), 3);
        assert_eq!(d.arena_len(), 3);
        assert!(remap[b.index()].is_none());
        let new_c = remap[c.index()].unwrap();
        let new_e = remap[extra.index()].unwrap();
        assert_eq!(d.name(new_c), Some("c"));
        assert_eq!(d.parent(new_e), Some(new_c));
        assert_eq!(d.name(d.root()), Some("a"));
    }

    #[test]
    fn depth_height_ancestor() {
        let (mut d, b, c, t) = sample();
        let e = d.add_element(c, "e");
        assert_eq!(d.depth(d.root()), 0);
        assert_eq!(d.depth(t), 2);
        assert_eq!(d.height(), 2);
        assert!(d.is_ancestor(d.root(), t));
        assert!(d.is_ancestor(b, t));
        assert!(!d.is_ancestor(b, e));
        assert!(!d.is_ancestor(t, b));
    }

    #[test]
    fn element_count_excludes_text() {
        let (d, ..) = sample();
        assert_eq!(d.element_count(), 3);
        assert_eq!(d.len(), 4);
    }
}
