//! A parser for the DTD subset this system uses, the textual form of the
//! schema graphs of Figure 1. Round-trips with
//! [`Schema::to_dtd_string`]:
//!
//! ```
//! use xac_xml::{parse_dtd, Schema};
//!
//! let schema = parse_dtd(
//!     "<!ELEMENT a (b+, c?)>\n<!ELEMENT b (#PCDATA)>\n<!ELEMENT c EMPTY>",
//! ).unwrap();
//! assert_eq!(schema.root(), "a");
//! let again = parse_dtd(&schema.to_dtd_string()).unwrap();
//! assert_eq!(again.to_dtd_string(), schema.to_dtd_string());
//! ```
//!
//! Supported content models: `(#PCDATA)` leaves, `EMPTY`, sequences
//! `(a, b?, c*)` and choices `(a | b?)`. The **first declared element is
//! the root** (the DTD convention the paper's tooling follows). Mixed
//! `,`/`|` groups and nested groups are outside the fragment and
//! rejected.

use crate::error::{Error, Result};
use crate::schema::{ContentModel, ElementType, Occurs, Particle, Schema};
use std::collections::BTreeMap;

/// Parse DTD text into a [`Schema`]. See the module docs for the
/// supported subset.
///
/// Errors cite the offending declaration and its 1-based line, e.g.
/// `line 4: <!ELEMENT dept>: empty particle in '(patients,)'`, so
/// downstream tooling (the `xmlac analyze` verifier in particular) can
/// point at DTD positions instead of reporting a bare failure.
pub fn parse_dtd(text: &str) -> Result<Schema> {
    let mut root: Option<String> = None;
    let mut types: BTreeMap<String, ElementType> = BTreeMap::new();
    // Line of each element's declaration, for duplicate / dangling-ref
    // reporting.
    let mut decl_lines: BTreeMap<String, usize> = BTreeMap::new();

    let mut cursor = 0usize;
    loop {
        // Find the next declaration.
        let Some(found) = text[cursor..].find("<!ELEMENT") else {
            let remainder = text[cursor..].trim();
            if !remainder.is_empty() && !remainder.starts_with("<!--") {
                // Tolerate trailing comments/whitespace only.
                if remainder.contains('<') && !remainder.starts_with("<!--") {
                    let line = line_of(text, cursor + text[cursor..].len() - text[cursor..].trim_start().len());
                    return Err(Error::Schema(format!(
                        "line {line}: unexpected content outside declarations: `{}`",
                        remainder.chars().take(40).collect::<String>()
                    )));
                }
            }
            break;
        };
        let decl_start = cursor + found;
        let line = line_of(text, decl_start);
        let body_start = decl_start + "<!ELEMENT".len();
        let end = text[body_start..].find('>').ok_or_else(|| {
            Error::Schema(format!("line {line}: unterminated <!ELEMENT declaration"))
        })?;
        let body = text[body_start..body_start + end].trim();
        cursor = body_start + end + 1;

        let (name, model_src) = body.split_once(char::is_whitespace).ok_or_else(|| {
            Error::Schema(format!("line {line}: malformed declaration `<!ELEMENT {body}>`"))
        })?;
        let name = name.trim();
        if name.is_empty() || !is_name(name) {
            return Err(Error::Schema(format!(
                "line {line}: invalid element name `{name}` in <!ELEMENT declaration"
            )));
        }
        let content = parse_content_model(model_src.trim()).map_err(|e| match e {
            Error::Schema(msg) => {
                Error::Schema(format!("line {line}: <!ELEMENT {name}>: {msg}"))
            }
            other => other,
        })?;
        if types
            .insert(name.to_string(), ElementType { name: name.to_string(), content })
            .is_some()
        {
            return Err(Error::Schema(format!(
                "line {line}: duplicate declaration of `{name}` (first declared at line {})",
                decl_lines.get(name).copied().unwrap_or(line)
            )));
        }
        decl_lines.insert(name.to_string(), line);
        root.get_or_insert_with(|| name.to_string());
    }

    // Check references here, where declaration positions are known —
    // the builder's own dangling-reference check could only name the
    // missing type, not where it is referenced from.
    for (name, et) in &types {
        let particles = match &et.content {
            ContentModel::Sequence(ps) | ContentModel::Choice(ps) => ps,
            ContentModel::Text | ContentModel::Empty => continue,
        };
        for p in particles {
            if !types.contains_key(&p.name) {
                return Err(Error::Schema(format!(
                    "line {}: <!ELEMENT {name}> references undeclared child `{}`",
                    decl_lines.get(name.as_str()).copied().unwrap_or(0),
                    p.name
                )));
            }
        }
    }

    let root = root.ok_or_else(|| Error::Schema("no <!ELEMENT declarations found".into()))?;
    let mut builder = Schema::builder(root);
    for (name, et) in types {
        builder = match et.content {
            ContentModel::Sequence(ps) => builder.sequence(name, ps),
            ContentModel::Choice(ps) => builder.choice(name, ps),
            ContentModel::Text => builder.text(&[&name]),
            ContentModel::Empty => builder.empty(name),
        };
    }
    builder.build()
}

/// 1-based line number of a byte offset.
fn line_of(text: &str, offset: usize) -> usize {
    text.as_bytes()[..offset.min(text.len())].iter().filter(|&&b| b == b'\n').count() + 1
}

fn is_name(s: &str) -> bool {
    let mut chars = s.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.'))
}

fn parse_content_model(src: &str) -> Result<ContentModel> {
    if src.eq_ignore_ascii_case("EMPTY") {
        return Ok(ContentModel::Empty);
    }
    let inner = src
        .strip_prefix('(')
        .and_then(|s| s.strip_suffix(')'))
        .ok_or_else(|| Error::Schema(format!("content model `{src}` must be parenthesized or EMPTY")))?
        .trim();
    if inner == "#PCDATA" {
        return Ok(ContentModel::Text);
    }
    if inner.contains('(') {
        return Err(Error::Schema(format!(
            "nested groups are outside the supported fragment: `{src}`"
        )));
    }
    let has_comma = inner.contains(',');
    let has_pipe = inner.contains('|');
    if has_comma && has_pipe {
        return Err(Error::Schema(format!(
            "mixed `,` and `|` in one group is not supported: `{src}`"
        )));
    }
    let sep = if has_pipe { '|' } else { ',' };
    let mut particles = Vec::new();
    for item in inner.split(sep) {
        let item = item.trim();
        if item.is_empty() {
            return Err(Error::Schema(format!("empty particle in `{src}`")));
        }
        let (name, occurs) = match item.chars().last() {
            Some('?') => (&item[..item.len() - 1], Occurs::Optional),
            Some('*') => (&item[..item.len() - 1], Occurs::Star),
            Some('+') => (&item[..item.len() - 1], Occurs::Plus),
            _ => (item, Occurs::One),
        };
        let name = name.trim();
        if !is_name(name) {
            return Err(Error::Schema(format!("invalid particle name `{item}`")));
        }
        particles.push(Particle::new(name, occurs));
    }
    if has_pipe {
        Ok(ContentModel::Choice(particles))
    } else {
        Ok(ContentModel::Sequence(particles))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HOSPITAL_DTD: &str = r#"
<!ELEMENT hospital (dept+)>
<!ELEMENT dept (patients, staffinfo)>
<!ELEMENT patients (patient*)>
<!ELEMENT staffinfo (staff*)>
<!ELEMENT patient (psn, name, treatment?)>
<!ELEMENT treatment (regular? | experimental?)>
<!ELEMENT regular (med, bill)>
<!ELEMENT experimental (test, bill)>
<!ELEMENT staff (nurse | doctor)>
<!ELEMENT nurse (sid, name, phone)>
<!ELEMENT doctor (sid, name, phone)>
<!ELEMENT psn (#PCDATA)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT med (#PCDATA)>
<!ELEMENT bill (#PCDATA)>
<!ELEMENT test (#PCDATA)>
<!ELEMENT sid (#PCDATA)>
<!ELEMENT phone (#PCDATA)>
"#;

    #[test]
    fn parses_figure1_dtd() {
        let s = parse_dtd(HOSPITAL_DTD).unwrap();
        assert_eq!(s.root(), "hospital");
        assert_eq!(s.type_count(), 18);
        assert!(s.is_text_type("med"));
        assert!(!s.is_recursive());
        assert_eq!(
            s.child_types("patient"),
            vec!["psn", "name", "treatment"]
        );
        match &s.element_type("treatment").unwrap().content {
            ContentModel::Choice(ps) => {
                assert_eq!(ps.len(), 2);
                assert_eq!(ps[0].occurs, Occurs::Optional);
            }
            other => panic!("treatment should be a choice, got {other:?}"),
        }
    }

    #[test]
    fn round_trips_with_to_dtd_string() {
        let s = parse_dtd(HOSPITAL_DTD).unwrap();
        let rendered = s.to_dtd_string();
        let again = parse_dtd(&rendered).unwrap();
        assert_eq!(again.to_dtd_string(), rendered);
        assert_eq!(again.root(), s.root());
    }

    #[test]
    fn first_declaration_is_root() {
        let s = parse_dtd("<!ELEMENT z (a*)>\n<!ELEMENT a (#PCDATA)>").unwrap();
        assert_eq!(s.root(), "z");
    }

    #[test]
    fn empty_and_occurrences() {
        let s = parse_dtd(
            "<!ELEMENT r (a, b?, c*, d+)>\n\
             <!ELEMENT a EMPTY>\n<!ELEMENT b EMPTY>\n<!ELEMENT c EMPTY>\n<!ELEMENT d EMPTY>",
        )
        .unwrap();
        match &s.element_type("r").unwrap().content {
            ContentModel::Sequence(ps) => {
                let occ: Vec<Occurs> = ps.iter().map(|p| p.occurs).collect();
                assert_eq!(occ, vec![Occurs::One, Occurs::Optional, Occurs::Star, Occurs::Plus]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_dtds() {
        assert!(parse_dtd("").is_err(), "no declarations");
        assert!(parse_dtd("<!ELEMENT a (b,c|d)>").is_err(), "mixed separators");
        assert!(parse_dtd("<!ELEMENT a ((b))>\n<!ELEMENT b EMPTY>").is_err(), "nested group");
        assert!(parse_dtd("<!ELEMENT a (missing)>").is_err(), "undeclared reference");
        assert!(parse_dtd("<!ELEMENT a (b)>\n<!ELEMENT a EMPTY>\n<!ELEMENT b EMPTY>").is_err(), "duplicate");
        assert!(parse_dtd("<!ELEMENT a (b)").is_err(), "unterminated");
        assert!(parse_dtd("<!ELEMENT 9bad EMPTY>").is_err(), "bad name");
        assert!(parse_dtd("<!ELEMENT a b>").is_err(), "unparenthesized model");
    }

    fn err_of(src: &str) -> String {
        match parse_dtd(src) {
            Err(e) => e.to_string(),
            Ok(_) => panic!("`{src}` should not parse"),
        }
    }

    #[test]
    fn empty_content_model_cites_line_and_declaration() {
        let msg = err_of("<!ELEMENT a (b)>\n<!ELEMENT b ()>");
        assert!(msg.contains("line 2"), "{msg}");
        assert!(msg.contains("<!ELEMENT b>"), "{msg}");
        assert!(msg.contains("empty particle"), "{msg}");
    }

    #[test]
    fn duplicate_declaration_cites_both_lines() {
        let msg = err_of("<!ELEMENT a (b)>\n<!ELEMENT b EMPTY>\n<!ELEMENT a EMPTY>");
        assert!(msg.contains("line 3"), "{msg}");
        assert!(msg.contains("duplicate declaration of `a`"), "{msg}");
        assert!(msg.contains("first declared at line 1"), "{msg}");
    }

    #[test]
    fn undeclared_child_reference_cites_the_referencing_declaration() {
        let msg = err_of("<!ELEMENT a (b)>\n<!ELEMENT b (missing?)>");
        assert!(msg.contains("line 2"), "{msg}");
        assert!(msg.contains("<!ELEMENT b>"), "{msg}");
        assert!(msg.contains("undeclared child `missing`"), "{msg}");
    }

    #[test]
    fn unterminated_and_malformed_declarations_cite_lines() {
        let msg = err_of("<!ELEMENT a (b)>\n<!ELEMENT b (c)");
        assert!(msg.contains("line 2") && msg.contains("unterminated"), "{msg}");
        let msg = err_of("<!ELEMENT a (b)>\n<!ELEMENT b>");
        assert!(msg.contains("line 2") && msg.contains("malformed"), "{msg}");
        let msg = err_of("\n\n<!ELEMENT 9bad EMPTY>");
        assert!(msg.contains("line 3") && msg.contains("invalid element name"), "{msg}");
        let msg = err_of("<!ELEMENT a (b,c|d)>\n<!ELEMENT b EMPTY>");
        assert!(msg.contains("line 1") && msg.contains("mixed"), "{msg}");
    }

    #[test]
    fn validates_documents_parsed_from_dtd() {
        let s = parse_dtd(HOSPITAL_DTD).unwrap();
        let doc = crate::Document::parse_str(
            "<hospital><dept><patients>\
             <patient><psn>1</psn><name>n</name></patient>\
             </patients><staffinfo/></dept></hospital>",
        )
        .unwrap();
        s.validate(&doc).unwrap();
    }
}
