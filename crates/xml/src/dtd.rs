//! A parser for the DTD subset this system uses, the textual form of the
//! schema graphs of Figure 1. Round-trips with
//! [`Schema::to_dtd_string`]:
//!
//! ```
//! use xac_xml::{parse_dtd, Schema};
//!
//! let schema = parse_dtd(
//!     "<!ELEMENT a (b+, c?)>\n<!ELEMENT b (#PCDATA)>\n<!ELEMENT c EMPTY>",
//! ).unwrap();
//! assert_eq!(schema.root(), "a");
//! let again = parse_dtd(&schema.to_dtd_string()).unwrap();
//! assert_eq!(again.to_dtd_string(), schema.to_dtd_string());
//! ```
//!
//! Supported content models: `(#PCDATA)` leaves, `EMPTY`, sequences
//! `(a, b?, c*)` and choices `(a | b?)`. The **first declared element is
//! the root** (the DTD convention the paper's tooling follows). Mixed
//! `,`/`|` groups and nested groups are outside the fragment and
//! rejected.

use crate::error::{Error, Result};
use crate::schema::{ContentModel, ElementType, Occurs, Particle, Schema};
use std::collections::BTreeMap;

/// Parse DTD text into a [`Schema`]. See the module docs for the
/// supported subset.
pub fn parse_dtd(text: &str) -> Result<Schema> {
    let mut root: Option<String> = None;
    let mut types: BTreeMap<String, ElementType> = BTreeMap::new();

    let mut rest = text;
    loop {
        // Find the next declaration.
        let Some(start) = rest.find("<!ELEMENT") else {
            let remainder = rest.trim();
            if !remainder.is_empty() && !remainder.starts_with("<!--") {
                // Tolerate trailing comments/whitespace only.
                if remainder.contains('<') && !remainder.starts_with("<!--") {
                    return Err(Error::Schema(format!(
                        "unexpected content outside declarations: `{}`",
                        remainder.chars().take(40).collect::<String>()
                    )));
                }
            }
            break;
        };
        rest = &rest[start + "<!ELEMENT".len()..];
        let end = rest
            .find('>')
            .ok_or_else(|| Error::Schema("unterminated <!ELEMENT declaration".into()))?;
        let body = rest[..end].trim();
        rest = &rest[end + 1..];

        let (name, model_src) = body
            .split_once(char::is_whitespace)
            .ok_or_else(|| Error::Schema(format!("malformed declaration `{body}`")))?;
        let name = name.trim();
        if name.is_empty() || !is_name(name) {
            return Err(Error::Schema(format!("invalid element name `{name}`")));
        }
        let content = parse_content_model(model_src.trim())?;
        if types
            .insert(name.to_string(), ElementType { name: name.to_string(), content })
            .is_some()
        {
            return Err(Error::Schema(format!("duplicate declaration of `{name}`")));
        }
        root.get_or_insert_with(|| name.to_string());
    }

    let root = root.ok_or_else(|| Error::Schema("no <!ELEMENT declarations found".into()))?;
    let mut builder = Schema::builder(root);
    for (name, et) in types {
        builder = match et.content {
            ContentModel::Sequence(ps) => builder.sequence(name, ps),
            ContentModel::Choice(ps) => builder.choice(name, ps),
            ContentModel::Text => builder.text(&[&name]),
            ContentModel::Empty => builder.empty(name),
        };
    }
    builder.build()
}

fn is_name(s: &str) -> bool {
    let mut chars = s.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.'))
}

fn parse_content_model(src: &str) -> Result<ContentModel> {
    if src.eq_ignore_ascii_case("EMPTY") {
        return Ok(ContentModel::Empty);
    }
    let inner = src
        .strip_prefix('(')
        .and_then(|s| s.strip_suffix(')'))
        .ok_or_else(|| Error::Schema(format!("content model `{src}` must be parenthesized or EMPTY")))?
        .trim();
    if inner == "#PCDATA" {
        return Ok(ContentModel::Text);
    }
    if inner.contains('(') {
        return Err(Error::Schema(format!(
            "nested groups are outside the supported fragment: `{src}`"
        )));
    }
    let has_comma = inner.contains(',');
    let has_pipe = inner.contains('|');
    if has_comma && has_pipe {
        return Err(Error::Schema(format!(
            "mixed `,` and `|` in one group is not supported: `{src}`"
        )));
    }
    let sep = if has_pipe { '|' } else { ',' };
    let mut particles = Vec::new();
    for item in inner.split(sep) {
        let item = item.trim();
        if item.is_empty() {
            return Err(Error::Schema(format!("empty particle in `{src}`")));
        }
        let (name, occurs) = match item.chars().last() {
            Some('?') => (&item[..item.len() - 1], Occurs::Optional),
            Some('*') => (&item[..item.len() - 1], Occurs::Star),
            Some('+') => (&item[..item.len() - 1], Occurs::Plus),
            _ => (item, Occurs::One),
        };
        let name = name.trim();
        if !is_name(name) {
            return Err(Error::Schema(format!("invalid particle name `{item}`")));
        }
        particles.push(Particle::new(name, occurs));
    }
    if has_pipe {
        Ok(ContentModel::Choice(particles))
    } else {
        Ok(ContentModel::Sequence(particles))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HOSPITAL_DTD: &str = r#"
<!ELEMENT hospital (dept+)>
<!ELEMENT dept (patients, staffinfo)>
<!ELEMENT patients (patient*)>
<!ELEMENT staffinfo (staff*)>
<!ELEMENT patient (psn, name, treatment?)>
<!ELEMENT treatment (regular? | experimental?)>
<!ELEMENT regular (med, bill)>
<!ELEMENT experimental (test, bill)>
<!ELEMENT staff (nurse | doctor)>
<!ELEMENT nurse (sid, name, phone)>
<!ELEMENT doctor (sid, name, phone)>
<!ELEMENT psn (#PCDATA)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT med (#PCDATA)>
<!ELEMENT bill (#PCDATA)>
<!ELEMENT test (#PCDATA)>
<!ELEMENT sid (#PCDATA)>
<!ELEMENT phone (#PCDATA)>
"#;

    #[test]
    fn parses_figure1_dtd() {
        let s = parse_dtd(HOSPITAL_DTD).unwrap();
        assert_eq!(s.root(), "hospital");
        assert_eq!(s.type_count(), 18);
        assert!(s.is_text_type("med"));
        assert!(!s.is_recursive());
        assert_eq!(
            s.child_types("patient"),
            vec!["psn", "name", "treatment"]
        );
        match &s.element_type("treatment").unwrap().content {
            ContentModel::Choice(ps) => {
                assert_eq!(ps.len(), 2);
                assert_eq!(ps[0].occurs, Occurs::Optional);
            }
            other => panic!("treatment should be a choice, got {other:?}"),
        }
    }

    #[test]
    fn round_trips_with_to_dtd_string() {
        let s = parse_dtd(HOSPITAL_DTD).unwrap();
        let rendered = s.to_dtd_string();
        let again = parse_dtd(&rendered).unwrap();
        assert_eq!(again.to_dtd_string(), rendered);
        assert_eq!(again.root(), s.root());
    }

    #[test]
    fn first_declaration_is_root() {
        let s = parse_dtd("<!ELEMENT z (a*)>\n<!ELEMENT a (#PCDATA)>").unwrap();
        assert_eq!(s.root(), "z");
    }

    #[test]
    fn empty_and_occurrences() {
        let s = parse_dtd(
            "<!ELEMENT r (a, b?, c*, d+)>\n\
             <!ELEMENT a EMPTY>\n<!ELEMENT b EMPTY>\n<!ELEMENT c EMPTY>\n<!ELEMENT d EMPTY>",
        )
        .unwrap();
        match &s.element_type("r").unwrap().content {
            ContentModel::Sequence(ps) => {
                let occ: Vec<Occurs> = ps.iter().map(|p| p.occurs).collect();
                assert_eq!(occ, vec![Occurs::One, Occurs::Optional, Occurs::Star, Occurs::Plus]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_dtds() {
        assert!(parse_dtd("").is_err(), "no declarations");
        assert!(parse_dtd("<!ELEMENT a (b,c|d)>").is_err(), "mixed separators");
        assert!(parse_dtd("<!ELEMENT a ((b))>\n<!ELEMENT b EMPTY>").is_err(), "nested group");
        assert!(parse_dtd("<!ELEMENT a (missing)>").is_err(), "undeclared reference");
        assert!(parse_dtd("<!ELEMENT a (b)>\n<!ELEMENT a EMPTY>\n<!ELEMENT b EMPTY>").is_err(), "duplicate");
        assert!(parse_dtd("<!ELEMENT a (b)").is_err(), "unterminated");
        assert!(parse_dtd("<!ELEMENT 9bad EMPTY>").is_err(), "bad name");
        assert!(parse_dtd("<!ELEMENT a b>").is_err(), "unparenthesized model");
    }

    #[test]
    fn validates_documents_parsed_from_dtd() {
        let s = parse_dtd(HOSPITAL_DTD).unwrap();
        let doc = crate::Document::parse_str(
            "<hospital><dept><patients>\
             <patient><psn>1</psn><name>n</name></patient>\
             </patients><staffinfo/></dept></hospital>",
        )
        .unwrap();
        s.validate(&doc).unwrap();
    }
}
