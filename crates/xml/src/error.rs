//! Error type shared by the parsing, validation and schema analyses.

use std::fmt;

/// Errors produced by this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The XML text was malformed. Carries a byte offset and a message.
    Parse { offset: usize, message: String },
    /// A document did not conform to a [`crate::Schema`].
    Validation(String),
    /// A schema was internally inconsistent (e.g. a particle references an
    /// undeclared element type).
    Schema(String),
    /// A node id did not belong to the document, or pointed at a detached
    /// node.
    InvalidNode(String),
}

impl Error {
    pub(crate) fn parse(offset: usize, message: impl Into<String>) -> Self {
        Error::Parse { offset, message: message.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse { offset, message } => {
                write!(f, "XML parse error at byte {offset}: {message}")
            }
            Error::Validation(m) => write!(f, "validation error: {m}"),
            Error::Schema(m) => write!(f, "schema error: {m}"),
            Error::InvalidNode(m) => write!(f, "invalid node: {m}"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;
