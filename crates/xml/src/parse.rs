//! A small, strict XML parser covering the subset the xmlac system uses:
//! one root element, nested elements with attributes, character data,
//! comments, an optional XML declaration, and the five predefined entities.
//!
//! Whitespace-only text between elements is dropped: the paper's tree model
//! (§2.1) labels nodes with element names and *data values*, so indentation
//! has no counterpart in the model.

use crate::error::{Error, Result};
use crate::model::{Document, NodeId};

/// Parse an XML string into a [`Document`].
pub fn parse(input: &str) -> Result<Document> {
    Parser::new(input).parse_document()
}

impl Document {
    /// Parse an XML string. See [`parse`].
    pub fn parse_str(input: &str) -> Result<Document> {
        parse(input)
    }
}

struct Parser<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser { input, bytes: input.as_bytes(), pos: 0 }
    }

    fn err(&self, message: impl Into<String>) -> Error {
        Error::parse(self.pos, message)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s)
    }

    fn bump(&mut self, n: usize) {
        self.pos += n;
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, s: &str) -> Result<()> {
        if self.starts_with(s) {
            self.bump(s.len());
            Ok(())
        } else {
            Err(self.err(format!("expected `{s}`")))
        }
    }

    fn skip_misc(&mut self) -> Result<()> {
        loop {
            self.skip_ws();
            if self.starts_with("<?") {
                let end = self.input[self.pos..]
                    .find("?>")
                    .ok_or_else(|| self.err("unterminated processing instruction"))?;
                self.bump(end + 2);
            } else if self.starts_with("<!--") {
                let end = self.input[self.pos..]
                    .find("-->")
                    .ok_or_else(|| self.err("unterminated comment"))?;
                self.bump(end + 3);
            } else if self.starts_with("<!DOCTYPE") {
                // Skip a (non-nested) DOCTYPE declaration.
                let end = self.input[self.pos..]
                    .find('>')
                    .ok_or_else(|| self.err("unterminated DOCTYPE"))?;
                self.bump(end + 1);
            } else {
                return Ok(());
            }
        }
    }

    fn parse_document(&mut self) -> Result<Document> {
        self.skip_misc()?;
        if self.peek() != Some(b'<') {
            return Err(self.err("expected root element"));
        }
        let doc = self.parse_root()?;
        self.skip_misc()?;
        if self.pos != self.input.len() {
            return Err(self.err("trailing content after root element"));
        }
        Ok(doc)
    }

    fn parse_name(&mut self) -> Result<&'a str> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            let ok = b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b':');
            if !ok {
                break;
            }
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        Ok(&self.input[start..self.pos])
    }

    /// Parse the root element and build the document around it.
    fn parse_root(&mut self) -> Result<Document> {
        self.expect("<")?;
        let name = self.parse_name()?.to_string();
        let mut doc = Document::new(name.clone());
        let root = doc.root();
        self.parse_attributes(&mut doc, root)?;
        self.skip_ws();
        if self.starts_with("/>") {
            self.bump(2);
            return Ok(doc);
        }
        self.expect(">")?;
        self.parse_content(&mut doc, root)?;
        self.parse_close_tag(&name)?;
        Ok(doc)
    }

    fn parse_attributes(&mut self, doc: &mut Document, node: NodeId) -> Result<()> {
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'>') | Some(b'/') | None => return Ok(()),
                _ => {}
            }
            let name = self.parse_name()?.to_string();
            self.skip_ws();
            self.expect("=")?;
            self.skip_ws();
            let quote = match self.peek() {
                Some(q @ (b'"' | b'\'')) => q,
                _ => return Err(self.err("expected quoted attribute value")),
            };
            self.bump(1);
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == quote {
                    break;
                }
                self.pos += 1;
            }
            if self.peek() != Some(quote) {
                return Err(self.err("unterminated attribute value"));
            }
            let raw = &self.input[start..self.pos];
            self.bump(1);
            doc.set_attribute(node, name, decode_entities(raw, start)?);
        }
    }

    fn parse_element(&mut self, doc: &mut Document, parent: NodeId) -> Result<()> {
        self.expect("<")?;
        let name = self.parse_name()?.to_string();
        let node = doc.add_element(parent, name.clone());
        self.parse_attributes(doc, node)?;
        self.skip_ws();
        if self.starts_with("/>") {
            self.bump(2);
            return Ok(());
        }
        self.expect(">")?;
        self.parse_content(doc, node)?;
        self.parse_close_tag(&name)
    }

    fn parse_close_tag(&mut self, name: &str) -> Result<()> {
        self.expect("</")?;
        let close = self.parse_name()?;
        if close != name {
            return Err(self.err(format!("mismatched close tag: expected `{name}`, found `{close}`")));
        }
        self.skip_ws();
        self.expect(">")
    }

    fn parse_content(&mut self, doc: &mut Document, parent: NodeId) -> Result<()> {
        loop {
            if self.starts_with("</") {
                return Ok(());
            }
            if self.starts_with("<!--") {
                let end = self.input[self.pos..]
                    .find("-->")
                    .ok_or_else(|| self.err("unterminated comment"))?;
                self.bump(end + 3);
                continue;
            }
            match self.peek() {
                None => return Err(self.err("unexpected end of input inside element")),
                Some(b'<') => self.parse_element(doc, parent)?,
                Some(_) => {
                    let start = self.pos;
                    while let Some(b) = self.peek() {
                        if b == b'<' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let raw = &self.input[start..self.pos];
                    let text = decode_entities(raw, start)?;
                    if !text.trim().is_empty() {
                        doc.add_text(parent, text.trim().to_string());
                    }
                }
            }
        }
    }
}

fn decode_entities(raw: &str, offset: usize) -> Result<String> {
    if !raw.contains('&') {
        return Ok(raw.to_string());
    }
    let mut out = String::with_capacity(raw.len());
    let mut rest = raw;
    while let Some(amp) = rest.find('&') {
        out.push_str(&rest[..amp]);
        rest = &rest[amp..];
        let semi = rest
            .find(';')
            .ok_or_else(|| Error::parse(offset, "unterminated entity reference"))?;
        let entity = &rest[1..semi];
        match entity {
            "amp" => out.push('&'),
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            other => {
                return Err(Error::parse(offset, format!("unknown entity `&{other};`")));
            }
        }
        rest = &rest[semi + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_document() {
        let d = parse("<a><b>hi</b><c/></a>").unwrap();
        let root = d.root();
        assert_eq!(d.name(root), Some("a"));
        let kids: Vec<_> = d.children(root).collect();
        assert_eq!(kids.len(), 2);
        assert_eq!(d.name(kids[0]), Some("b"));
        assert_eq!(d.text_of(kids[0]), "hi");
        assert_eq!(d.name(kids[1]), Some("c"));
    }

    #[test]
    fn parses_attributes_and_entities() {
        let d = parse(r#"<a sign="+" note='x&amp;y'><b>1 &lt; 2</b></a>"#).unwrap();
        let root = d.root();
        assert_eq!(d.attribute(root, "sign"), Some("+"));
        assert_eq!(d.attribute(root, "note"), Some("x&y"));
        let b = d.first_child_named(root, "b").unwrap();
        assert_eq!(d.text_of(b), "1 < 2");
    }

    #[test]
    fn skips_prolog_comments_doctype() {
        let d = parse("<?xml version=\"1.0\"?><!DOCTYPE a><!-- c --><a><!-- inner --><b/></a>")
            .unwrap();
        assert_eq!(d.children(d.root()).count(), 1);
    }

    #[test]
    fn whitespace_only_text_dropped() {
        let d = parse("<a>\n  <b> x </b>\n</a>").unwrap();
        let root = d.root();
        assert_eq!(d.children(root).count(), 1);
        let b = d.first_child_named(root, "b").unwrap();
        assert_eq!(d.text_of(b), "x");
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("<a><b></a></b>").is_err(), "mismatched tags");
        assert!(parse("<a>").is_err(), "unterminated element");
        assert!(parse("<a/><b/>").is_err(), "two roots");
        assert!(parse("plain").is_err(), "no element");
        assert!(parse("<a attr=unquoted/>").is_err(), "unquoted attribute");
        assert!(parse("<a>&bogus;</a>").is_err(), "unknown entity");
    }

    #[test]
    fn self_closing_root() {
        let d = parse("<lonely/>").unwrap();
        assert_eq!(d.len(), 1);
        assert_eq!(d.name(d.root()), Some("lonely"));
    }
}
