//! DTD-style schema graphs.
//!
//! The paper (Figure 1) represents an XML DTD as a node-and-edge-labelled
//! graph: nodes are element types, edges capture the content model of a
//! type (a *sequence* or a *choice* of children), and edge labels carry the
//! occurrence indicators `*` (zero or more), `+` (one or more) and `?`
//! (optional).
//!
//! Besides acting as a vocabulary for document validation, the schema graph
//! powers two static analyses the system depends on:
//!
//! * **recursion detection** — the paper removes recursive element types
//!   from xmlgen's schema because ShreX-style shredding and the
//!   descendant-axis rewrite require finitely many label paths;
//! * **path enumeration** — [`Schema::paths_between`] returns every
//!   child-axis label path connecting two element types, which is exactly
//!   the "replace descendant axes inside predicates with relative paths
//!   using only the child axis" rewrite of §5.3 (finite thanks to the
//!   non-recursive schema).

use crate::error::{Error, Result};
use crate::model::{Document, NodeId};
use std::collections::{BTreeMap, BTreeSet};

/// Occurrence indicator attached to a particle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Occurs {
    /// Exactly one (no indicator in the DTD).
    One,
    /// `?` — zero or one.
    Optional,
    /// `*` — zero or more.
    Star,
    /// `+` — one or more.
    Plus,
}

impl Occurs {
    /// Minimum number of occurrences.
    pub fn min(self) -> usize {
        match self {
            Occurs::One | Occurs::Plus => 1,
            Occurs::Optional | Occurs::Star => 0,
        }
    }

    /// Maximum number of occurrences (`None` = unbounded).
    pub fn max(self) -> Option<usize> {
        match self {
            Occurs::One | Occurs::Optional => Some(1),
            Occurs::Star | Occurs::Plus => None,
        }
    }

    /// DTD rendering of the indicator.
    pub fn symbol(self) -> &'static str {
        match self {
            Occurs::One => "",
            Occurs::Optional => "?",
            Occurs::Star => "*",
            Occurs::Plus => "+",
        }
    }
}

/// A reference to a child element type, with its occurrence indicator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Particle {
    /// Name of the child element type.
    pub name: String,
    /// Occurrence indicator.
    pub occurs: Occurs,
}

impl Particle {
    /// Shorthand constructor.
    pub fn new(name: impl Into<String>, occurs: Occurs) -> Self {
        Particle { name: name.into(), occurs }
    }
}

/// The content model of an element type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContentModel {
    /// Ordered sequence of particles (solid edges in Figure 1).
    Sequence(Vec<Particle>),
    /// Choice between particles (dashed edges in Figure 1). A choice in
    /// which every branch is optional also admits empty content — this is
    /// how the paper's `treatment` element ("it can also be unspecified")
    /// is modelled.
    Choice(Vec<Particle>),
    /// Character data only (a leaf type whose value comes from `D`).
    Text,
    /// No content at all.
    Empty,
}

/// An element type declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElementType {
    /// The element name (a label from `Σ`).
    pub name: String,
    /// Its content model.
    pub content: ContentModel,
}

/// A complete schema: a root element type plus declarations.
#[derive(Debug, Clone)]
pub struct Schema {
    root: String,
    types: BTreeMap<String, ElementType>,
}

impl Schema {
    /// Start building a schema with the given root element type.
    pub fn builder(root: impl Into<String>) -> SchemaBuilder {
        SchemaBuilder { root: root.into(), types: BTreeMap::new() }
    }

    /// The root element type name.
    pub fn root(&self) -> &str {
        &self.root
    }

    /// Look up a declaration.
    pub fn element_type(&self, name: &str) -> Option<&ElementType> {
        self.types.get(name)
    }

    /// Whether `name` is declared.
    pub fn contains(&self, name: &str) -> bool {
        self.types.contains_key(name)
    }

    /// All declared element type names, sorted.
    pub fn type_names(&self) -> impl Iterator<Item = &str> {
        self.types.keys().map(|s| s.as_str())
    }

    /// Number of declared element types.
    pub fn type_count(&self) -> usize {
        self.types.len()
    }

    /// The child element types that may appear directly under `name`.
    pub fn child_types(&self, name: &str) -> Vec<&str> {
        match self.types.get(name).map(|t| &t.content) {
            Some(ContentModel::Sequence(ps)) | Some(ContentModel::Choice(ps)) => {
                ps.iter().map(|p| p.name.as_str()).collect()
            }
            _ => Vec::new(),
        }
    }

    /// True if `name` is a leaf type carrying character data.
    pub fn is_text_type(&self, name: &str) -> bool {
        matches!(self.types.get(name).map(|t| &t.content), Some(ContentModel::Text))
    }

    /// Detect whether any element type can (transitively) contain itself.
    pub fn is_recursive(&self) -> bool {
        fn visit<'a>(
            schema: &'a Schema,
            name: &'a str,
            on_stack: &mut BTreeSet<&'a str>,
            done: &mut BTreeSet<&'a str>,
        ) -> bool {
            if on_stack.contains(name) {
                return true;
            }
            if done.contains(name) {
                return false;
            }
            on_stack.insert(name);
            for child in schema.child_types(name) {
                if visit(schema, child, on_stack, done) {
                    return true;
                }
            }
            on_stack.remove(name);
            done.insert(name);
            false
        }

        let mut on_stack = BTreeSet::new();
        let mut done = BTreeSet::new();
        self.types
            .keys()
            .any(|n| visit(self, n.as_str(), &mut on_stack, &mut done))
    }

    /// All element types reachable from the root (including the root).
    pub fn reachable_types(&self) -> BTreeSet<&str> {
        let mut seen = BTreeSet::new();
        let mut stack = vec![self.root.as_str()];
        while let Some(n) = stack.pop() {
            if !seen.insert(n) {
                continue;
            }
            for c in self.child_types(n) {
                stack.push(c);
            }
        }
        seen
    }

    /// Every child-axis label path from `from` (exclusive) down to an
    /// element named `to` (inclusive). Used by the §5.3 descendant-axis
    /// rewrite: `.//experimental` under `patient` expands to the finite set
    /// of child paths `treatment/experimental`, …
    ///
    /// **Cutoff behavior:** errors *immediately* if the schema is
    /// recursive (the path set would be infinite) — the recursion check
    /// runs before any enumeration, so the call terminates without
    /// enumerating a single path rather than hanging or returning a
    /// silently truncated set. Callers that need a best-effort answer on
    /// recursive schemas (the §5.3 rewrite in `xac-xpath`) treat the
    /// error as "abstain" and fall back to the unrewritten path. On
    /// non-recursive schemas the enumeration is bounded by the DAG of
    /// element types: every returned path visits each type at most once
    /// per distinct parent chain, so the result is finite and complete.
    pub fn paths_between(&self, from: &str, to: &str) -> Result<Vec<Vec<String>>> {
        if self.is_recursive() {
            return Err(Error::Schema(
                "paths_between requires a non-recursive schema".into(),
            ));
        }
        let mut out = Vec::new();
        let mut prefix: Vec<String> = Vec::new();
        self.collect_paths(from, to, &mut prefix, &mut out);
        Ok(out)
    }

    fn collect_paths(
        &self,
        at: &str,
        to: &str,
        prefix: &mut Vec<String>,
        out: &mut Vec<Vec<String>>,
    ) {
        for child in self.child_types(at) {
            prefix.push(child.to_string());
            if child == to {
                out.push(prefix.clone());
            }
            self.collect_paths(child, to, prefix, out);
            prefix.pop();
        }
    }

    /// Every label path from the root (inclusive) to elements named `to`.
    ///
    /// Same cutoff behavior as [`Schema::paths_between`], with one
    /// special case: asking for the root itself (`to == root`) answers
    /// `[[root]]` directly and therefore succeeds even on recursive
    /// schemas.
    pub fn paths_from_root(&self, to: &str) -> Result<Vec<Vec<String>>> {
        if self.root == to {
            return Ok(vec![vec![self.root.clone()]]);
        }
        let mut paths = self.paths_between(&self.root, to)?;
        for p in &mut paths {
            p.insert(0, self.root.clone());
        }
        Ok(paths)
    }

    /// Whether an element named `to` can occur (strictly) below `from`.
    pub fn reachable(&self, from: &str, to: &str) -> bool {
        let mut seen = BTreeSet::new();
        let mut stack: Vec<&str> = self.child_types(from);
        while let Some(n) = stack.pop() {
            if n == to {
                return true;
            }
            if !seen.insert(n) {
                continue;
            }
            stack.extend(self.child_types(n));
        }
        false
    }

    /// Validate a document against this schema: the root type matches, every
    /// element is declared, and each element's children match its content
    /// model.
    pub fn validate(&self, doc: &Document) -> Result<()> {
        let root_name = doc
            .name(doc.root())
            .ok_or_else(|| Error::Validation("root is not an element".into()))?;
        if root_name != self.root {
            return Err(Error::Validation(format!(
                "root element is `{root_name}`, schema expects `{}`",
                self.root
            )));
        }
        for node in doc.all_elements() {
            self.validate_element(doc, node)?;
        }
        Ok(())
    }

    fn validate_element(&self, doc: &Document, node: NodeId) -> Result<()> {
        let name = doc.name(node).expect("element");
        let decl = self.types.get(name).ok_or_else(|| {
            Error::Validation(format!("element `{name}` is not declared in the schema"))
        })?;
        let child_names: Vec<&str> = doc
            .children(node)
            .map(|c| doc.name(c).unwrap_or("#text"))
            .collect();
        let has_text = child_names.contains(&"#text");
        let element_children: Vec<&str> =
            child_names.iter().copied().filter(|n| *n != "#text").collect();

        match &decl.content {
            ContentModel::Text => {
                if !element_children.is_empty() {
                    return Err(Error::Validation(format!(
                        "text-only element `{name}` has element children"
                    )));
                }
                Ok(())
            }
            ContentModel::Empty => {
                if !child_names.is_empty() {
                    return Err(Error::Validation(format!(
                        "empty element `{name}` has content"
                    )));
                }
                Ok(())
            }
            ContentModel::Sequence(ps) => {
                if has_text {
                    return Err(Error::Validation(format!(
                        "element `{name}` with sequence content has text children"
                    )));
                }
                if match_sequence(ps, &element_children) {
                    Ok(())
                } else {
                    Err(Error::Validation(format!(
                        "children of `{name}` ({element_children:?}) do not match its sequence model"
                    )))
                }
            }
            ContentModel::Choice(ps) => {
                if has_text {
                    return Err(Error::Validation(format!(
                        "element `{name}` with choice content has text children"
                    )));
                }
                if match_choice(ps, &element_children) {
                    Ok(())
                } else {
                    Err(Error::Validation(format!(
                        "children of `{name}` ({element_children:?}) do not match its choice model"
                    )))
                }
            }
        }
    }

    /// Render the schema as DTD-like text, for documentation and debugging.
    pub fn to_dtd_string(&self) -> String {
        let mut out = String::new();
        // Root first, then the rest alphabetically.
        let mut names: Vec<&String> = self.types.keys().collect();
        names.sort_by_key(|n| (n.as_str() != self.root, n.as_str()));
        for name in names {
            let t = &self.types[name];
            let body = match &t.content {
                ContentModel::Text => "(#PCDATA)".to_string(),
                ContentModel::Empty => "EMPTY".to_string(),
                ContentModel::Sequence(ps) => render_particles(ps, ", "),
                ContentModel::Choice(ps) => render_particles(ps, " | "),
            };
            out.push_str(&format!("<!ELEMENT {name} {body}>\n"));
        }
        out
    }
}

fn render_particles(ps: &[Particle], sep: &str) -> String {
    let inner: Vec<String> =
        ps.iter().map(|p| format!("{}{}", p.name, p.occurs.symbol())).collect();
    format!("({})", inner.join(sep))
}

/// Match `names` against an ordered sequence of particles with backtracking.
fn match_sequence(particles: &[Particle], names: &[&str]) -> bool {
    fn go(particles: &[Particle], names: &[&str], pi: usize, ni: usize) -> bool {
        if pi == particles.len() {
            return ni == names.len();
        }
        let p = &particles[pi];
        // Count how many consecutive occurrences of p.name start at ni.
        let mut run = 0;
        while ni + run < names.len() && names[ni + run] == p.name {
            run += 1;
        }
        let min = p.occurs.min();
        let max = p.occurs.max().unwrap_or(run).min(run);
        if run < min {
            return false;
        }
        // Try consuming from max down to min (greedy first).
        let mut take = max;
        loop {
            if go(particles, names, pi + 1, ni + take) {
                return true;
            }
            if take == min {
                return false;
            }
            take -= 1;
        }
    }
    go(particles, names, 0, 0)
}

/// Match `names` against a choice: one branch is selected and all children
/// must belong to it (respecting its occurrence bounds). Empty content is
/// allowed when some branch admits zero occurrences.
fn match_choice(particles: &[Particle], names: &[&str]) -> bool {
    if names.is_empty() {
        return particles.iter().any(|p| p.occurs.min() == 0);
    }
    particles.iter().any(|p| {
        names.iter().all(|n| *n == p.name)
            && names.len() >= p.occurs.min()
            && p.occurs.max().is_none_or(|m| names.len() <= m)
    })
}

/// Incremental schema construction.
pub struct SchemaBuilder {
    root: String,
    types: BTreeMap<String, ElementType>,
}

impl SchemaBuilder {
    /// Declare an element with sequence content.
    pub fn sequence(
        mut self,
        name: impl Into<String>,
        particles: Vec<Particle>,
    ) -> Self {
        let name = name.into();
        self.types.insert(
            name.clone(),
            ElementType { name, content: ContentModel::Sequence(particles) },
        );
        self
    }

    /// Declare an element with choice content.
    pub fn choice(mut self, name: impl Into<String>, particles: Vec<Particle>) -> Self {
        let name = name.into();
        self.types.insert(
            name.clone(),
            ElementType { name, content: ContentModel::Choice(particles) },
        );
        self
    }

    /// Declare one or more text-only leaf elements.
    pub fn text(mut self, names: &[&str]) -> Self {
        for &n in names {
            self.types.insert(
                n.to_string(),
                ElementType { name: n.to_string(), content: ContentModel::Text },
            );
        }
        self
    }

    /// Declare an element with no content.
    pub fn empty(mut self, name: impl Into<String>) -> Self {
        let name = name.into();
        self.types
            .insert(name.clone(), ElementType { name, content: ContentModel::Empty });
        self
    }

    /// Finish, checking that the root and every referenced type is declared.
    pub fn build(self) -> Result<Schema> {
        let schema = Schema { root: self.root, types: self.types };
        if !schema.contains(&schema.root) {
            return Err(Error::Schema(format!(
                "root element type `{}` is not declared",
                schema.root
            )));
        }
        for t in schema.types.values() {
            if let ContentModel::Sequence(ps) | ContentModel::Choice(ps) = &t.content {
                for p in ps {
                    if !schema.contains(&p.name) {
                        return Err(Error::Schema(format!(
                            "element `{}` references undeclared type `{}`",
                            t.name, p.name
                        )));
                    }
                }
            }
        }
        Ok(schema)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;
    use Occurs::*;

    /// A directly recursive schema: `section` contains `section*`.
    fn recursive_schema() -> Schema {
        Schema::builder("book")
            .sequence("book", vec![Particle::new("section", Plus)])
            .sequence(
                "section",
                vec![Particle::new("title", One), Particle::new("section", Star)],
            )
            .text(&["title"])
            .build()
            .unwrap()
    }

    /// A mutually recursive schema: `a → b → a`.
    fn mutually_recursive_schema() -> Schema {
        Schema::builder("r")
            .sequence("r", vec![Particle::new("a", Star)])
            .sequence("a", vec![Particle::new("b", Optional)])
            .sequence("b", vec![Particle::new("a", Optional)])
            .build()
            .unwrap()
    }

    #[test]
    fn paths_between_refuses_recursive_schemas_promptly() {
        for schema in [recursive_schema(), mutually_recursive_schema()] {
            assert!(schema.is_recursive());
            // The recursion check runs before enumeration: the call must
            // terminate with an error, never hang on the infinite path
            // set. Well under a second even in debug builds.
            let start = std::time::Instant::now();
            let err = schema.paths_between(schema.root(), "title").unwrap_err();
            assert!(err.to_string().contains("non-recursive"), "{err}");
            let err = schema.paths_from_root("section").unwrap_err();
            assert!(err.to_string().contains("non-recursive"), "{err}");
            assert!(
                start.elapsed() < std::time::Duration::from_secs(1),
                "cutoff must be immediate, took {:?}",
                start.elapsed()
            );
        }
    }

    #[test]
    fn paths_from_root_to_root_succeeds_even_on_recursive_schemas() {
        let schema = recursive_schema();
        assert_eq!(schema.paths_from_root("book").unwrap(), vec![vec!["book".to_string()]]);
    }

    #[test]
    fn paths_enumeration_is_bounded_on_dag_schemas() {
        // A diamond-shaped (non-recursive) schema with multiple routes:
        // the enumeration is finite and complete, one path per route.
        let schema = Schema::builder("r")
            .sequence("r", vec![Particle::new("x", One), Particle::new("y", One)])
            .sequence("x", vec![Particle::new("leaf", Optional)])
            .sequence("y", vec![Particle::new("leaf", Optional)])
            .text(&["leaf"])
            .build()
            .unwrap();
        assert!(!schema.is_recursive());
        let paths = schema.paths_from_root("leaf").unwrap();
        assert_eq!(paths.len(), 2, "{paths:?}");
        assert!(paths.contains(&vec!["r".into(), "x".into(), "leaf".into()]));
        assert!(paths.contains(&vec!["r".into(), "y".into(), "leaf".into()]));
    }

    /// The hospital schema of the paper's Figure 1.
    fn hospital_schema() -> Schema {
        Schema::builder("hospital")
            .sequence("hospital", vec![Particle::new("dept", Plus)])
            .sequence(
                "dept",
                vec![Particle::new("patients", One), Particle::new("staffinfo", One)],
            )
            .sequence("patients", vec![Particle::new("patient", Star)])
            .sequence("staffinfo", vec![Particle::new("staff", Star)])
            .sequence(
                "patient",
                vec![
                    Particle::new("psn", One),
                    Particle::new("name", One),
                    Particle::new("treatment", Optional),
                ],
            )
            .choice(
                "treatment",
                vec![
                    Particle::new("regular", Optional),
                    Particle::new("experimental", Optional),
                ],
            )
            .sequence(
                "regular",
                vec![Particle::new("med", One), Particle::new("bill", One)],
            )
            .sequence(
                "experimental",
                vec![Particle::new("test", One), Particle::new("bill", One)],
            )
            .choice(
                "staff",
                vec![Particle::new("nurse", One), Particle::new("doctor", One)],
            )
            .sequence(
                "nurse",
                vec![
                    Particle::new("sid", One),
                    Particle::new("name", One),
                    Particle::new("phone", One),
                ],
            )
            .sequence(
                "doctor",
                vec![
                    Particle::new("sid", One),
                    Particle::new("name", One),
                    Particle::new("phone", One),
                ],
            )
            .text(&["psn", "name", "med", "bill", "test", "sid", "phone"])
            .build()
            .unwrap()
    }

    #[test]
    fn builder_rejects_dangling_references() {
        let r = Schema::builder("a")
            .sequence("a", vec![Particle::new("missing", One)])
            .build();
        assert!(r.is_err());
        let r = Schema::builder("nope").text(&["a"]).build();
        assert!(r.is_err());
    }

    #[test]
    fn hospital_schema_is_not_recursive() {
        let s = hospital_schema();
        assert!(!s.is_recursive());
        assert_eq!(s.type_count(), 18);
    }

    #[test]
    fn recursion_detected() {
        let s = Schema::builder("a")
            .sequence("a", vec![Particle::new("b", Star)])
            .sequence("b", vec![Particle::new("a", Optional)])
            .build()
            .unwrap();
        assert!(s.is_recursive());
        assert!(s.paths_between("a", "b").is_err());
    }

    #[test]
    fn paths_between_expands_descendant_axis() {
        let s = hospital_schema();
        let paths = s.paths_between("patient", "experimental").unwrap();
        assert_eq!(paths, vec![vec!["treatment".to_string(), "experimental".to_string()]]);
        // `bill` occurs under both treatment kinds: two paths.
        let bill = s.paths_between("patient", "bill").unwrap();
        assert_eq!(bill.len(), 2);
        // `name` occurs under patient and under both staff kinds.
        let name = s.paths_between("dept", "name").unwrap();
        assert_eq!(name.len(), 3);
    }

    #[test]
    fn paths_from_root() {
        let s = hospital_schema();
        let p = s.paths_from_root("patient").unwrap();
        assert_eq!(
            p,
            vec![vec![
                "hospital".to_string(),
                "dept".to_string(),
                "patients".to_string(),
                "patient".to_string()
            ]]
        );
        assert_eq!(s.paths_from_root("hospital").unwrap(), vec![vec!["hospital".to_string()]]);
    }

    #[test]
    fn reachability() {
        let s = hospital_schema();
        assert!(s.reachable("hospital", "med"));
        assert!(s.reachable("patient", "bill"));
        assert!(!s.reachable("staff", "med"));
        assert!(!s.reachable("med", "hospital"));
    }

    #[test]
    fn validates_conforming_document() {
        let s = hospital_schema();
        let doc = parse(
            "<hospital><dept><patients>\
             <patient><psn>033</psn><name>john doe</name>\
             <treatment><regular><med>enoxaparin</med><bill>700</bill></regular></treatment>\
             </patient>\
             <patient><psn>099</psn><name>joy smith</name></patient>\
             </patients><staffinfo>\
             <staff><doctor><sid>1</sid><name>dr</name><phone>555</phone></doctor></staff>\
             </staffinfo></dept></hospital>",
        )
        .unwrap();
        s.validate(&doc).unwrap();
    }

    #[test]
    fn empty_treatment_is_valid_choice() {
        let s = hospital_schema();
        let doc = parse(
            "<hospital><dept><patients>\
             <patient><psn>1</psn><name>n</name><treatment/></patient>\
             </patients><staffinfo/></dept></hospital>",
        )
        .unwrap();
        s.validate(&doc).unwrap();
    }

    #[test]
    fn rejects_nonconforming_documents() {
        let s = hospital_schema();
        // Missing mandatory psn.
        let doc = parse(
            "<hospital><dept><patients><patient><name>n</name></patient></patients>\
             <staffinfo/></dept></hospital>",
        )
        .unwrap();
        assert!(s.validate(&doc).is_err());
        // Both treatment kinds present violates the choice.
        let doc = parse(
            "<hospital><dept><patients><patient><psn>1</psn><name>n</name>\
             <treatment><regular><med>m</med><bill>1</bill></regular>\
             <experimental><test>t</test><bill>2</bill></experimental></treatment>\
             </patient></patients><staffinfo/></dept></hospital>",
        )
        .unwrap();
        assert!(s.validate(&doc).is_err());
        // Undeclared element.
        let doc = parse("<hospital><dept><bogus/></dept></hospital>").unwrap();
        assert!(s.validate(&doc).is_err());
        // Wrong root.
        let doc = parse("<dept/>").unwrap();
        assert!(s.validate(&doc).is_err());
    }

    #[test]
    fn sequence_matcher_handles_occurrences() {
        use super::match_sequence;
        let ps = vec![
            Particle::new("a", Plus),
            Particle::new("b", Optional),
            Particle::new("c", Star),
        ];
        assert!(match_sequence(&ps, &["a"]));
        assert!(match_sequence(&ps, &["a", "a", "b", "c", "c"]));
        assert!(match_sequence(&ps, &["a", "c"]));
        assert!(!match_sequence(&ps, &["b", "c"]), "missing mandatory a");
        assert!(!match_sequence(&ps, &["a", "b", "b"]), "b at most once");
        assert!(!match_sequence(&ps, &["a", "d"]), "unknown child");
    }

    #[test]
    fn dtd_rendering_mentions_every_type() {
        let s = hospital_schema();
        let dtd = s.to_dtd_string();
        assert!(dtd.starts_with("<!ELEMENT hospital (dept+)>"));
        assert!(dtd.contains("<!ELEMENT treatment (regular? | experimental?)>"));
        assert!(dtd.contains("<!ELEMENT med (#PCDATA)>"));
        assert_eq!(dtd.lines().count(), s.type_count());
    }
}
