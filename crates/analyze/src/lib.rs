//! # xac-analyze
//!
//! Static verification of access-control policies *before* they reach
//! the annotator. The re-annotation machinery of the paper is built on
//! static analysis — rule expansion, XPath containment, dependency
//! closure — and this crate composes those same ingredients into a
//! production lint gate over the policies themselves:
//!
//! | code    | pass               | severity | needs schema |
//! |---------|--------------------|----------|--------------|
//! | `XA001` | dead rule          | error    | yes          |
//! | `XA002` | shadowed rule      | warning  | no (sharper with) |
//! | `XA003` | `+`/`−` conflict   | info     | no (sharper with) |
//! | `XA004` | coverage gap       | info     | yes          |
//! | `XA005` | trigger audit      | info / error | yes      |
//!
//! ```
//! use xac_analyze::{Analyzer, Severity};
//! use xac_policy::Policy;
//! use xac_xml::parse_dtd;
//!
//! let schema = parse_dtd("<!ELEMENT r (a?)>\n<!ELEMENT a (#PCDATA)>").unwrap();
//! let src = "default deny\nconflict deny-overrides\nR1 allow //a\nR2 allow //b\n";
//! let policy = Policy::parse(src).unwrap();
//! let report = Analyzer::new(&policy)
//!     .with_schema(&schema)
//!     .with_source(src)
//!     .run();
//! // `//b` matches nothing under the schema: dead rule, an error.
//! assert_eq!(report.count(Severity::Error), 1);
//! assert_eq!(report.exit_code(false), 5);
//! ```
//!
//! The surface is `xmlac analyze` in the CLI; `scripts/ci.sh` runs it
//! with `--deny warn` over every checked-in policy.

pub mod audit;
pub mod diagnostic;
pub mod graph;
pub mod incremental;
pub mod repair;
pub mod verifier;

pub use audit::{update_corpus, AuditConfig};
pub use diagnostic::{AuditSummary, Code, Diagnostic, Report, Severity};
pub use graph::AnalysisGraph;
pub use incremental::IncrementalAnalyzer;
pub use repair::{synthesize, unified_diff, Repair, RepairConfig, RepairKind, RepairOutcome};
pub use verifier::Analyzer;
