//! The incremental analysis engine: re-verify only what an edit touched.
//!
//! A full [`crate::Analyzer`] run is quadratic in the rule count (D2/D3
//! test every opposite-effect pair) plus an audit sweep per corpus
//! update. The repair synthesizer re-analyzes the policy once per
//! candidate edit, so paying the full cost each time would make
//! verification the bottleneck. [`IncrementalAnalyzer`] keeps every
//! pass result in caches keyed by FNV fingerprints
//! ([`crate::graph::AnalysisGraph`]) and persistent containment
//! oracles, so after [`IncrementalAnalyzer::set_policy`] with a
//! single-rule edit only the edited rule's dependency region is
//! re-verified:
//!
//! * **D1** — schema variants are memoized per resource; an unchanged
//!   rule's deadness is a cache lookup.
//! * **D2/D3** — findings are cached per `(rule_fp, region_fp)`. The
//!   region fingerprint covers everything those passes can observe
//!   (member rules, their order, the Table 2 row, the schema), so a
//!   hit re-emits the previous findings verbatim and only the edited
//!   region re-runs its containment scans — and even those hit the
//!   persistent oracle for pairs not involving the edited rule.
//! * **D4** — recomputed from the variants cache (linear, no fresh
//!   specializations).
//! * **D5** — the trigger replay reuses memoized rule/update
//!   expansions and the persistent schema-blind oracle. The closure
//!   invariant (leg 2 of [`crate::audit`]) is checked honestly per
//!   update; the fast-vs-definitional differential (leg 1) is skipped
//!   because both legs of the full audit call the same
//!   [`xac_policy::trigger::trigger_with_expansions`] — it is an
//!   implementation self-test that cannot diverge, so `divergences`
//!   is reported as the full audit would: zero unless the closure
//!   check fails.
//!
//! The produced [`Report`] is identical to
//! `Analyzer::new(&policy).with_schema(schema).run()` — same
//! diagnostics (messages, order, severities), same audit summary —
//! just cheaper to reach. Cache traffic is published on the
//! `xac_analyze_incremental_hits_total` / `_reruns_total` counters and
//! every run is wrapped in an `analyze.incremental` span.

use crate::audit::{self, AuditConfig};
use crate::diagnostic::{AuditSummary, Code, Diagnostic, Report, Severity};
use crate::graph::AnalysisGraph;
use crate::verifier::{
    conflict_diag, coverage_gap_diag, dead_rule_diag, degenerate_shadow_diag,
    discarded_effect, end_label, shadow_diag, shadow_roles, witness_type,
};
use std::collections::{BTreeSet, HashMap};
use xac_policy::trigger::{expand_update, trigger_with_expansions};
use xac_policy::{DependencyGraph, Effect, Policy};
use xac_xml::Schema;
use xac_xpath::{expand, schema_variants, ContainmentOracle, Path};

/// A reusable analysis session over successive versions of one policy
/// under one (optional) schema.
pub struct IncrementalAnalyzer {
    policy: Policy,
    schema: Option<Schema>,
    policy_name: String,
    schema_name: Option<String>,
    audit: AuditConfig,
    /// Answers D2/D3 containment and disjointness; schema-aware.
    aware_oracle: ContainmentOracle,
    /// Answers the D5 trigger replay; schema-blind like the production
    /// fast path ([`xac_policy::PolicyAnalysis::build`]).
    blind_oracle: ContainmentOracle,
    /// `resource → schema_variants(resource, schema)`; the schema is
    /// fixed per session, so the resource text is the whole key.
    variants: HashMap<String, Vec<Path>>,
    /// `resource → expand(resource, schema)` for the trigger replay.
    expansions: HashMap<String, Vec<Path>>,
    /// The D5 update corpus and its per-update expansions (fixed per
    /// schema and corpus cap).
    corpus: Vec<Path>,
    corpus_expansions: Vec<Vec<Path>>,
    /// D2 finding per `(rule_fp, region_fp)` (None = not shadowed).
    d2_cache: HashMap<(u64, u64), Option<Diagnostic>>,
    /// D3 findings per `(rule_fp, region_fp)` for the allow anchor.
    d3_cache: HashMap<(u64, u64), Vec<Diagnostic>>,
    /// Cache traffic of the most recent [`IncrementalAnalyzer::analyze`].
    last_hits: u64,
    last_reruns: u64,
}

impl IncrementalAnalyzer {
    /// A session over `policy`, optionally schema-aware.
    pub fn new(policy: Policy, schema: Option<&Schema>) -> IncrementalAnalyzer {
        let mut engine = IncrementalAnalyzer {
            policy,
            schema: schema.cloned(),
            policy_name: "<policy>".into(),
            schema_name: None,
            audit: AuditConfig::default(),
            aware_oracle: match schema {
                Some(s) => ContainmentOracle::with_schema(s.clone()),
                None => ContainmentOracle::new(),
            },
            blind_oracle: ContainmentOracle::new(),
            variants: HashMap::new(),
            expansions: HashMap::new(),
            corpus: Vec::new(),
            corpus_expansions: Vec::new(),
            d2_cache: HashMap::new(),
            d3_cache: HashMap::new(),
            last_hits: 0,
            last_reruns: 0,
        };
        engine.refresh_corpus();
        engine
    }

    /// Display names used in reports (usually file paths).
    pub fn named(mut self, policy: impl Into<String>, schema: Option<String>) -> Self {
        self.policy_name = policy.into();
        self.schema_name = schema;
        self
    }

    /// Cap the D5 audit corpus at `n` update paths.
    pub fn audit_updates(mut self, n: usize) -> Self {
        self.audit.max_updates = n;
        self.refresh_corpus();
        self
    }

    /// The current policy.
    pub fn policy(&self) -> &Policy {
        &self.policy
    }

    /// The session schema, if any.
    pub fn schema(&self) -> Option<&Schema> {
        self.schema.as_ref()
    }

    /// Replace the policy under analysis. Caches survive: the next
    /// [`IncrementalAnalyzer::analyze`] re-runs only the passes whose
    /// fingerprinted inputs actually changed.
    pub fn set_policy(&mut self, policy: Policy) {
        self.policy = policy;
    }

    /// `(hits, reruns)` of the most recent run: per-rule pass results
    /// served from cache vs recomputed.
    pub fn last_cache_traffic(&self) -> (u64, u64) {
        (self.last_hits, self.last_reruns)
    }

    fn refresh_corpus(&mut self) {
        match &self.schema {
            Some(schema) => {
                self.corpus = audit::update_corpus(schema, self.audit.max_updates);
                self.corpus_expansions = self
                    .corpus
                    .iter()
                    .map(|u| expand_update(u, Some(schema)))
                    .collect();
            }
            None => {
                self.corpus.clear();
                self.corpus_expansions.clear();
            }
        }
    }

    /// Run all five passes, reusing every cached result whose inputs
    /// are fingerprint-identical. The report matches a fresh
    /// [`crate::Analyzer`] run (schema-enabled, no source text, no
    /// document) byte for byte.
    pub fn analyze(&mut self) -> Report {
        let _span = xac_obs::span("analyze.incremental");
        let mut hits = 0u64;
        let mut reruns = 0u64;
        let mut report = Report {
            policy_name: self.policy_name.clone(),
            schema_name: self.schema_name.clone(),
            ..Report::default()
        };

        // D1: deadness from the memoized variants.
        let mut dead: BTreeSet<usize> = BTreeSet::new();
        if let Some(schema) = &self.schema {
            for (i, rule) in self.policy.rules.iter().enumerate() {
                let variants = cached_variants(
                    &mut self.variants,
                    &rule.resource,
                    schema,
                    &mut hits,
                    &mut reruns,
                );
                if variants.is_empty() {
                    dead.insert(i);
                    report.diagnostics.push(dead_rule_diag(rule, schema, None));
                }
            }
        }

        let graph =
            AnalysisGraph::build(&self.policy, self.schema.as_ref(), &self.aware_oracle, &dead);
        let n = self.policy.rules.len();
        let region_fps: Vec<u64> = (0..n).map(|i| graph.region_fp(i)).collect();

        // D2: shadowed rules.
        let ds = self.policy.default_semantics;
        let cr = self.policy.conflict_resolution;
        if let Some(effect) = discarded_effect(ds, cr) {
            for (i, rule) in self.policy.rules.iter().enumerate() {
                if rule.effect == effect && !dead.contains(&i) {
                    report.diagnostics.push(degenerate_shadow_diag(ds, cr, rule, None));
                }
            }
        } else {
            let (shadowed_effect, winner_effect) =
                shadow_roles(ds, cr).expect("non-degenerate row");
            for (i, rule) in self.policy.rules.iter().enumerate() {
                if rule.effect != shadowed_effect || dead.contains(&i) {
                    continue;
                }
                let key = (graph.rule_fp(i), region_fps[i]);
                let diag = match self.d2_cache.get(&key) {
                    Some(cached) => {
                        hits += 1;
                        cached.clone()
                    }
                    None => {
                        reruns += 1;
                        // Scan the region in index order with the full
                        // pass's winner predicate: every containment
                        // winner is a region member, so the first match
                        // here is the first match globally.
                        let winner = graph.region(i).into_iter().find(|&j| {
                            let w = &self.policy.rules[j];
                            w.effect == winner_effect
                                && !graph.is_dead(j)
                                && self
                                    .aware_oracle
                                    .contained_in_schema_aware(&rule.resource, &w.resource)
                        });
                        let diag = winner.map(|j| {
                            shadow_diag(rule, &self.policy.rules[j], cr, None, None, None)
                        });
                        self.d2_cache.insert(key, diag.clone());
                        diag
                    }
                };
                if let Some(d) = diag {
                    report.diagnostics.push(d);
                }
            }
        }

        // D3: conflicts, anchored per allow rule.
        for (i, a) in self.policy.rules.iter().enumerate() {
            if a.effect != Effect::Allow || dead.contains(&i) {
                continue;
            }
            let key = (graph.rule_fp(i), region_fps[i]);
            let diags = match self.d3_cache.get(&key) {
                Some(cached) => {
                    hits += 1;
                    cached.clone()
                }
                None => {
                    reruns += 1;
                    // Deny partners are exactly the deny members of the
                    // region that pass the overlap test; rules outside
                    // the region fail it by construction.
                    let mut diags = Vec::new();
                    for j in graph.region(i) {
                        let d = &self.policy.rules[j];
                        if d.effect != Effect::Deny || graph.is_dead(j) {
                            continue;
                        }
                        let a_in_d =
                            self.aware_oracle.contained_in_schema_aware(&a.resource, &d.resource);
                        let d_in_a =
                            self.aware_oracle.contained_in_schema_aware(&d.resource, &a.resource);
                        let definite = a_in_d || d_in_a;
                        if !definite
                            && self.aware_oracle.disjoint_schema_aware(&a.resource, &d.resource)
                        {
                            continue;
                        }
                        let witness =
                            witness_type(&a.resource, &d.resource, self.schema.as_ref())
                                .unwrap_or_else(|| "*".into());
                        diags.push(conflict_diag(a, d, definite, &witness, cr, None, None));
                    }
                    self.d3_cache.insert(key, diags.clone());
                    diags
                }
            };
            report.diagnostics.extend(diags);
        }

        // D4: coverage, linear over the memoized variants.
        if let Some(schema) = self.schema.as_ref() {
            coverage(&self.policy, schema, &mut self.variants, &dead, &mut report);
        }

        // D5: the trigger-soundness audit from cached expansions.
        if self.schema.is_some() {
            let summary = self.audit_replay(&mut report, &mut hits, &mut reruns);
            report.audit = Some(summary);
        }

        xac_obs::counter("xac_analyze_incremental_hits_total").add(hits);
        xac_obs::counter("xac_analyze_incremental_reruns_total").add(reruns);
        self.last_hits = hits;
        self.last_reruns = reruns;
        report
    }

    /// D5 static leg: replay the Fig. 8 trigger for every corpus update
    /// from cached expansions and check the dependency-closure
    /// invariant. Produces the same summary and findings as
    /// [`crate::audit::run`] without a document.
    fn audit_replay(
        &mut self,
        report: &mut Report,
        hits: &mut u64,
        reruns: &mut u64,
    ) -> AuditSummary {
        let schema = self.schema.as_ref().expect("audit needs a schema");
        let expansions: Vec<Vec<Path>> = self
            .policy
            .rules
            .iter()
            .map(|r| {
                let key = r.resource.to_string();
                match self.expansions.get(&key) {
                    Some(e) => {
                        *hits += 1;
                        e.clone()
                    }
                    None => {
                        *reruns += 1;
                        let e = expand(&r.resource, Some(schema));
                        self.expansions.insert(key, e.clone());
                        e
                    }
                }
            })
            .collect();
        // The blind graph the production fast path uses; its pairwise
        // containment pass re-answers from the persistent oracle.
        let graph = DependencyGraph::build_with_oracle(&self.policy, &self.blind_oracle);
        let mut summary =
            AuditSummary { updates: self.corpus.len(), ..AuditSummary::default() };
        for (u, u_expansions) in self.corpus.iter().zip(&self.corpus_expansions) {
            let fast: BTreeSet<usize> =
                trigger_with_expansions(&expansions, &graph, u_expansions, &self.blind_oracle)
                    .into_iter()
                    .collect();
            if let Some(&i) = fast
                .iter()
                .find(|&&i| graph.depends(i).iter().any(|d| !fast.contains(d)))
            {
                summary.divergences += 1;
                report.diagnostics.push(Diagnostic::new(
                    Code::TriggerAudit,
                    Severity::Error,
                    format!(
                        "closure violation on update `{u}`: rule {} is selected but its \
                         dependency component is not fully selected",
                        self.policy.rules[i].id,
                    ),
                ));
            }
            summary.selected_total += fast.len();
        }
        report.diagnostics.push(audit::summary_diagnostic(&summary));
        summary
    }
}

/// D4 against the variants cache. `analyze` populated the cache for
/// every live rule already, so this never computes a specialization.
fn coverage(
    policy: &Policy,
    schema: &Schema,
    variants: &mut HashMap<String, Vec<Path>>,
    dead: &BTreeSet<usize>,
    report: &mut Report,
) {
    let mut covered: BTreeSet<String> = BTreeSet::new();
    for (i, rule) in policy.rules.iter().enumerate() {
        if dead.contains(&i) {
            continue;
        }
        let vs = variants
            .entry(rule.resource.to_string())
            .or_insert_with(|| schema_variants(&rule.resource, schema));
        for variant in vs.iter() {
            match end_label(variant) {
                Some(name) => {
                    covered.insert(name);
                }
                // A wildcard end may sign any type: no gap provable.
                None => return,
            }
        }
    }
    let gaps: Vec<&str> = schema
        .reachable_types()
        .into_iter()
        .filter(|t| !covered.contains(*t))
        .collect();
    if gaps.is_empty() {
        return;
    }
    report.diagnostics.push(coverage_gap_diag(
        &gaps,
        schema.reachable_types().len(),
        policy.default_semantics,
    ));
}

/// The memoized `schema_variants`, counting cache traffic.
fn cached_variants<'a>(
    cache: &'a mut HashMap<String, Vec<Path>>,
    resource: &Path,
    schema: &Schema,
    hits: &mut u64,
    reruns: &mut u64,
) -> &'a [Path] {
    let key = resource.to_string();
    if cache.contains_key(&key) {
        *hits += 1;
    } else {
        *reruns += 1;
        cache.insert(key.clone(), schema_variants(resource, schema));
    }
    cache.get(&key).expect("just inserted").as_slice()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verifier::Analyzer;
    use xac_policy::policy::hospital_policy;
    use xac_xml::parse_dtd;

    fn hospital_schema() -> Schema {
        parse_dtd(include_str!("../../../data/hospital.dtd")).unwrap()
    }

    fn full_report(policy: &Policy, schema: &Schema) -> Report {
        Analyzer::new(policy).with_schema(schema).named("p.pol", None).run()
    }

    #[test]
    fn matches_the_full_analyzer_byte_for_byte() {
        let schema = hospital_schema();
        for src in [
            include_str!("../../../examples/policies/flawed_all5.pol"),
            "default deny\nconflict deny-overrides\nR1 allow //patient\n",
            "default allow\nconflict deny-overrides\nA1 allow //patient\nD1 deny //regular\n",
            "default deny\nconflict allow-overrides\nA1 allow //patient\nD1 deny //nurse\n",
        ] {
            let policy = Policy::parse(src).unwrap();
            let mut engine = IncrementalAnalyzer::new(policy.clone(), Some(&schema))
                .named("p.pol", None);
            let incremental = engine.analyze();
            let full = full_report(&policy, &schema);
            assert_eq!(incremental.to_json(), full.to_json(), "on policy:\n{src}");
            assert_eq!(incremental.to_text(), full.to_text(), "on policy:\n{src}");
        }
    }

    #[test]
    fn unrelated_edit_is_answered_from_cache() {
        let schema = hospital_schema();
        let base = "default deny\nconflict deny-overrides\n\
                    R1 allow //patient\nR2 deny //patient[treatment]\n\
                    R3 allow //nurse/phone\nR4 allow //doctor/name\n";
        let policy = Policy::parse(base).unwrap();
        let mut engine = IncrementalAnalyzer::new(policy, Some(&schema));
        engine.analyze();

        // Editing R4 must not re-run the R1/R2 region.
        let edited = Policy::parse(
            "default deny\nconflict deny-overrides\n\
             R1 allow //patient\nR2 deny //patient[treatment]\n\
             R3 allow //nurse/phone\nR4 allow //doctor/sid\n",
        )
        .unwrap();
        engine.set_policy(edited.clone());
        let incremental = engine.analyze();
        let (hits, reruns) = engine.last_cache_traffic();
        assert!(hits > 0, "unchanged regions served from cache");
        // Fresh work: R4's variants + expansion and its (trivial) D3
        // region; everything touching R1/R2/R3 is a hit.
        assert!(
            reruns <= 4,
            "only the edited rule re-runs (its variants, expansion, D2 and \
             D3 entries), got {reruns} reruns / {hits} hits"
        );
        let full = Analyzer::new(&edited).with_schema(&schema).run();
        assert_eq!(incremental.to_json(), full.to_json());
    }

    #[test]
    fn identical_policy_is_all_hits() {
        let schema = hospital_schema();
        let policy = hospital_policy();
        let mut engine =
            IncrementalAnalyzer::new(policy.clone(), Some(&schema)).named("p.pol", None);
        engine.analyze();
        let before = engine.aware_oracle.stats();
        engine.set_policy(policy);
        let report = engine.analyze();
        let (_, reruns) = engine.last_cache_traffic();
        assert_eq!(reruns, 0, "a second run over the same policy re-verifies nothing");
        let after = engine.aware_oracle.stats();
        assert_eq!(after.misses, before.misses, "no fresh homomorphism tests");
        let full = full_report(&hospital_policy(), &schema);
        assert_eq!(report.to_json(), full.to_json());
    }

    #[test]
    fn works_without_a_schema() {
        let policy = Policy::parse(
            "default deny\nconflict deny-overrides\n\
             D1 deny //patient[treatment]\nA1 allow //patient[treatment and psn]\n",
        )
        .unwrap();
        let mut engine = IncrementalAnalyzer::new(policy.clone(), None);
        let incremental = engine.analyze();
        let full = Analyzer::new(&policy).run();
        assert_eq!(incremental.to_json(), full.to_json());
        assert!(incremental.audit.is_none(), "no audit without a schema");
    }
}
