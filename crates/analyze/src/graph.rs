//! The rule-level analysis graph the incremental engine re-verifies on.
//!
//! Each verifier pass depends on a bounded slice of the policy: D1 on a
//! single rule and the schema, D2/D3 on a rule's *overlap region* — the
//! connected component of live rules linked by opposite-effect
//! containment or non-disjointness — and D4/D5 on the whole policy.
//! [`AnalysisGraph`] materializes exactly that structure: FNV-1a
//! fingerprints for every rule, the policy header and the schema, plus
//! the overlap edges among live rules. After a single-rule edit, every
//! region whose [`AnalysisGraph::region_fp`] is unchanged is guaranteed
//! to re-produce its previous D2/D3 findings, so the incremental engine
//! answers those passes from cache and re-runs only the edited rule's
//! region.
//!
//! The edge relation is deliberately a superset of both passes' needs:
//! D2's shadow winner *contains* the shadowed rule (containment ⇒ edge)
//! and every reported D3 pair is containment-related or
//! not-provably-disjoint (⇔ edge). Rules outside a region can therefore
//! never influence its findings.

use std::collections::BTreeSet;
use xac_policy::Policy;
use xac_xml::Schema;
use xac_xpath::ContainmentOracle;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over `bytes`, chained from `state` so multi-field
/// fingerprints compose without intermediate allocation.
pub fn fnv1a(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state ^= b as u64;
        state = state.wrapping_mul(FNV_PRIME);
    }
    state
}

/// Fingerprint of one value from scratch.
fn fp(bytes: &[u8]) -> u64 {
    fnv1a(FNV_OFFSET, bytes)
}

/// The dependency structure of one verifier run: fingerprints plus the
/// overlap edges among live rules.
pub struct AnalysisGraph {
    /// Per-rule fingerprint over `id|effect|resource`, indexed like
    /// `policy.rules`.
    rule_fps: Vec<u64>,
    /// Fingerprint of `(default, conflict)` — the Table 2 row.
    header_fp: u64,
    /// Fingerprint of the schema (0 without one).
    schema_fp: u64,
    /// D1 verdict per rule; dead rules take part in no edges.
    dead: Vec<bool>,
    /// Overlap adjacency among live opposite-effect rules.
    adj: Vec<Vec<usize>>,
}

impl AnalysisGraph {
    /// Build the graph. `dead` carries the D1 verdicts (empty without a
    /// schema); `oracle` answers the pairwise containment and
    /// disjointness questions — schema-aware exactly when it holds one,
    /// memoized across rebuilds when the caller keeps it alive.
    pub fn build(
        policy: &Policy,
        schema: Option<&Schema>,
        oracle: &ContainmentOracle,
        dead: &BTreeSet<usize>,
    ) -> AnalysisGraph {
        let rule_fps = policy
            .rules
            .iter()
            .map(|r| {
                let h = fp(r.id.as_bytes());
                let h = fnv1a(h, b"|");
                let h = fnv1a(h, r.effect.to_string().as_bytes());
                let h = fnv1a(h, b"|");
                fnv1a(h, r.resource.to_string().as_bytes())
            })
            .collect::<Vec<u64>>();
        let header_fp = fp(&[
            policy.default_semantics.sign() as u8,
            policy.conflict_resolution.sign() as u8,
        ]);
        let schema_fp = schema.map_or(0, |s| fp(s.to_dtd_string().as_bytes()));

        let n = policy.rules.len();
        let dead_bits: Vec<bool> = (0..n).map(|i| dead.contains(&i)).collect();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for i in 0..n {
            if dead_bits[i] {
                continue;
            }
            for j in (i + 1)..n {
                if dead_bits[j] {
                    continue;
                }
                let (a, b) = (&policy.rules[i], &policy.rules[j]);
                if a.effect == b.effect {
                    continue;
                }
                let related = oracle.contained_in_schema_aware(&a.resource, &b.resource)
                    || oracle.contained_in_schema_aware(&b.resource, &a.resource)
                    || !oracle.disjoint_schema_aware(&a.resource, &b.resource);
                if related {
                    adj[i].push(j);
                    adj[j].push(i);
                }
            }
        }
        AnalysisGraph { rule_fps, header_fp, schema_fp, dead: dead_bits, adj }
    }

    /// The fingerprint of rule `i`.
    pub fn rule_fp(&self, i: usize) -> u64 {
        self.rule_fps[i]
    }

    /// Whether rule `i` is D1-dead.
    pub fn is_dead(&self, i: usize) -> bool {
        self.dead[i]
    }

    /// Rule `i`'s overlap region: the connected component containing
    /// `i`, in ascending index order (so iterating a region visits
    /// rules in policy order). A dead or isolated rule's region is
    /// `{i}` itself.
    pub fn region(&self, i: usize) -> Vec<usize> {
        let mut seen = BTreeSet::new();
        seen.insert(i);
        let mut stack = vec![i];
        while let Some(r) = stack.pop() {
            for &nbr in &self.adj[r] {
                if seen.insert(nbr) {
                    stack.push(nbr);
                }
            }
        }
        seen.into_iter().collect()
    }

    /// Fingerprint of rule `i`'s region: the member fingerprints in
    /// index order, chained with the policy header and the schema.
    /// Everything D2/D3 can observe about the region — ids, effects,
    /// resources, relative rule order, the Table 2 row, the schema —
    /// is covered, so an unchanged `region_fp` proves the region's
    /// findings are unchanged. (Deadness needs no extra bits: it is a
    /// function of `(resource, schema)`, both already hashed.)
    pub fn region_fp(&self, i: usize) -> u64 {
        let mut h = fnv1a(FNV_OFFSET, &self.header_fp.to_le_bytes());
        h = fnv1a(h, &self.schema_fp.to_le_bytes());
        for member in self.region(i) {
            h = fnv1a(h, &self.rule_fps[member].to_le_bytes());
        }
        h
    }

    /// Fingerprint of the whole policy under this schema: all rule
    /// fingerprints in order plus header and schema. Keys the passes
    /// with policy-global scope (D4, D5).
    pub fn policy_fp(&self) -> u64 {
        let mut h = fnv1a(FNV_OFFSET, &self.header_fp.to_le_bytes());
        h = fnv1a(h, &self.schema_fp.to_le_bytes());
        for &rf in &self.rule_fps {
            h = fnv1a(h, &rf.to_le_bytes());
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xac_xml::parse_dtd;

    fn hospital_schema() -> Schema {
        parse_dtd(include_str!("../../../data/hospital.dtd")).unwrap()
    }

    fn graph(src: &str, schema: Option<&Schema>) -> (Policy, AnalysisGraph) {
        let policy = Policy::parse(src).unwrap();
        let oracle = match schema {
            Some(s) => ContainmentOracle::with_schema(s.clone()),
            None => ContainmentOracle::new(),
        };
        let dead = BTreeSet::new();
        let g = AnalysisGraph::build(&policy, schema, &oracle, &dead);
        (policy, g)
    }

    #[test]
    fn regions_partition_by_overlap() {
        // R1/R2 overlap (containment); R3/R4 overlap (shared scope);
        // the two components never meet; R5 is isolated (same effect
        // as nothing it overlaps).
        let (_, g) = graph(
            "default deny\nconflict deny-overrides\n\
             R1 allow //patient\nR2 deny //patient[treatment]\n\
             R3 allow //nurse\nR4 deny //nurse[phone]\n\
             R5 allow //doctor\n",
            None,
        );
        assert_eq!(g.region(0), vec![0, 1]);
        assert_eq!(g.region(1), vec![0, 1]);
        assert_eq!(g.region(2), vec![2, 3]);
        assert_eq!(g.region(4), vec![4]);
    }

    #[test]
    fn region_fp_is_stable_under_unrelated_edits() {
        let before = graph(
            "default deny\nconflict deny-overrides\n\
             R1 allow //patient\nR2 deny //patient[treatment]\nR3 allow //nurse\n",
            None,
        );
        let after = graph(
            "default deny\nconflict deny-overrides\n\
             R1 allow //patient\nR2 deny //patient[treatment]\nR3 allow //doctor\n",
            None,
        );
        // Editing R3 leaves the R1/R2 region fingerprint intact …
        assert_eq!(before.1.region_fp(0), after.1.region_fp(0));
        // … but changes R3's own region and the policy fingerprint.
        assert_ne!(before.1.region_fp(2), after.1.region_fp(2));
        assert_ne!(before.1.policy_fp(), after.1.policy_fp());
    }

    #[test]
    fn header_and_schema_feed_the_fingerprints() {
        let src = "default deny\nconflict deny-overrides\nR1 allow //patient\n";
        let (_, deny) = graph(src, None);
        let (_, allow) =
            graph("default allow\nconflict deny-overrides\nR1 allow //patient\n", None);
        assert_ne!(deny.region_fp(0), allow.region_fp(0), "header is hashed");
        let schema = hospital_schema();
        let (_, aware) = graph(src, Some(&schema));
        assert_ne!(deny.region_fp(0), aware.region_fp(0), "schema is hashed");
    }

    #[test]
    fn dead_rules_take_no_edges() {
        let schema = hospital_schema();
        let policy = Policy::parse(
            "default deny\nconflict deny-overrides\n\
             R1 allow //patient\nR2 deny //patient/nurse\n",
        )
        .unwrap();
        let oracle = ContainmentOracle::with_schema(schema.clone());
        // R2 is dead under the hospital schema; with the D1 verdict in,
        // its would-be overlap with R1 disappears.
        let dead: BTreeSet<usize> = [1].into_iter().collect();
        let g = AnalysisGraph::build(&policy, Some(&schema), &oracle, &dead);
        assert!(g.is_dead(1));
        assert_eq!(g.region(0), vec![0]);
    }

    #[test]
    fn schema_proven_disjointness_cuts_edges() {
        let schema = hospital_schema();
        let src = "default deny\nconflict deny-overrides\n\
                   W4 allow //regular[bill > 500][bill <= 1000]\n\
                   W5 deny //regular[bill > 1000]\n";
        let (_, blind) = graph(src, None);
        assert_eq!(blind.region(0), vec![0, 1], "blindly the pair overlaps");
        let (_, aware) = graph(src, Some(&schema));
        assert_eq!(aware.region(0), vec![0], "contradicting bills are disjoint");
    }
}
