//! Verified repair synthesis for XA001–XA004 findings.
//!
//! For each gating diagnostic the synthesizer proposes *minimal*
//! candidate edits, ordered least-invasive first:
//!
//! | finding | candidates |
//! |---------|-----------|
//! | `XA001` dead rule | delete the rule |
//! | `XA002` shadowed (degenerate row) | flip `conflict`, flip the rule's sign, delete |
//! | `XA002` shadowed (containment)    | flip the rule's sign, delete |
//! | `XA003` conflict | tighten the allow's qualifier with the complement of the deny's bound |
//! | `XA004` coverage gap | append one default-effect `//t` rule per gap type |
//!
//! A candidate is **accepted** only when verification proves it safe:
//!
//! 1. *clears* — re-analyzing the edited policy (incrementally, via the
//!    caller's [`IncrementalAnalyzer`]) no longer reports the target
//!    diagnostic;
//! 2. *no regression* — no new warning-or-worse diagnostic appears that
//!    the baseline did not have;
//! 3. *sign preservation* — when a document is supplied, the original
//!    and edited policies are annotated side by side on all three
//!    backends (native XML, row- and column-relational) and their
//!    [`sign_state`](xac_core::Backend::sign_state) must be
//!    byte-identical for every node whose element type the edit could
//!    not have touched (for scope-free edits — deleting a dead rule,
//!    flipping precedence on an overlap-free policy — that is *every*
//!    node).
//!
//! Rejected candidates fall through to the next; accepted ones are
//! applied and the loop re-targets until the policy is clean or no
//! candidate makes progress. The textual edit trail is rendered as a
//! unified diff against the original `.pol` source.

use crate::diagnostic::{Code, Diagnostic, Report, Severity};
use crate::incremental::IncrementalAnalyzer;
use crate::verifier::{discarded_effect, end_label};
use std::collections::{BTreeSet, HashMap};
use xac_core::System;
use xac_policy::{ConflictResolution, DefaultSemantics, Effect, Policy, Rule};
use xac_xml::{Document, Schema};
use xac_xpath::{schema_variants, Path, Qualifier};

/// The shape of one applied repair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairKind {
    /// Remove a rule that can never sign a node.
    DeleteRule,
    /// Swap a rule's effect so the semantics can observe it.
    FlipSign,
    /// Swap the policy's conflict-resolution strategy.
    FlipPrecedence,
    /// Conjoin the complement of the conflicting bound onto a qualifier.
    TightenQualifier,
    /// Add default-effect rules for uncovered element types.
    AddCoveringRule,
}

impl RepairKind {
    /// Stable kebab-case label (JSON rows, CLI output).
    pub fn label(self) -> &'static str {
        match self {
            RepairKind::DeleteRule => "delete-rule",
            RepairKind::FlipSign => "flip-sign",
            RepairKind::FlipPrecedence => "flip-precedence",
            RepairKind::TightenQualifier => "tighten-qualifier",
            RepairKind::AddCoveringRule => "add-covering-rule",
        }
    }
}

/// One accepted, verified repair.
#[derive(Debug, Clone)]
pub struct Repair {
    /// What was done.
    pub kind: RepairKind,
    /// The diagnostic it cleared.
    pub code: Code,
    /// The rule the diagnostic was anchored to, if any.
    pub rule: Option<String>,
    /// Human description of the edit.
    pub description: String,
}

/// What the synthesizer is allowed to touch.
#[derive(Debug, Clone, Default)]
pub struct RepairConfig {
    /// Treat warnings as gating (the `--deny warn` contract).
    pub deny_warnings: bool,
    /// Also repair info-level findings (XA003 conflicts, XA004 gaps).
    pub fix_infos: bool,
}

/// The result of a synthesis run.
#[derive(Debug, Clone)]
pub struct RepairOutcome {
    /// Accepted repairs, in application order.
    pub repairs: Vec<Repair>,
    /// The report of the final (repaired) policy.
    pub report: Report,
    /// The repaired policy.
    pub policy: Policy,
    /// The repaired source text.
    pub source: String,
    /// Unified diff original → repaired (empty when nothing changed).
    pub diff: String,
}

/// A concrete edit, applicable to both the [`Policy`] AST and the
/// `.pol` source text (so the diff the user reviews is exactly the
/// change the verifier proved safe).
#[derive(Debug, Clone)]
enum Edit {
    Delete { id: String },
    Flip { id: String, to: Effect },
    SetResource { id: String, resource: String },
    SetConflict { to: ConflictResolution },
    Append { rules: Vec<(String, Effect, String)> },
}

/// Synthesize and verify repairs for the engine's current policy.
/// `source` is the policy's source text (diff base), `source_name` its
/// display path. The engine is left holding the repaired policy with
/// warm caches.
pub fn synthesize(
    engine: &mut IncrementalAnalyzer,
    source: &str,
    source_name: &str,
    doc: Option<&Document>,
    cfg: &RepairConfig,
) -> RepairOutcome {
    let _span = xac_obs::span("analyze.repair");
    let schema = engine.schema().cloned();
    let mut current = engine.policy().clone();
    let mut current_src = source.to_string();
    let mut repairs: Vec<Repair> = Vec::new();
    engine.set_policy(current.clone());
    let mut report = engine.analyze();

    // Bounded severity-first loop: re-target after every accepted edit.
    'outer: for _ in 0..64 {
        let baseline = gating_pairs(&report);
        let targets = ordered_targets(&report, cfg);
        for target in &targets {
            for (kind, edit, description) in candidates(&current, schema.as_ref(), target) {
                let Some(candidate) = apply_to_policy(&current, &edit) else {
                    continue;
                };
                engine.set_policy(candidate.clone());
                let cand_report = engine.analyze();
                if !cleared(&cand_report, target) || regressed(&cand_report, &baseline) {
                    continue;
                }
                if let (Some(schema), Some(doc)) = (schema.as_ref(), doc) {
                    if let Some(flagged) = flagged_types(&edit, &current, schema) {
                        if !signs_preserved(schema, doc, &current, &candidate, &flagged) {
                            continue;
                        }
                    }
                    // `None`: the edit's scope is unbounded (wildcard
                    // end), so no node lies outside it — nothing to
                    // hold fixed.
                }
                current_src = apply_to_source(&current_src, &edit);
                current = candidate;
                report = cand_report;
                repairs.push(Repair {
                    kind,
                    code: target.code,
                    rule: target.rule.clone(),
                    description,
                });
                xac_obs::counter("xac_analyze_repairs_total").inc();
                continue 'outer;
            }
        }
        break; // no target had an acceptable candidate
    }

    engine.set_policy(current.clone());
    let diff = if repairs.is_empty() {
        String::new()
    } else {
        unified_diff(source, &current_src, source_name)
    };
    RepairOutcome { repairs, report, policy: current, source: current_src, diff }
}

/// `(code, rule)` pairs of warning-or-worse findings: the regression
/// baseline a candidate must not grow.
fn gating_pairs(report: &Report) -> BTreeSet<(&'static str, String)> {
    report
        .diagnostics
        .iter()
        .filter(|d| d.severity >= Severity::Warning)
        .map(|d| (d.code.as_str(), d.rule.clone().unwrap_or_default()))
        .collect()
}

/// Repairable findings, most severe first (stable within a severity).
fn ordered_targets(report: &Report, cfg: &RepairConfig) -> Vec<Diagnostic> {
    let eligible = |d: &&Diagnostic| match d.severity {
        Severity::Error => d.code != Code::TriggerAudit,
        Severity::Warning => cfg.deny_warnings,
        Severity::Info => {
            cfg.fix_infos && matches!(d.code, Code::Conflict | Code::CoverageGap)
        }
    };
    let mut targets: Vec<Diagnostic> = Vec::new();
    for severity in [Severity::Error, Severity::Warning, Severity::Info] {
        targets.extend(
            report
                .sorted()
                .into_iter()
                .filter(|d| d.severity == severity)
                .filter(eligible)
                .cloned(),
        );
    }
    targets
}

/// Did `target` disappear from the candidate's report?
fn cleared(report: &Report, target: &Diagnostic) -> bool {
    !report
        .diagnostics
        .iter()
        .any(|d| d.code == target.code && d.rule == target.rule)
}

/// Did the candidate introduce a warning-or-worse finding the baseline
/// did not have?
fn regressed(report: &Report, baseline: &BTreeSet<(&'static str, String)>) -> bool {
    report
        .diagnostics
        .iter()
        .filter(|d| d.severity >= Severity::Warning)
        .any(|d| !baseline.contains(&(d.code.as_str(), d.rule.clone().unwrap_or_default())))
}

/// Candidate edits for one finding, least-invasive first.
fn candidates(
    policy: &Policy,
    schema: Option<&Schema>,
    target: &Diagnostic,
) -> Vec<(RepairKind, Edit, String)> {
    match target.code {
        Code::DeadRule => {
            let Some(id) = target.rule.clone() else { return Vec::new() };
            vec![(
                RepairKind::DeleteRule,
                Edit::Delete { id: id.clone() },
                format!("delete dead rule {id}"),
            )]
        }
        Code::ShadowedRule => {
            let Some(id) = target.rule.clone() else { return Vec::new() };
            let Some(rule) = policy.rule(&id) else { return Vec::new() };
            let to = opposite(rule.effect);
            let mut out = Vec::new();
            if discarded_effect(policy.default_semantics, policy.conflict_resolution).is_some()
            {
                let cr = opposite_cr(policy.conflict_resolution);
                out.push((
                    RepairKind::FlipPrecedence,
                    Edit::SetConflict { to: cr },
                    format!(
                        "flip conflict resolution to {} so {} rules take part in the \
                         Table 2 semantics",
                        cr_word(cr),
                        rule.effect,
                    ),
                ));
            }
            out.push((
                RepairKind::FlipSign,
                Edit::Flip { id: id.clone(), to },
                format!("flip rule {id} to {to} so its sign becomes observable"),
            ));
            out.push((
                RepairKind::DeleteRule,
                Edit::Delete { id: id.clone() },
                format!("delete shadowed rule {id}"),
            ));
            out
        }
        Code::Conflict => tighten_candidate(policy, target).into_iter().collect(),
        Code::CoverageGap => covering_candidate(policy, schema).into_iter().collect(),
        Code::TriggerAudit => Vec::new(),
    }
}

/// XA003: conjoin the complement of the deny rule's value bound onto
/// the allow rule's output step, carving the overlap away. Only
/// applies when the deny's output step carries comparison qualifiers
/// over bare child paths — the shape the schema-aware disjointness
/// test can then prove apart.
fn tighten_candidate(policy: &Policy, target: &Diagnostic) -> Option<(RepairKind, Edit, String)> {
    let a_id = target.rule.as_deref()?;
    let a = policy.rule(a_id)?;
    // The partner is named in our own (golden-tested) message format:
    // "… and deny rule <id> (`…`)".
    let d_id = target
        .message
        .split(" deny rule ")
        .nth(1)?
        .split_whitespace()
        .next()?;
    let d = policy.rule(d_id)?;
    let constraints = value_constraints(d.resource.last_step()?.predicates.as_slice());
    if constraints.is_empty() {
        return None;
    }
    let mut resource = a.resource.clone();
    let last = resource.steps.last_mut()?;
    for (path, op, bound) in &constraints {
        last.predicates.push(Qualifier::Cmp((*path).clone(), op.complement(), bound.clone()));
    }
    let resource = resource.to_string();
    Some((
        RepairKind::TightenQualifier,
        Edit::SetResource { id: a_id.to_string(), resource: resource.clone() },
        format!("tighten rule {a_id} to `{resource}`, excluding deny rule {d_id}'s scope"),
    ))
}

/// The `Cmp` qualifiers over bare single-step child paths in a
/// predicate list (one `And` level flattened) — the bounds whose
/// complements the tighten repair conjoins.
fn value_constraints(
    predicates: &[Qualifier],
) -> Vec<(&Path, xac_xpath::CmpOp, String)> {
    let mut out = Vec::new();
    fn walk<'q>(qs: &'q [Qualifier], out: &mut Vec<(&'q Path, xac_xpath::CmpOp, String)>) {
        for q in qs {
            match q {
                Qualifier::Cmp(p, op, d) if is_bare_child(p) => {
                    out.push((p, *op, d.clone()));
                }
                Qualifier::And(inner) => walk(inner, out),
                _ => {}
            }
        }
    }
    walk(predicates, &mut out);
    out
}

/// A relative, predicate-free, single child step to a named element.
fn is_bare_child(p: &Path) -> bool {
    !p.absolute
        && p.steps.len() == 1
        && p.steps[0].axis == xac_xpath::Axis::Child
        && p.steps[0].predicates.is_empty()
        && matches!(p.steps[0].test, xac_xpath::NodeTest::Name(_))
}

/// XA004: one fresh default-effect `//t` rule per uncovered type. The
/// rules sign exactly the nodes that already carried the default sign,
/// with the default's own effect — sign-preserving by construction,
/// and verified to be so anyway.
fn covering_candidate(
    policy: &Policy,
    schema: Option<&Schema>,
) -> Option<(RepairKind, Edit, String)> {
    let schema = schema?;
    let mut covered: BTreeSet<String> = BTreeSet::new();
    for rule in &policy.rules {
        let variants = schema_variants(&rule.resource, schema);
        if variants.is_empty() {
            continue; // dead rule: signs nothing
        }
        for v in &variants {
            covered.insert(end_label(v)?); // wildcard end: no gap exists
        }
    }
    let gaps: Vec<&str> = schema
        .reachable_types()
        .into_iter()
        .filter(|t| !covered.contains(*t))
        .collect();
    if gaps.is_empty() {
        return None;
    }
    let effect = match policy.default_semantics {
        DefaultSemantics::Allow => Effect::Allow,
        DefaultSemantics::Deny => Effect::Deny,
    };
    let existing: BTreeSet<&str> = policy.rules.iter().map(|r| r.id.as_str()).collect();
    let mut rules = Vec::new();
    let mut n = policy.rules.len() + 1;
    for gap in &gaps {
        let mut id = format!("G{n}");
        while existing.contains(id.as_str()) {
            n += 1;
            id = format!("G{n}");
        }
        n += 1;
        rules.push((id, effect, format!("//{gap}")));
    }
    let description = format!(
        "add {} explicit {effect} rule(s) covering: {}",
        rules.len(),
        gaps.join(", "),
    );
    Some((RepairKind::AddCoveringRule, Edit::Append { rules }, description))
}

fn opposite(e: Effect) -> Effect {
    match e {
        Effect::Allow => Effect::Deny,
        Effect::Deny => Effect::Allow,
    }
}

fn opposite_cr(cr: ConflictResolution) -> ConflictResolution {
    match cr {
        ConflictResolution::AllowOverrides => ConflictResolution::DenyOverrides,
        ConflictResolution::DenyOverrides => ConflictResolution::AllowOverrides,
    }
}

fn cr_word(cr: ConflictResolution) -> &'static str {
    match cr {
        ConflictResolution::AllowOverrides => "allow-overrides",
        ConflictResolution::DenyOverrides => "deny-overrides",
    }
}

fn effect_word(e: Effect) -> &'static str {
    match e {
        Effect::Allow => "allow",
        Effect::Deny => "deny",
    }
}

/// Apply an edit to the policy AST. `None` when the edit no longer
/// applies (rule vanished, parse failure) — the candidate is skipped.
fn apply_to_policy(policy: &Policy, edit: &Edit) -> Option<Policy> {
    match edit {
        Edit::Delete { id } => policy.without_rule(id).ok(),
        Edit::Flip { id, to } => {
            let rule = policy.rule(id)?;
            let replacement = Rule::parse(id.clone(), &rule.resource.to_string(), *to).ok()?;
            policy.with_rule_replaced(id, replacement).ok()
        }
        Edit::SetResource { id, resource } => {
            let rule = policy.rule(id)?;
            let replacement = Rule::parse(id.clone(), resource, rule.effect).ok()?;
            policy.with_rule_replaced(id, replacement).ok()
        }
        Edit::SetConflict { to } => {
            Policy::new(policy.default_semantics, *to, policy.rules.clone()).ok()
        }
        Edit::Append { rules } => {
            let mut out = policy.clone();
            for (id, effect, resource) in rules {
                let rule = Rule::parse(id.clone(), resource, *effect).ok()?;
                out = out.with_rule_appended(rule).ok()?;
            }
            Some(out)
        }
    }
}

/// Apply an edit to the `.pol` source text. Mirrors the line discipline
/// of `Policy::parse` (and `rule_spans`): a rule's line is the one whose
/// first token is its id.
fn apply_to_source(source: &str, edit: &Edit) -> String {
    let first_token = |line: &str| line.split_whitespace().next().map(str::to_string);
    let mut lines: Vec<String> = source.lines().map(str::to_string).collect();
    match edit {
        Edit::Delete { id } => {
            lines.retain(|l| first_token(l).as_deref() != Some(id.as_str()));
        }
        Edit::Flip { id, to } => {
            for line in &mut lines {
                if first_token(line).as_deref() != Some(id.as_str()) {
                    continue;
                }
                let mut parts = line.splitn(3, char::is_whitespace);
                let (head, old_effect, rest) =
                    (parts.next().unwrap_or(""), parts.next().unwrap_or(""), parts.next());
                // Keep the author's notation: sign stays sign, word
                // stays word.
                let new_effect = match old_effect {
                    "+" | "-" => if *to == Effect::Allow { "+" } else { "-" }.to_string(),
                    _ => effect_word(*to).to_string(),
                };
                *line = match rest {
                    Some(rest) => format!("{head} {new_effect} {}", rest.trim_start()),
                    None => format!("{head} {new_effect}"),
                };
            }
        }
        Edit::SetResource { id, resource } => {
            for line in &mut lines {
                if first_token(line).as_deref() != Some(id.as_str()) {
                    continue;
                }
                let mut parts = line.splitn(3, char::is_whitespace);
                let (head, effect) =
                    (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
                *line = format!("{head} {effect} {resource}");
            }
        }
        Edit::SetConflict { to } => {
            for line in &mut lines {
                if first_token(line).as_deref() == Some("conflict") {
                    *line = format!("conflict {}", cr_word(*to));
                }
            }
        }
        Edit::Append { rules } => {
            for (id, effect, resource) in rules {
                lines.push(format!("{id} {} {resource}", effect_word(*effect)));
            }
        }
    }
    let mut out = lines.join("\n");
    out.push('\n');
    out
}

/// The element types an edit can re-sign: the end labels of the edited
/// rule's schema specializations, before and after. `Some(∅)` demands
/// global sign identity (scope-free edits); `None` means the scope is
/// unbounded (wildcard end) and the differential check is vacuous.
fn flagged_types(edit: &Edit, policy: &Policy, schema: &Schema) -> Option<BTreeSet<String>> {
    let labels = |resource: &Path| -> Option<BTreeSet<String>> {
        schema_variants(resource, schema).iter().map(end_label).collect()
    };
    match edit {
        Edit::Delete { id } => {
            let rule = policy.rule(id)?;
            labels(&rule.resource) // dead rule ⇒ empty set ⇒ global identity
        }
        Edit::Flip { id, .. } => labels(&policy.rule(id)?.resource),
        Edit::SetResource { id, resource } => {
            let mut set = labels(&policy.rule(id)?.resource)?;
            set.extend(labels(&xac_xpath::parse(resource).ok()?)?);
            Some(set)
        }
        Edit::SetConflict { .. } => Some(BTreeSet::new()),
        Edit::Append { rules } => {
            let mut set = BTreeSet::new();
            for (_, _, resource) in rules {
                set.extend(labels(&xac_xpath::parse(resource).ok()?)?);
            }
            Some(set)
        }
    }
}

/// Annotate `old` and `new` side by side on all three backends and
/// require byte-identical sign state for every node whose element type
/// is not in `flagged`. Any backend failure rejects the candidate.
fn signs_preserved(
    schema: &Schema,
    doc: &Document,
    old: &Policy,
    new: &Policy,
    flagged: &BTreeSet<String>,
) -> bool {
    let _span = xac_obs::span("analyze.repair.diff");
    let build = |policy: &Policy| {
        System::builder(schema.clone(), policy.clone(), doc.clone()).build().ok()
    };
    let (Some(sys_old), Some(sys_new)) = (build(old), build(new)) else {
        return false;
    };
    let names: HashMap<i64, &str> = doc
        .all_elements()
        .map(|n| (n.index() as i64, doc.name(n).unwrap_or("")))
        .collect();
    for (mut b_old, mut b_new) in
        crate::audit::backends().into_iter().zip(crate::audit::backends())
    {
        let run = |sys: &System, b: &mut Box<dyn xac_core::Backend>| {
            sys.load(b.as_mut()).ok()?;
            sys.annotate(b.as_mut()).ok()?;
            b.sign_state().ok()
        };
        let (Some(state_old), Some(state_new)) =
            (run(&sys_old, &mut b_old), run(&sys_new, &mut b_new))
        else {
            return false;
        };
        let ids: BTreeSet<&i64> = state_old.keys().chain(state_new.keys()).collect();
        for id in ids {
            let name = names.get(id).copied().unwrap_or("");
            if flagged.contains(name) {
                continue;
            }
            if state_old.get(id) != state_new.get(id) {
                return false;
            }
        }
    }
    true
}

/// A hand-rolled unified diff (LCS over lines, three lines of context).
/// Good enough for `.pol` files; avoids shelling out to `diff`.
pub fn unified_diff(a: &str, b: &str, name: &str) -> String {
    const CONTEXT: usize = 3;
    #[derive(Clone, Copy, PartialEq)]
    enum Tag {
        Keep,
        Del,
        Add,
    }
    let a_lines: Vec<&str> = a.lines().collect();
    let b_lines: Vec<&str> = b.lines().collect();
    let (n, m) = (a_lines.len(), b_lines.len());
    let mut lcs = vec![vec![0usize; m + 1]; n + 1];
    for i in (0..n).rev() {
        for j in (0..m).rev() {
            lcs[i][j] = if a_lines[i] == b_lines[j] {
                lcs[i + 1][j + 1] + 1
            } else {
                lcs[i + 1][j].max(lcs[i][j + 1])
            };
        }
    }
    let mut ops: Vec<(Tag, &str)> = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < n && j < m {
        if a_lines[i] == b_lines[j] {
            ops.push((Tag::Keep, a_lines[i]));
            i += 1;
            j += 1;
        } else if lcs[i + 1][j] >= lcs[i][j + 1] {
            ops.push((Tag::Del, a_lines[i]));
            i += 1;
        } else {
            ops.push((Tag::Add, b_lines[j]));
            j += 1;
        }
    }
    ops.extend(a_lines[i..].iter().map(|l| (Tag::Del, *l)));
    ops.extend(b_lines[j..].iter().map(|l| (Tag::Add, *l)));
    if ops.iter().all(|(t, _)| *t == Tag::Keep) {
        return String::new();
    }

    // Group changed ops into hunks, merging when the gap between
    // changes is within twice the context width.
    let changed: Vec<usize> = ops
        .iter()
        .enumerate()
        .filter(|(_, (t, _))| *t != Tag::Keep)
        .map(|(k, _)| k)
        .collect();
    let mut hunks: Vec<(usize, usize)> = Vec::new();
    for &k in &changed {
        let start = k.saturating_sub(CONTEXT);
        let end = (k + CONTEXT + 1).min(ops.len());
        match hunks.last_mut() {
            Some((_, e)) if start <= *e => *e = end,
            _ => hunks.push((start, end)),
        }
    }

    let mut out = format!("--- {name}\n+++ {name} (repaired)\n");
    // Line numbers of each op in the old/new files.
    let mut a_line = 1usize;
    let mut b_line = 1usize;
    let mut positions = Vec::with_capacity(ops.len());
    for (tag, _) in &ops {
        positions.push((a_line, b_line));
        match tag {
            Tag::Keep => {
                a_line += 1;
                b_line += 1;
            }
            Tag::Del => a_line += 1,
            Tag::Add => b_line += 1,
        }
    }
    for (start, end) in hunks {
        let (a_start, b_start) = positions[start];
        let a_count = ops[start..end].iter().filter(|(t, _)| *t != Tag::Add).count();
        let b_count = ops[start..end].iter().filter(|(t, _)| *t != Tag::Del).count();
        out.push_str(&format!("@@ -{a_start},{a_count} +{b_start},{b_count} @@\n"));
        for (tag, line) in &ops[start..end] {
            let prefix = match tag {
                Tag::Keep => ' ',
                Tag::Del => '-',
                Tag::Add => '+',
            };
            out.push(prefix);
            out.push_str(line);
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hospital_schema() -> Schema {
        xac_xml::parse_dtd(include_str!("../../../data/hospital.dtd")).unwrap()
    }

    fn figure2() -> Document {
        Document::parse_str(include_str!("../../../data/figure2.xml")).unwrap()
    }

    fn repair(
        src: &str,
        schema: &Schema,
        doc: Option<&Document>,
        cfg: &RepairConfig,
    ) -> RepairOutcome {
        let policy = Policy::parse(src).unwrap();
        let mut engine =
            IncrementalAnalyzer::new(policy, Some(schema)).named("p.pol", None);
        synthesize(&mut engine, src, "p.pol", doc, cfg)
    }

    #[test]
    fn flawed_fixture_repairs_to_a_clean_policy() {
        let src = include_str!("../../../examples/policies/flawed_all5.pol");
        let schema = hospital_schema();
        let doc = figure2();
        let cfg = RepairConfig { deny_warnings: true, fix_infos: false };
        let outcome = repair(src, &schema, Some(&doc), &cfg);
        let kinds: Vec<RepairKind> = outcome.repairs.iter().map(|r| r.kind).collect();
        assert_eq!(
            kinds,
            vec![RepairKind::DeleteRule, RepairKind::FlipSign],
            "dead F3 deleted, shadowed F4 flipped: {:?}",
            outcome.repairs,
        );
        assert_eq!(outcome.report.exit_code(true), 0, "{}", outcome.report.to_text());
        assert!(outcome.diff.contains("-F3 allow //nurse/med"), "{}", outcome.diff);
        assert!(outcome.diff.contains("+F4 deny"), "{}", outcome.diff);
        // The repaired source is itself parseable and clean.
        let reparsed = Policy::parse(&outcome.source).unwrap();
        assert_eq!(reparsed, outcome.policy);
    }

    #[test]
    fn tighten_carves_the_conflict_away() {
        let schema = hospital_schema();
        let src = "default deny\nconflict deny-overrides\n\
                   W4 allow //regular[bill > 500]\nW5 deny //regular[bill > 1000]\n";
        let cfg = RepairConfig { deny_warnings: true, fix_infos: true };
        let outcome = repair(src, &schema, None, &cfg);
        assert!(
            outcome.repairs.iter().any(|r| r.kind == RepairKind::TightenQualifier),
            "{:?}",
            outcome.repairs
        );
        assert!(
            outcome.policy.rule("W4").unwrap().resource.to_string().contains("bill <= 1000"),
            "complement of the deny bound conjoined: {}",
            outcome.policy.rule("W4").unwrap().resource,
        );
        assert!(
            outcome.report.diagnostics.iter().all(|d| d.code != Code::Conflict),
            "{}",
            outcome.report.to_text()
        );
    }

    #[test]
    fn covering_rules_fill_the_gap_with_the_default_sign() {
        let schema = hospital_schema();
        let src = "default deny\nconflict deny-overrides\nR1 allow //patient\n";
        let cfg = RepairConfig { deny_warnings: true, fix_infos: true };
        let doc = figure2();
        let outcome = repair(src, &schema, Some(&doc), &cfg);
        assert!(
            outcome.repairs.iter().any(|r| r.kind == RepairKind::AddCoveringRule),
            "{:?}",
            outcome.repairs
        );
        assert!(
            outcome.report.diagnostics.iter().all(|d| d.code != Code::CoverageGap),
            "{}",
            outcome.report.to_text()
        );
        // The added rules carry the default effect: deny.
        assert!(outcome.source.contains("deny //phone"), "{}", outcome.source);
    }

    #[test]
    fn repairable_fixture_matches_the_golden_diff() {
        let src = include_str!("../../../examples/policies/repairable.pol");
        let schema = hospital_schema();
        let doc = figure2();
        let cfg = RepairConfig { deny_warnings: true, fix_infos: true };
        let outcome = repair(src, &schema, Some(&doc), &cfg);
        let kinds: BTreeSet<&str> =
            outcome.repairs.iter().map(|r| r.kind.label()).collect();
        let expected: BTreeSet<&str> =
            ["delete-rule", "flip-sign", "tighten-qualifier", "add-covering-rule"]
                .into_iter()
                .collect();
        assert_eq!(kinds, expected, "{:?}", outcome.repairs);
        assert_eq!(outcome.report.exit_code(true), 0, "{}", outcome.report.to_text());
        let golden = include_str!("../../../tests/golden/repairable_fix.diff");
        assert_eq!(outcome.diff, golden, "ACTUAL DIFF:\n{}", outcome.diff);
        // The repaired text is what the diff claims it is.
        let reparsed = Policy::parse(&outcome.source).unwrap();
        assert_eq!(reparsed, outcome.policy);
    }

    #[test]
    fn no_gating_findings_means_no_edits() {
        let schema = hospital_schema();
        let src = "default deny\nconflict deny-overrides\nR1 allow //patient\n";
        let cfg = RepairConfig { deny_warnings: false, fix_infos: false };
        let outcome = repair(src, &schema, None, &cfg);
        assert!(outcome.repairs.is_empty());
        assert!(outcome.diff.is_empty());
    }

    #[test]
    fn unified_diff_shape() {
        let a = "one\ntwo\nthree\nfour\nfive\nsix\nseven\n";
        let b = "one\ntwo\nTHREE\nfour\nfive\nsix\nseven\nEIGHT\n";
        let d = unified_diff(a, b, "x.pol");
        assert!(d.starts_with("--- x.pol\n+++ x.pol (repaired)\n"), "{d}");
        assert!(d.contains("-three\n+THREE\n"), "{d}");
        assert!(d.contains("+EIGHT"), "{d}");
        assert_eq!(unified_diff(a, a, "x.pol"), "", "identical inputs diff empty");
    }
}
