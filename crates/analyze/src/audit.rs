//! D5 — the trigger-soundness audit (`XA005`).
//!
//! The Fig. 8 Trigger must *over-approximate*: for any update `u`, the
//! rule subset it selects must include every rule whose scope actually
//! changes, or partial re-annotation silently diverges from the
//! full-annotation fixpoint. This module audits that claim from three
//! independent directions over a corpus of update XPaths derived from
//! the schema (`//t` for each reachable element type):
//!
//! 1. **Differential** — the production fast path
//!    ([`PolicyAnalysis::trigger`], memoized oracle + precomputed
//!    expansions) is replayed against a definitional recomputation
//!    (fresh [`DependencyGraph`] + the free [`xac_policy::trigger`]);
//!    any divergence is an error.
//! 2. **Closure invariant** — the selected set is closed under the
//!    dependency relation: a selected rule's transitive dependencies
//!    are all selected too.
//! 3. **Dynamic** (when a document is given) — for each update the
//!    *actually affected* rules are computed on the tree (rules whose
//!    surviving scope differs before/after the delete) and must be a
//!    subset of the selected rules; and the partially re-annotated sign
//!    state is compared byte-for-byte against full re-annotation on all
//!    three backends (native XML, row-relational, column-relational).
//!
//! The audit always emits one summary diagnostic: `info` when sound,
//! `error` listing the violation when not. D5 precision
//! `|selected| / |affected|` quantifies the over-approximation.

use crate::diagnostic::{AuditSummary, Code, Diagnostic, Severity};
use std::collections::BTreeSet;
use xac_core::{Backend, NativeXmlBackend, RelationalBackend, System};
use xac_policy::{trigger, DependencyGraph, Policy, PolicyAnalysis};
use xac_xml::{Document, Schema};
use xac_xpath::{eval, Path, Step};

/// Knobs for the audit pass.
#[derive(Debug, Clone)]
pub struct AuditConfig {
    /// Cap on the update corpus size.
    pub max_updates: usize,
}

impl Default for AuditConfig {
    fn default() -> AuditConfig {
        AuditConfig { max_updates: 16 }
    }
}

/// The schema-derived update corpus: one `//t` delete per reachable
/// element type, root excluded (deleting the document is not an update
/// the paper's machinery models), capped at `max`.
pub fn update_corpus(schema: &Schema, max: usize) -> Vec<Path> {
    schema
        .reachable_types()
        .into_iter()
        .filter(|t| *t != schema.root())
        .take(max)
        .map(|t| Path::absolute(vec![Step::descendant(t)]))
        .collect()
}

/// Run the audit. Returns the aggregate summary plus any finding
/// diagnostics (always at least the final summary line).
pub fn run(
    policy: &Policy,
    schema: &Schema,
    doc: Option<&Document>,
    cfg: &AuditConfig,
) -> (AuditSummary, Vec<Diagnostic>) {
    let _span = xac_obs::span("analyze.audit");
    let corpus = update_corpus(schema, cfg.max_updates);
    let analysis = PolicyAnalysis::build(policy, Some(schema));
    let graph = DependencyGraph::build(policy);
    let mut summary = AuditSummary { updates: corpus.len(), ..AuditSummary::default() };
    let mut findings = Vec::new();

    // 1 + 2: differential replay and closure invariant, purely static.
    for u in &corpus {
        let fast: BTreeSet<usize> = analysis.trigger(u).into_iter().collect();
        let definitional: BTreeSet<usize> =
            trigger(policy, &graph, u, Some(schema)).into_iter().collect();
        if fast != definitional {
            summary.divergences += 1;
            findings.push(Diagnostic::new(
                Code::TriggerAudit,
                Severity::Error,
                format!(
                    "trigger divergence on update `{u}`: fast path selected {:?}, \
                     definitional recomputation selected {:?}",
                    ids(policy, &fast),
                    ids(policy, &definitional),
                ),
            ));
        }
        if let Some(&i) = fast
            .iter()
            .find(|&&i| graph.depends(i).iter().any(|d| !fast.contains(d)))
        {
            summary.divergences += 1;
            findings.push(Diagnostic::new(
                Code::TriggerAudit,
                Severity::Error,
                format!(
                    "closure violation on update `{u}`: rule {} is selected but its \
                     dependency component is not fully selected",
                    policy.rules[i].id,
                ),
            ));
        }
        if doc.is_none() {
            summary.selected_total += fast.len();
        }
    }

    // 3: dynamic cross-check on the instance, when one is available.
    if let Some(doc) = doc {
        summary.dynamic = true;
        dynamic_audit(policy, schema, doc, &corpus, &analysis, &mut summary, &mut findings);
    }

    findings.push(summary_diagnostic(&summary));
    (summary, findings)
}

/// The D5 summary line, rendered from the aggregate numbers alone so the
/// incremental engine can emit a byte-identical diagnostic from cached
/// audit state.
pub(crate) fn summary_diagnostic(summary: &AuditSummary) -> Diagnostic {
    let severity = if summary.sound() { Severity::Info } else { Severity::Error };
    let scope = if summary.dynamic {
        format!(
            "static + dynamic on {} backend(s) ({} sign-state mismatch(es))",
            summary.backends.len(),
            summary.sign_mismatches,
        )
    } else {
        "static only (no document given)".to_string()
    };
    Diagnostic::new(
        Code::TriggerAudit,
        severity,
        format!(
            "trigger-soundness audit over {} update(s): {} divergence(s), {} missed \
             rule(s); selected {} / affected {} (precision {:.2}); {scope}",
            summary.updates,
            summary.divergences,
            summary.missed,
            summary.selected_total,
            summary.affected_total,
            summary.precision(),
        ),
    )
}

fn ids<'a>(policy: &'a Policy, indices: &BTreeSet<usize>) -> Vec<&'a str> {
    indices.iter().map(|&i| policy.rules[i].id.as_str()).collect()
}

/// The dynamic leg: affected-set inclusion plus partial-vs-full
/// re-annotation diffs on the three backends.
fn dynamic_audit(
    policy: &Policy,
    schema: &Schema,
    doc: &Document,
    corpus: &[Path],
    analysis: &PolicyAnalysis,
    summary: &mut AuditSummary,
    findings: &mut Vec<Diagnostic>,
) {
    let _span = xac_obs::span("analyze.audit.dynamic");
    // Deleting the root's direct children tears out whole document
    // sections; like `xac_xmlgen::delete_updates`, keep updates below
    // that level so there is a document left to re-annotate.
    let sections: BTreeSet<&str> = schema.child_types(schema.root()).into_iter().collect();
    for u in corpus {
        let label = match &u.last_step().expect("corpus paths are non-empty").test {
            xac_xpath::NodeTest::Name(n) => n.clone(),
            xac_xpath::NodeTest::Wildcard => continue,
        };
        if sections.contains(label.as_str()) {
            continue;
        }
        let matches = eval(doc, u);
        if matches.is_empty() {
            continue;
        }
        let selected: BTreeSet<usize> = analysis.trigger(u).into_iter().collect();
        summary.selected_total += selected.len();

        // Affected rules, computed definitionally on the tree: a rule is
        // affected when its scope restricted to surviving nodes differs
        // from its scope on the post-delete document.
        let mut doc_after = doc.clone();
        for id in &matches {
            if doc_after.is_alive(*id) {
                doc_after.remove_subtree(*id).expect("matched nodes are removable");
            }
        }
        for (i, rule) in policy.rules.iter().enumerate() {
            let surviving: BTreeSet<_> = eval(doc, &rule.resource)
                .into_iter()
                .filter(|n| doc_after.is_alive(*n))
                .collect();
            let after: BTreeSet<_> = eval(&doc_after, &rule.resource).into_iter().collect();
            if surviving != after {
                summary.affected_total += 1;
                if !selected.contains(&i) {
                    summary.missed += 1;
                    findings.push(
                        Diagnostic::new(
                            Code::TriggerAudit,
                            Severity::Error,
                            format!(
                                "unsound trigger on update `{u}`: rule {} (`{}`) is \
                                 dynamically affected but was not selected",
                                rule.id, rule.resource,
                            ),
                        )
                        .for_rule(&rule.id),
                    );
                }
            }
        }

        // Re-annotation diff: partial (trigger-driven) must land on the
        // same sign state as full re-annotation, on every backend.
        match sign_cross_check(policy, schema, doc, u, summary) {
            Ok(()) => {}
            Err(message) => {
                summary.sign_mismatches += 1;
                findings.push(Diagnostic::new(Code::TriggerAudit, Severity::Error, message));
            }
        }
    }
}

/// The three backends every differential check runs against. Shared
/// with the repair verifier, which re-annotates candidate policies on
/// each of them.
pub(crate) fn backends() -> Vec<Box<dyn Backend>> {
    vec![
        Box::new(NativeXmlBackend::new()),
        Box::new(RelationalBackend::row()),
        Box::new(RelationalBackend::column()),
    ]
}

/// Apply `u` with partial re-annotation on each backend and compare the
/// resulting sign state against a full re-annotation of the same
/// post-delete document.
fn sign_cross_check(
    policy: &Policy,
    schema: &Schema,
    doc: &Document,
    u: &Path,
    summary: &mut AuditSummary,
) -> Result<(), String> {
    let system = System::builder(schema.clone(), policy.clone(), doc.clone())
        .build()
        .map_err(|e| format!("audit system build failed for `{u}`: {e}"))?;
    for (mut partial, mut full) in backends().into_iter().zip(backends()) {
        let name = partial.name().to_string();
        if summary.backends.iter().all(|b| b != &name) {
            summary.backends.push(name.clone());
        }
        let step = |e: xac_core::Error| format!("audit update `{u}` on {name}: {e}");
        system.load(partial.as_mut()).map_err(&step)?;
        system.annotate(partial.as_mut()).map_err(&step)?;
        system.apply_update(partial.as_mut(), u).map_err(&step)?;

        system.load(full.as_mut()).map_err(&step)?;
        system.annotate(full.as_mut()).map_err(&step)?;
        full.delete(u).map_err(&step)?;
        system.full_reannotate(full.as_mut()).map_err(&step)?;

        let got = partial.sign_state().map_err(&step)?;
        let want = full.sign_state().map_err(&step)?;
        if got != want {
            let diff = want
                .iter()
                .filter(|(id, s)| got.get(id) != Some(s))
                .take(5)
                .map(|(id, s)| format!("{id}:{s}"))
                .collect::<Vec<_>>()
                .join(" ");
            return Err(format!(
                "re-annotation diff on {name} for update `{u}`: partial sign state \
                 diverges from full re-annotation (first diffs: {diff})",
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use xac_policy::policy::hospital_policy;
    use xac_xml::parse_dtd;

    fn hospital() -> (Policy, Schema) {
        (
            hospital_policy(),
            parse_dtd(include_str!("../../../data/hospital.dtd")).unwrap(),
        )
    }

    #[test]
    fn static_audit_is_sound_on_hospital() {
        let (policy, schema) = hospital();
        let (summary, findings) = run(&policy, &schema, None, &AuditConfig::default());
        assert!(summary.sound(), "{findings:?}");
        assert!(!summary.dynamic);
        assert!(summary.updates > 0);
        assert_eq!(findings.len(), 1, "only the summary line");
        assert_eq!(findings[0].severity, Severity::Info);
    }

    #[test]
    fn dynamic_audit_proves_soundness_on_all_backends() {
        let (policy, schema) = hospital();
        let doc = Document::parse_str(
            "<hospital><dept><patients>\
             <patient><psn>1</psn><name>a</name>\
             <treatment><regular><med>m</med><bill>9</bill></regular></treatment></patient>\
             <patient><psn>2</psn><name>b</name></patient>\
             </patients><staffinfo>\
             <staff><nurse><sid>7</sid><name>n</name><phone>5</phone></nurse></staff>\
             </staffinfo></dept></hospital>",
        )
        .unwrap();
        let (summary, findings) =
            run(&policy, &schema, Some(&doc), &AuditConfig { max_updates: 20 });
        assert!(summary.sound(), "{findings:?}");
        assert!(summary.dynamic);
        assert_eq!(summary.missed, 0);
        assert_eq!(summary.sign_mismatches, 0);
        assert_eq!(summary.backends.len(), 3, "{:?}", summary.backends);
        assert!(summary.affected_total > 0, "the corpus must exercise scope changes");
        assert!(summary.precision() >= 1.0, "selection over-approximates");
    }

    #[test]
    fn corpus_skips_the_root_and_respects_the_cap() {
        let (_, schema) = hospital();
        let corpus = update_corpus(&schema, 5);
        assert_eq!(corpus.len(), 5);
        assert!(corpus.iter().all(|p| p.to_string() != "//hospital"));
    }
}
