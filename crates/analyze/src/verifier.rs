//! The D1–D4 static verification passes and the run orchestration.
//!
//! Given a [`Policy`] and optionally a [`Schema`], [`Analyzer::run`]
//! produces a [`Report`] of:
//!
//! * **D1 dead-rule** (`XA001`, error) — the rule's XPath is
//!   unsatisfiable on schema-valid documents: every schema
//!   specialization of the path is empty, so the rule can never sign a
//!   node (schema-aware emptiness via [`xac_xpath::schema_variants`]).
//! * **D2 shadowed-rule** (`XA002`, warning) — the rule survives the
//!   optimizer (which only folds *same*-effect containment, §5.1) but
//!   annotation can never observe it under the policy's Table 2
//!   semantics: an allow rule contained in a deny rule under `A − D`
//!   (ds=deny, cr=deny-overrides), a deny rule contained in an allow
//!   rule under `U − (D − A)` (ds=allow, cr=allow-overrides), or any
//!   rule of the effect the degenerate semantics ignore wholesale
//!   (`(+,−) → U − D` discards allows, `(−,+) → A` discards denies).
//! * **D3 conflict** (`XA003`, info) — a `+` and a `−` rule with
//!   overlapping scope, with the witness element type and how the
//!   policy's `cr` resolves the overlap. Informational because
//!   conflicts are *designed into* real policies (the paper's Table 1
//!   pairs R1/R3 deliberately); the lint surfaces them for review.
//! * **D4 coverage-gap** (`XA004`, info) — schema element types no
//!   rule ever signs; those regions carry only the default sign.
//!
//! D1 and D4 need a schema and are skipped without one; D2 and D3
//! degrade to schema-blind containment. The D5 trigger audit lives in
//! [`crate::audit`] and is appended by `run`/`run_with_document`.

use crate::audit::{self, AuditConfig};
use crate::diagnostic::{Code, Diagnostic, Report, Severity};
use std::collections::BTreeSet;
use xac_policy::{rule_spans, ConflictResolution, DefaultSemantics, Effect, Policy, RuleSpan};
use xac_xml::{Document, Schema};
use xac_xpath::{schema_variants, ContainmentOracle, NodeTest, Path};

/// A configured verification run over one policy.
pub struct Analyzer<'a> {
    policy: &'a Policy,
    schema: Option<&'a Schema>,
    source: Option<&'a str>,
    policy_name: String,
    schema_name: Option<String>,
    audit: AuditConfig,
}

impl<'a> Analyzer<'a> {
    /// Analyzer over `policy` with no schema, no source spans and the
    /// default audit corpus size.
    pub fn new(policy: &'a Policy) -> Analyzer<'a> {
        Analyzer {
            policy,
            schema: None,
            source: None,
            policy_name: "<policy>".into(),
            schema_name: None,
            audit: AuditConfig::default(),
        }
    }

    /// Enable the schema-aware passes (D1, D4, sharper D2/D3, D5).
    pub fn with_schema(mut self, schema: &'a Schema) -> Analyzer<'a> {
        self.schema = Some(schema);
        self
    }

    /// Provide the policy source text so diagnostics carry line spans.
    pub fn with_source(mut self, source: &'a str) -> Analyzer<'a> {
        self.source = Some(source);
        self
    }

    /// Display names used in the report (usually file paths).
    pub fn named(mut self, policy: impl Into<String>, schema: Option<String>) -> Analyzer<'a> {
        self.policy_name = policy.into();
        self.schema_name = schema;
        self
    }

    /// Cap the D5 audit corpus at `n` update paths.
    pub fn audit_updates(mut self, n: usize) -> Analyzer<'a> {
        self.audit.max_updates = n;
        self
    }

    /// Run D1–D4 plus the *static* D5 audit (no document available).
    pub fn run(&self) -> Report {
        self.run_inner(None)
    }

    /// Run everything including the dynamic D5 cross-check: affected
    /// rules and partial-vs-full re-annotation diffs on all three
    /// backends, using `doc` as the instance.
    pub fn run_with_document(&self, doc: &Document) -> Report {
        self.run_inner(Some(doc))
    }

    fn run_inner(&self, doc: Option<&Document>) -> Report {
        let _span = xac_obs::span("analyze.verify");
        let oracle = match self.schema {
            Some(s) => ContainmentOracle::with_schema(s.clone()),
            None => ContainmentOracle::new(),
        };
        let lines = self.line_map();
        let spans = self.source.map(rule_spans).unwrap_or_default();
        let mut report = Report {
            policy_name: self.policy_name.clone(),
            schema_name: self.schema_name.clone(),
            ..Report::default()
        };

        let dead = self.dead_rules(&mut report, &lines);
        self.shadowed_rules(&mut report, &lines, &spans, &oracle, &dead);
        self.conflicts(&mut report, &lines, &spans, &oracle, &dead);
        self.coverage_gaps(&mut report, &dead);
        if let Some(schema) = self.schema {
            let (summary, mut findings) =
                audit::run(self.policy, schema, doc, &self.audit);
            report.diagnostics.append(&mut findings);
            report.audit = Some(summary);
        }

        xac_obs::counter("xac_analyze_runs_total").inc();
        xac_obs::counter("xac_analyze_diagnostics_total")
            .add(report.diagnostics.len() as u64);
        // Per-analysis oracle traffic, published into the registry
        // snapshot so hit rates are reportable without process restart.
        oracle.stats().publish("xac_analyze_oracle");
        report
    }

    /// 1-based line of each rule in the policy source, resolved by rule
    /// id (the id is always the first token of its line).
    fn line_map(&self) -> Vec<Option<usize>> {
        let Some(source) = self.source else {
            return vec![None; self.policy.rules.len()];
        };
        self.policy
            .rules
            .iter()
            .map(|r| {
                source.lines().position(|line| {
                    line.split_whitespace().next() == Some(r.id.as_str())
                })
                .map(|idx| idx + 1)
            })
            .collect()
    }

    /// D1: indices of rules whose path matches nothing on schema-valid
    /// documents. `schema_variants` rewrites a path into its child-axis
    /// specializations; an empty set is a proof of emptiness (on
    /// recursive schemas the rewrite abstains, returning the path
    /// itself, so no rule is ever falsely declared dead).
    fn dead_rules(&self, report: &mut Report, lines: &[Option<usize>]) -> BTreeSet<usize> {
        let _span = xac_obs::span("analyze.dead_rules");
        let mut dead = BTreeSet::new();
        let Some(schema) = self.schema else {
            return dead;
        };
        for (i, rule) in self.policy.rules.iter().enumerate() {
            if schema_variants(&rule.resource, schema).is_empty() {
                dead.insert(i);
                report.diagnostics.push(dead_rule_diag(rule, schema, lines[i]));
            }
        }
        dead
    }

    /// D2: rules annotation can never observe under the policy's
    /// semantics. Distinct from the optimizer's redundancy notion: the
    /// optimizer folds a rule into a *same*-effect container (§5.1) and
    /// keeps opposite-effect pairs for conflict resolution — this pass
    /// flags exactly those kept rules whose contribution Table 2 then
    /// cancels out.
    fn shadowed_rules(
        &self,
        report: &mut Report,
        lines: &[Option<usize>],
        spans: &[RuleSpan],
        oracle: &ContainmentOracle,
        dead: &BTreeSet<usize>,
    ) {
        let _span = xac_obs::span("analyze.shadowed");
        let ds = self.policy.default_semantics;
        let cr = self.policy.conflict_resolution;
        // Degenerate Table 2 rows first: one whole effect class is
        // discarded before any containment question arises.
        if let Some(effect) = discarded_effect(ds, cr) {
            for (i, rule) in self.policy.rules.iter().enumerate() {
                if rule.effect == effect && !dead.contains(&i) {
                    report.diagnostics.push(degenerate_shadow_diag(ds, cr, rule, lines[i]));
                }
            }
            return;
        }
        // Non-degenerate rows: a rule loses to an opposite-effect
        // container. Under A − D (ds=−, cr=−) an allow inside a deny
        // grants nothing; under U − (D − A) (ds=+, cr=+) a deny inside
        // an allow denies nothing.
        let (shadowed_effect, winner_effect) =
            shadow_roles(ds, cr).expect("degenerate rows returned above");
        for (i, rule) in self.policy.rules.iter().enumerate() {
            if rule.effect != shadowed_effect || dead.contains(&i) {
                continue;
            }
            let winner = self.policy.rules.iter().enumerate().find(|(j, w)| {
                w.effect == winner_effect
                    && !dead.contains(j)
                    && oracle.contained_in_schema_aware(&rule.resource, &w.resource)
            });
            if let Some((j, winner)) = winner {
                report.diagnostics.push(shadow_diag(
                    rule,
                    winner,
                    cr,
                    lines[i],
                    lines[j],
                    qualifier_col(spans, &rule.id),
                ));
            }
        }
    }

    /// D3: `+`/`−` rule pairs with overlapping scope. Containment in
    /// either direction is a definite overlap; otherwise the sound
    /// schema-aware disjointness test abstaining
    /// ([`ContainmentOracle::disjoint_schema_aware`]) is a possible one
    /// — with a schema, pairs whose qualifiers contradict on a
    /// single-occurrence child (e.g. `[bill <= 1000]` vs
    /// `[bill > 1000]`) are proved overlap-free and not reported.
    fn conflicts(
        &self,
        report: &mut Report,
        lines: &[Option<usize>],
        spans: &[RuleSpan],
        oracle: &ContainmentOracle,
        dead: &BTreeSet<usize>,
    ) {
        let _span = xac_obs::span("analyze.conflicts");
        for (i, a) in self.policy.rules.iter().enumerate() {
            if a.effect != Effect::Allow || dead.contains(&i) {
                continue;
            }
            for (j, d) in self.policy.rules.iter().enumerate() {
                if d.effect != Effect::Deny || dead.contains(&j) {
                    continue;
                }
                let a_in_d = oracle.contained_in_schema_aware(&a.resource, &d.resource);
                let d_in_a = oracle.contained_in_schema_aware(&d.resource, &a.resource);
                let definite = a_in_d || d_in_a;
                if !definite && oracle.disjoint_schema_aware(&a.resource, &d.resource) {
                    continue;
                }
                let witness = witness_type(&a.resource, &d.resource, self.schema)
                    .unwrap_or_else(|| "*".into());
                report.diagnostics.push(conflict_diag(
                    a,
                    d,
                    definite,
                    &witness,
                    self.policy.conflict_resolution,
                    lines[i],
                    qualifier_col(spans, &a.id),
                ));
            }
        }
    }

    /// D4: reachable schema element types no live rule ever signs.
    /// Conservative in the covering direction: a rule ending in a
    /// wildcard (or left verbatim because the schema is recursive) is
    /// treated as covering everything, so a type is only reported when
    /// no rule can possibly sign it.
    fn coverage_gaps(&self, report: &mut Report, dead: &BTreeSet<usize>) {
        let _span = xac_obs::span("analyze.coverage");
        let Some(schema) = self.schema else {
            return;
        };
        let mut covered: BTreeSet<String> = BTreeSet::new();
        for (i, rule) in self.policy.rules.iter().enumerate() {
            if dead.contains(&i) {
                continue;
            }
            for variant in schema_variants(&rule.resource, schema) {
                match end_label(&variant) {
                    Some(name) => {
                        covered.insert(name);
                    }
                    // A wildcard end (or a verbatim path on a recursive
                    // schema) may sign any type: no gap is provable.
                    None => return,
                }
            }
        }
        let gaps: Vec<&str> = schema
            .reachable_types()
            .into_iter()
            .filter(|t| !covered.contains(*t))
            .collect();
        if gaps.is_empty() {
            return;
        }
        report.diagnostics.push(coverage_gap_diag(
            &gaps,
            schema.reachable_types().len(),
            self.policy.default_semantics,
        ));
    }
}

/// The effect class the degenerate Table 2 rows discard wholesale, if
/// the `(ds, cr)` row is degenerate.
pub(crate) fn discarded_effect(
    ds: DefaultSemantics,
    cr: ConflictResolution,
) -> Option<Effect> {
    match (ds, cr) {
        // (+,−) → U − D: allow rules contribute nothing.
        (DefaultSemantics::Allow, ConflictResolution::DenyOverrides) => Some(Effect::Allow),
        // (−,+) → A: deny rules contribute nothing.
        (DefaultSemantics::Deny, ConflictResolution::AllowOverrides) => Some(Effect::Deny),
        _ => None,
    }
}

/// For the non-degenerate rows, `(shadowed_effect, winner_effect)`:
/// which effect loses to an opposite-effect container, and which wins.
pub(crate) fn shadow_roles(
    ds: DefaultSemantics,
    cr: ConflictResolution,
) -> Option<(Effect, Effect)> {
    match (ds, cr) {
        (DefaultSemantics::Deny, ConflictResolution::DenyOverrides) => {
            Some((Effect::Allow, Effect::Deny))
        }
        (DefaultSemantics::Allow, ConflictResolution::AllowOverrides) => {
            Some((Effect::Deny, Effect::Allow))
        }
        _ => None,
    }
}

// The diagnostic constructors are shared with the incremental engine
// (`crate::incremental`), which re-emits cached findings: keeping every
// message format in exactly one place is what makes "incremental report
// == full report" a byte-level guarantee rather than a convention.

/// The D1 finding for a schema-dead rule.
pub(crate) fn dead_rule_diag(
    rule: &xac_policy::Rule,
    schema: &Schema,
    line: Option<usize>,
) -> Diagnostic {
    Diagnostic::new(
        Code::DeadRule,
        Severity::Error,
        format!(
            "dead rule: `{}` matches no element of any document valid \
             against schema rooted at <{}>",
            rule.resource,
            schema.root()
        ),
    )
    .for_rule(&rule.id)
    .at_line(line)
    .with_note(
        "every schema specialization of the path is empty; the rule can \
         never sign a node and its effect is unreachable"
            .to_string(),
    )
}

/// The D2 finding for a rule discarded by a degenerate Table 2 row.
pub(crate) fn degenerate_shadow_diag(
    ds: DefaultSemantics,
    cr: ConflictResolution,
    rule: &xac_policy::Rule,
    line: Option<usize>,
) -> Diagnostic {
    Diagnostic::new(
        Code::ShadowedRule,
        Severity::Warning,
        format!(
            "shadowed rule: under (ds={}, cr={}) the Table 2 semantics \
             is `{}`, which ignores every {} rule",
            ds.sign(),
            cr.sign(),
            if rule.effect == Effect::Allow { "U - D" } else { "A" },
            rule.effect,
        ),
    )
    .for_rule(&rule.id)
    .at_line(line)
}

/// The D2 finding for a rule contained in an opposite-effect winner.
pub(crate) fn shadow_diag(
    rule: &xac_policy::Rule,
    winner: &xac_policy::Rule,
    cr: ConflictResolution,
    line: Option<usize>,
    winner_line: Option<usize>,
    col: Option<usize>,
) -> Diagnostic {
    Diagnostic::new(
        Code::ShadowedRule,
        Severity::Warning,
        format!(
            "shadowed rule: `{}` is contained in {} rule {} (`{}`), and \
             conflict resolution {} makes the containing rule win on every \
             node — this rule's sign is never observable",
            rule.resource,
            winner.effect,
            winner.id,
            winner.resource,
            cr.sign(),
        ),
    )
    .for_rule(&rule.id)
    .at_line(line)
    .at_col(col)
    .with_note(format!(
        "the optimizer keeps opposite-effect pairs (its redundancy notion \
         folds same-effect containment only); see rule {} at line {}",
        winner.id,
        winner_line.map(|l| l.to_string()).unwrap_or_else(|| "?".into()),
    ))
}

/// The D3 finding for one allow/deny overlap.
pub(crate) fn conflict_diag(
    a: &xac_policy::Rule,
    d: &xac_policy::Rule,
    definite: bool,
    witness: &str,
    cr: ConflictResolution,
    line: Option<usize>,
    col: Option<usize>,
) -> Diagnostic {
    let resolution = match cr {
        ConflictResolution::AllowOverrides => "allow-overrides grants the overlap",
        ConflictResolution::DenyOverrides => "deny-overrides denies the overlap",
    };
    Diagnostic::new(
        Code::Conflict,
        Severity::Info,
        format!(
            "{} conflict between allow rule {} (`{}`) and deny rule {} \
             (`{}`): overlapping scope at element type <{}>; {}",
            if definite { "definite" } else { "possible" },
            a.id,
            a.resource,
            d.id,
            d.resource,
            witness,
            resolution,
        ),
    )
    .for_rule(&a.id)
    .at_line(line)
    .at_col(col)
}

/// The D4 finding listing all uncovered element types.
pub(crate) fn coverage_gap_diag(
    gaps: &[&str],
    total: usize,
    ds: DefaultSemantics,
) -> Diagnostic {
    let sign = ds.sign();
    Diagnostic::new(
        Code::CoverageGap,
        Severity::Info,
        format!(
            "coverage gap: {} of {} reachable element type(s) are signed by no \
             rule and always carry the default sign `{sign}`: {}",
            gaps.len(),
            total,
            gaps.join(", "),
        ),
    )
    .with_note(
        "default-sign-only regions are not errors, but every access decision \
         there depends solely on the `default` declaration"
            .to_string(),
    )
}

/// The element type where two overlapping rules meet: a common
/// end-label of their schema specializations (or of the raw paths
/// without a schema).
pub(crate) fn witness_type(a: &Path, d: &Path, schema: Option<&Schema>) -> Option<String> {
    let ends = |p: &Path| -> BTreeSet<String> {
        let variants = match schema {
            Some(schema) => schema_variants(p, schema),
            None => vec![p.clone()],
        };
        variants.iter().filter_map(end_label).collect()
    };
    let a_ends = ends(a);
    let d_ends = ends(d);
    if a_ends.is_empty() {
        return d_ends.into_iter().next();
    }
    if d_ends.is_empty() {
        return a_ends.into_iter().next();
    }
    a_ends.intersection(&d_ends).next().cloned().or_else(|| a_ends.into_iter().next())
}

/// Column of the rule's first qualifier group, when source spans are
/// available and the rule's resource has one: the predicate is what
/// XA002/XA003 findings are really about, so the diagnostic points at
/// it rather than the start of the line.
fn qualifier_col(spans: &[RuleSpan], rule_id: &str) -> Option<usize> {
    spans
        .iter()
        .find(|s| s.id == rule_id)
        .and_then(|s| s.first_qualifier())
        .map(|q| q.col_start)
}

/// The element name a path's final step selects, `None` for wildcards.
pub(crate) fn end_label(p: &Path) -> Option<String> {
    match &p.last_step()?.test {
        NodeTest::Name(n) => Some(n.clone()),
        NodeTest::Wildcard => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xac_policy::policy::hospital_policy;
    use xac_xml::parse_dtd;

    fn hospital_schema() -> Schema {
        parse_dtd(include_str!("../../../data/hospital.dtd")).unwrap()
    }

    #[test]
    fn hospital_policy_is_clean_of_errors_and_warnings() {
        let policy = hospital_policy();
        let schema = hospital_schema();
        let report = Analyzer::new(&policy).with_schema(&schema).run();
        assert_eq!(report.count(Severity::Error), 0, "{}", report.to_text());
        assert_eq!(report.count(Severity::Warning), 0, "{}", report.to_text());
        assert_eq!(report.exit_code(true), 0, "clean under --deny warn");
        // But the designed-in R1/R3 overlap and the staff-side gap are
        // surfaced as info.
        assert!(report.codes().contains(&"XA003"), "{}", report.to_text());
        assert!(report.codes().contains(&"XA004"), "{}", report.to_text());
    }

    #[test]
    fn dead_rule_is_an_error_with_a_span() {
        let src = "default deny\nconflict deny-overrides\nR1 allow //nurse/med\n";
        let policy = Policy::parse(src).unwrap();
        let schema = hospital_schema();
        let report = Analyzer::new(&policy)
            .with_schema(&schema)
            .with_source(src)
            .named("p.pol", None)
            .run();
        let dead: Vec<_> =
            report.diagnostics.iter().filter(|d| d.code == Code::DeadRule).collect();
        assert_eq!(dead.len(), 1, "{}", report.to_text());
        assert_eq!(dead[0].severity, Severity::Error);
        assert_eq!(dead[0].rule.as_deref(), Some("R1"));
        assert_eq!(dead[0].line, Some(3));
        assert_eq!(report.exit_code(false), 5);
    }

    #[test]
    fn no_false_dead_rules_without_schema() {
        let policy =
            Policy::parse("default deny\nconflict deny-overrides\nR1 allow //nurse/med\n")
                .unwrap();
        let report = Analyzer::new(&policy).run();
        assert!(report.diagnostics.iter().all(|d| d.code != Code::DeadRule));
    }

    #[test]
    fn shadowed_allow_under_deny_overrides() {
        let policy = Policy::parse(
            "default deny\nconflict deny-overrides\n\
             D1 deny //patient[treatment]\nA1 allow //patient[treatment and psn]\n",
        )
        .unwrap();
        let report = Analyzer::new(&policy).run();
        let shadowed: Vec<_> =
            report.diagnostics.iter().filter(|d| d.code == Code::ShadowedRule).collect();
        assert_eq!(shadowed.len(), 1, "{}", report.to_text());
        assert_eq!(shadowed[0].rule.as_deref(), Some("A1"));
        assert_eq!(shadowed[0].severity, Severity::Warning);
        assert_eq!(report.exit_code(true), 6, "warnings gate under deny");
        assert_eq!(report.exit_code(false), 0);
    }

    #[test]
    fn degenerate_semantics_shadow_a_whole_effect() {
        let policy = Policy::parse(
            "default allow\nconflict deny-overrides\nA1 allow //patient\nD1 deny //regular\n",
        )
        .unwrap();
        let report = Analyzer::new(&policy).run();
        let shadowed: Vec<_> =
            report.diagnostics.iter().filter(|d| d.code == Code::ShadowedRule).collect();
        assert_eq!(shadowed.len(), 1, "(+,-) discards allow rules: {}", report.to_text());
        assert_eq!(shadowed[0].rule.as_deref(), Some("A1"));
    }

    #[test]
    fn conflict_reports_witness_and_resolution() {
        let policy = hospital_policy();
        let schema = hospital_schema();
        let report = Analyzer::new(&policy).with_schema(&schema).run();
        let conflict = report
            .diagnostics
            .iter()
            .find(|d| d.code == Code::Conflict && d.rule.as_deref() == Some("R1"))
            .expect("R1/R3 conflict surfaced");
        assert!(conflict.message.contains("<patient>"), "{}", conflict.message);
        assert!(conflict.message.contains("deny-overrides"), "{}", conflict.message);
    }

    #[test]
    fn qualifier_spans_point_at_the_predicate() {
        let src = "default deny\nconflict deny-overrides\n\
                   D1 deny //patient[treatment]\nA1 allow //patient[treatment and psn]\n";
        let policy = Policy::parse(src).unwrap();
        let report =
            Analyzer::new(&policy).with_source(src).named("p.pol", None).run();
        let shadowed = report
            .diagnostics
            .iter()
            .find(|d| d.code == Code::ShadowedRule)
            .expect("A1 is shadowed by D1");
        assert_eq!(shadowed.line, Some(4));
        assert_eq!(shadowed.col, Some(19), "column of `[treatment and psn]`");
        assert!(report.to_text().contains("p.pol:4:19"), "{}", report.to_text());
    }

    #[test]
    fn schema_disjoint_qualifiers_are_not_conflicts() {
        let schema = hospital_schema();
        let policy = Policy::parse(
            "default deny\nconflict deny-overrides\n\
             W4 allow //regular[bill > 500][bill <= 1000]\nW5 deny //regular[bill > 1000]\n",
        )
        .unwrap();
        let report = Analyzer::new(&policy).with_schema(&schema).run();
        assert!(
            report.diagnostics.iter().all(|d| d.code != Code::Conflict),
            "contradicting bills on a single-occurrence child cannot overlap: {}",
            report.to_text()
        );
        // Without the bound on W4, the pair genuinely overlaps.
        let policy = Policy::parse(
            "default deny\nconflict deny-overrides\n\
             W4 allow //regular[bill > 500]\nW5 deny //regular[bill > 1000]\n",
        )
        .unwrap();
        let report = Analyzer::new(&policy).with_schema(&schema).run();
        assert!(report.diagnostics.iter().any(|d| d.code == Code::Conflict));
    }

    #[test]
    fn wildcard_rule_suppresses_coverage_gaps() {
        let policy =
            Policy::parse("default deny\nconflict deny-overrides\nR1 allow //*\n").unwrap();
        let schema = hospital_schema();
        let report = Analyzer::new(&policy).with_schema(&schema).run();
        assert!(
            report.diagnostics.iter().all(|d| d.code != Code::CoverageGap),
            "{}",
            report.to_text()
        );
    }
}
