//! Diagnostic model for the static policy verifier.
//!
//! Every finding the verifier produces is a [`Diagnostic`]: a stable
//! code (`XA001`…`XA005`), a severity, an optional span into the policy
//! source (rule id + line number), and a human message. A run's
//! diagnostics are collected into a [`Report`] that renders to terminal
//! text or machine-readable JSON and decides the process exit code.

use std::fmt::Write as _;

/// How bad a finding is. Ordering matters: `Error > Warning > Info`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Never gates the exit code on its own.
    Info,
    /// Gates the exit code only under `--deny warn`.
    Warning,
    /// Always gates the exit code.
    Error,
}

impl Severity {
    /// Lower-case label used in both text and JSON output.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Info => "info",
        }
    }
}

/// Stable diagnostic codes, one per verifier pass (D1–D5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Code {
    /// D1 — rule path unsatisfiable against the schema.
    DeadRule,
    /// D2 — rule kept by the optimizer but unobservable in annotation.
    ShadowedRule,
    /// D3 — a `+` and a `−` rule with overlapping scope.
    Conflict,
    /// D4 — schema element types no rule ever signs.
    CoverageGap,
    /// D5 — trigger-soundness audit finding or summary.
    TriggerAudit,
}

impl Code {
    /// The stable `XA…` identifier.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::DeadRule => "XA001",
            Code::ShadowedRule => "XA002",
            Code::Conflict => "XA003",
            Code::CoverageGap => "XA004",
            Code::TriggerAudit => "XA005",
        }
    }

    /// Short kebab-case name of the pass.
    pub fn kind(self) -> &'static str {
        match self {
            Code::DeadRule => "dead-rule",
            Code::ShadowedRule => "shadowed-rule",
            Code::Conflict => "conflict",
            Code::CoverageGap => "coverage-gap",
            Code::TriggerAudit => "trigger-audit",
        }
    }
}

/// One verifier finding.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Which pass produced it.
    pub code: Code,
    /// How bad it is.
    pub severity: Severity,
    /// The rule the finding is about, when it is about one rule.
    pub rule: Option<String>,
    /// 1-based line of that rule in the policy source, when known.
    pub line: Option<usize>,
    /// 1-based column within that line (the exact qualifier being
    /// flagged), when known.
    pub col: Option<usize>,
    /// The finding itself.
    pub message: String,
    /// Optional secondary explanation (rendered indented / as `note`).
    pub note: Option<String>,
}

impl Diagnostic {
    /// A finding not anchored to a single rule.
    pub fn new(code: Code, severity: Severity, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity,
            rule: None,
            line: None,
            col: None,
            message: message.into(),
            note: None,
        }
    }

    /// Anchor the finding to a rule id.
    pub fn for_rule(mut self, rule: impl Into<String>) -> Diagnostic {
        self.rule = Some(rule.into());
        self
    }

    /// Attach the rule's line in the policy source.
    pub fn at_line(mut self, line: Option<usize>) -> Diagnostic {
        self.line = line;
        self
    }

    /// Attach the column of the exact span being flagged.
    pub fn at_col(mut self, col: Option<usize>) -> Diagnostic {
        self.col = col;
        self
    }

    /// Attach a secondary note.
    pub fn with_note(mut self, note: impl Into<String>) -> Diagnostic {
        self.note = Some(note.into());
        self
    }
}

/// Aggregate numbers from the D5 trigger-soundness audit, carried on the
/// report so JSON consumers (and `BENCH_analyze.json`) get them without
/// parsing messages.
#[derive(Debug, Clone, Default)]
pub struct AuditSummary {
    /// Update XPaths audited.
    pub updates: usize,
    /// Σ |selected| — rules the Fig. 8 trigger selected, over all updates.
    pub selected_total: usize,
    /// Σ |affected| — rules whose scope actually changed (dynamic runs only).
    pub affected_total: usize,
    /// Dynamically affected rules the trigger missed (must be 0).
    pub missed: usize,
    /// Fast-path vs definitional trigger divergences (must be 0).
    pub divergences: usize,
    /// Backends whose partial-vs-full sign state was cross-checked.
    pub backends: Vec<String>,
    /// Sign-state mismatches between partial and full re-annotation.
    pub sign_mismatches: usize,
    /// Whether a document was available (dynamic cross-check ran).
    pub dynamic: bool,
}

impl AuditSummary {
    /// D5 precision `|selected| / |affected|` (≥ 1 when sound; the
    /// over-approximation factor). 1.0 when nothing was affected.
    pub fn precision(&self) -> f64 {
        if self.affected_total == 0 {
            1.0
        } else {
            self.selected_total as f64 / self.affected_total as f64
        }
    }

    /// Zero missed rules, zero divergences, zero sign mismatches.
    pub fn sound(&self) -> bool {
        self.missed == 0 && self.divergences == 0 && self.sign_mismatches == 0
    }
}

/// The outcome of one verifier run.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Display name of the policy (usually its file path).
    pub policy_name: String,
    /// Display name of the schema, when one was given.
    pub schema_name: Option<String>,
    /// All findings, in pass order (D1 → D5).
    pub diagnostics: Vec<Diagnostic>,
    /// D5 aggregate numbers, when the audit ran.
    pub audit: Option<AuditSummary>,
}

impl Report {
    /// Count findings at exactly `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == severity).count()
    }

    /// All distinct codes present, sorted.
    pub fn codes(&self) -> Vec<&'static str> {
        let mut v: Vec<&'static str> = self.diagnostics.iter().map(|d| d.code.as_str()).collect();
        v.sort();
        v.dedup();
        v
    }

    /// Exit code for the CLI: 5 when errors are present, 6 when warnings
    /// are present and `deny_warnings` is set, 0 otherwise. Info findings
    /// never gate.
    pub fn exit_code(&self, deny_warnings: bool) -> u8 {
        if self.count(Severity::Error) > 0 {
            5
        } else if deny_warnings && self.count(Severity::Warning) > 0 {
            6
        } else {
            0
        }
    }

    /// Diagnostics in render order: by source span (line, then column,
    /// unanchored findings last), then code, then rule id, with the
    /// original pass order breaking remaining ties. Both renderers use
    /// this ordering, so text and JSON output are stable regardless of
    /// the order passes pushed their findings.
    pub fn sorted(&self) -> Vec<&Diagnostic> {
        let mut ds: Vec<&Diagnostic> = self.diagnostics.iter().collect();
        ds.sort_by_key(|d| {
            (
                d.line.is_none(),
                d.line.unwrap_or(0),
                d.col.is_none(),
                d.col.unwrap_or(0),
                d.code,
                d.rule.clone(),
            )
        });
        ds
    }

    /// Human-readable rendering, one finding per line plus a summary.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for d in self.sorted() {
            let _ = write!(out, "{}[{}]", d.severity.label(), d.code.as_str());
            let _ = write!(out, " {}", self.policy_name);
            if let Some(line) = d.line {
                let _ = write!(out, ":{line}");
                if let Some(col) = d.col {
                    let _ = write!(out, ":{col}");
                }
            }
            if let Some(rule) = &d.rule {
                let _ = write!(out, " rule {rule}");
            }
            let _ = writeln!(out, ": {}", d.message);
            if let Some(note) = &d.note {
                let _ = writeln!(out, "    note: {note}");
            }
        }
        let _ = writeln!(
            out,
            "{}: {} error(s), {} warning(s), {} info(s)",
            self.policy_name,
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Info),
        );
        out
    }

    /// Machine-readable rendering (valid JSON; checked by
    /// `xac_obs::validate_json` in tests and CI).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"policy\": \"{}\",", escape(&self.policy_name));
        match &self.schema_name {
            Some(s) => {
                let _ = writeln!(out, "  \"schema\": \"{}\",", escape(s));
            }
            None => out.push_str("  \"schema\": null,\n"),
        }
        out.push_str("  \"diagnostics\": [\n");
        let sorted = self.sorted();
        for (i, d) in sorted.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"code\": \"{}\", \"kind\": \"{}\", \"severity\": \"{}\", ",
                d.code.as_str(),
                d.code.kind(),
                d.severity.label()
            );
            match &d.rule {
                Some(r) => {
                    let _ = write!(out, "\"rule\": \"{}\", ", escape(r));
                }
                None => out.push_str("\"rule\": null, "),
            }
            match d.line {
                Some(l) => {
                    let _ = write!(out, "\"line\": {l}, ");
                }
                None => out.push_str("\"line\": null, "),
            }
            match d.col {
                Some(c) => {
                    let _ = write!(out, "\"col\": {c}, ");
                }
                None => out.push_str("\"col\": null, "),
            }
            let _ = write!(out, "\"message\": \"{}\"", escape(&d.message));
            if let Some(note) = &d.note {
                let _ = write!(out, ", \"note\": \"{}\"", escape(note));
            }
            out.push('}');
            if i + 1 < sorted.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ],\n");
        let _ = write!(
            out,
            "  \"summary\": {{\"errors\": {}, \"warnings\": {}, \"infos\": {}}}",
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Info),
        );
        if let Some(a) = &self.audit {
            let backends: Vec<String> =
                a.backends.iter().map(|b| format!("\"{}\"", escape(b))).collect();
            let _ = write!(
                out,
                ",\n  \"audit\": {{\"updates\": {}, \"selected\": {}, \"affected\": {}, \
                 \"missed\": {}, \"divergences\": {}, \"sign_mismatches\": {}, \
                 \"precision\": {:.4}, \"dynamic\": {}, \"sound\": {}, \"backends\": [{}]}}",
                a.updates,
                a.selected_total,
                a.affected_total,
                a.missed,
                a.divergences,
                a.sign_mismatches,
                a.precision(),
                a.dynamic,
                a.sound(),
                backends.join(", "),
            );
        }
        out.push_str("\n}\n");
        out
    }
}

/// Minimal JSON string escaping (the only metacharacters our messages
/// can contain are quotes and backslashes; control chars are escaped for
/// completeness).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report {
            policy_name: "p.pol".into(),
            schema_name: Some("s.dtd".into()),
            diagnostics: vec![
                Diagnostic::new(Code::DeadRule, Severity::Error, "dead \"rule\"")
                    .for_rule("R1")
                    .at_line(Some(3)),
                Diagnostic::new(Code::Conflict, Severity::Info, "overlap"),
            ],
            audit: Some(AuditSummary {
                updates: 4,
                selected_total: 6,
                affected_total: 4,
                backends: vec!["native/xml".into()],
                dynamic: true,
                ..AuditSummary::default()
            }),
        }
    }

    #[test]
    fn exit_codes_gate_by_severity() {
        let mut r = sample();
        assert_eq!(r.exit_code(false), 5, "errors always gate");
        r.diagnostics[0].severity = Severity::Warning;
        assert_eq!(r.exit_code(false), 0, "warnings pass by default");
        assert_eq!(r.exit_code(true), 6, "warnings gate under deny");
        r.diagnostics[0].severity = Severity::Info;
        assert_eq!(r.exit_code(true), 0, "info never gates");
    }

    #[test]
    fn errors_beat_warnings_regardless_of_order() {
        // With both present, the error path must win deterministically
        // under `--deny warn` — whichever order the passes emitted them.
        let mut r = sample();
        r.diagnostics.push(
            Diagnostic::new(Code::ShadowedRule, Severity::Warning, "shadowed")
                .for_rule("R0")
                .at_line(Some(1)),
        );
        assert_eq!(r.exit_code(true), 5);
        r.diagnostics.reverse();
        assert_eq!(r.exit_code(true), 5);
    }

    #[test]
    fn rendering_orders_by_span_then_code() {
        let mut r = sample();
        r.diagnostics = vec![
            Diagnostic::new(Code::CoverageGap, Severity::Info, "gap"),
            Diagnostic::new(Code::Conflict, Severity::Info, "late")
                .for_rule("R7")
                .at_line(Some(9)),
            Diagnostic::new(Code::Conflict, Severity::Info, "precise")
                .for_rule("R4")
                .at_line(Some(4))
                .at_col(Some(19)),
            Diagnostic::new(Code::ShadowedRule, Severity::Warning, "shadowed")
                .for_rule("R4")
                .at_line(Some(4)),
        ];
        let order: Vec<&str> = r.sorted().iter().map(|d| d.message.as_str()).collect();
        // Line 4 first (col-anchored before col-less on the same line),
        // then line 9, then the unanchored gap last.
        assert_eq!(order, vec!["precise", "shadowed", "late", "gap"]);
        let text = r.to_text();
        assert!(
            text.contains("info[XA003] p.pol:4:19 rule R4: precise"),
            "line:col rendering: {text}"
        );
        let first = text.lines().next().unwrap();
        assert!(first.contains("precise"), "{text}");
    }

    #[test]
    fn text_mentions_code_line_and_rule() {
        let text = sample().to_text();
        assert!(text.contains("error[XA001] p.pol:3 rule R1: dead \"rule\""), "{text}");
        assert!(text.contains("1 error(s)"), "{text}");
    }

    #[test]
    fn json_is_valid_and_escaped() {
        let json = sample().to_json();
        xac_obs::validate_json(&json).expect("report JSON must validate");
        assert!(json.contains("\\\"rule\\\""), "quotes escaped: {json}");
        assert!(json.contains("\"precision\": 1.5000"), "{json}");
    }

    #[test]
    fn audit_precision_handles_zero_affected() {
        let a = AuditSummary { updates: 1, selected_total: 3, ..AuditSummary::default() };
        assert_eq!(a.precision(), 1.0);
        assert!(a.sound());
    }
}
