//! XQuery-lite node-set algebra.
//!
//! The annotation query of §5.2 runs in the native store as
//!
//! ```text
//! for $n := doc("xmlgen")((R1 union R2 union R6) except (R3 union R5))
//! return xmlac:annotate($n, "+")
//! ```
//!
//! [`NodeSetExpr`] is the algebraic core of that expression: paths
//! combined with `union` and `except`. Evaluation happens inside
//! [`crate::StoredDocument::eval_expr`].

use crate::Result;
use std::fmt;
use xac_xpath::Path;

/// A node-set expression over one document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeSetExpr {
    /// An absolute path.
    Path(Path),
    /// Set union.
    Union(Box<NodeSetExpr>, Box<NodeSetExpr>),
    /// Set difference.
    Except(Box<NodeSetExpr>, Box<NodeSetExpr>),
}

impl NodeSetExpr {
    /// Parse a path into a leaf expression.
    pub fn path(src: &str) -> Result<NodeSetExpr> {
        Ok(NodeSetExpr::Path(xac_xpath::parse(src)?))
    }

    /// Union of many paths (`None` when the list is empty).
    pub fn union_of(paths: Vec<Path>) -> Option<NodeSetExpr> {
        let mut iter = paths.into_iter();
        let first = NodeSetExpr::Path(iter.next()?);
        Some(iter.fold(first, |acc, p| {
            NodeSetExpr::Union(Box::new(acc), Box::new(NodeSetExpr::Path(p)))
        }))
    }

    /// `self except other`.
    pub fn except(self, other: NodeSetExpr) -> NodeSetExpr {
        NodeSetExpr::Except(Box::new(self), Box::new(other))
    }
}

impl fmt::Display for NodeSetExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeSetExpr::Path(p) => write!(f, "{p}"),
            NodeSetExpr::Union(a, b) => write!(f, "({a} union {b})"),
            NodeSetExpr::Except(a, b) => write!(f, "({a} except {b})"),
        }
    }
}

impl NodeSetExpr {
    /// Parse the textual algebra, e.g. the paper's
    /// `(//patient union //patient/name union //regular) except
    /// (//patient[treatment] union //patient[.//experimental])`.
    ///
    /// `union` and `except` are left-associative with equal precedence;
    /// parenthesize to group. Round-trips with `Display`.
    pub fn parse(src: &str) -> crate::Result<NodeSetExpr> {
        let tokens = tokenize_expr(src)?;
        let mut pos = 0usize;
        let expr = parse_expr(&tokens, &mut pos)?;
        if pos != tokens.len() {
            return Err(crate::Error::Query(format!(
                "trailing tokens after expression: {:?}",
                &tokens[pos..]
            )));
        }
        Ok(expr)
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    LParen,
    RParen,
    Union,
    Except,
    Path(String),
}

/// Split the expression into parens, operators and path chunks. Brackets
/// and string literals inside paths shield their content (a predicate may
/// contain spaces and even the words `union`/`except` inside quotes).
fn tokenize_expr(src: &str) -> crate::Result<Vec<Tok>> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        match bytes[i] {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'(' => {
                out.push(Tok::LParen);
                i += 1;
            }
            b')' => {
                out.push(Tok::RParen);
                i += 1;
            }
            _ => {
                // A word or a path: read until a top-level delimiter.
                let start = i;
                let mut depth = 0usize;
                let mut quote: Option<u8> = None;
                while i < bytes.len() {
                    let b = bytes[i];
                    if let Some(q) = quote {
                        if b == q {
                            quote = None;
                        }
                        i += 1;
                        continue;
                    }
                    match b {
                        b'"' | b'\'' => {
                            quote = Some(b);
                            i += 1;
                        }
                        b'[' => {
                            depth += 1;
                            i += 1;
                        }
                        b']' => {
                            depth = depth.saturating_sub(1);
                            i += 1;
                        }
                        b'(' | b')' if depth == 0 => break,
                        b' ' | b'\t' | b'\r' | b'\n' if depth == 0 => break,
                        _ => i += 1,
                    }
                }
                if quote.is_some() {
                    return Err(crate::Error::Query("unterminated string literal".into()));
                }
                let word = &src[start..i];
                out.push(match word {
                    "union" => Tok::Union,
                    "except" => Tok::Except,
                    path => Tok::Path(path.to_string()),
                });
            }
        }
    }
    Ok(out)
}

fn parse_expr(tokens: &[Tok], pos: &mut usize) -> crate::Result<NodeSetExpr> {
    let mut left = parse_primary(tokens, pos)?;
    loop {
        match tokens.get(*pos) {
            Some(Tok::Union) => {
                *pos += 1;
                let right = parse_primary(tokens, pos)?;
                left = NodeSetExpr::Union(Box::new(left), Box::new(right));
            }
            Some(Tok::Except) => {
                *pos += 1;
                let right = parse_primary(tokens, pos)?;
                left = NodeSetExpr::Except(Box::new(left), Box::new(right));
            }
            _ => return Ok(left),
        }
    }
}

fn parse_primary(tokens: &[Tok], pos: &mut usize) -> crate::Result<NodeSetExpr> {
    match tokens.get(*pos) {
        Some(Tok::LParen) => {
            *pos += 1;
            let inner = parse_expr(tokens, pos)?;
            match tokens.get(*pos) {
                Some(Tok::RParen) => {
                    *pos += 1;
                    Ok(inner)
                }
                other => Err(crate::Error::Query(format!("expected `)`, found {other:?}"))),
            }
        }
        Some(Tok::Path(p)) => {
            *pos += 1;
            NodeSetExpr::path(p)
        }
        other => Err(crate::Error::Query(format!(
            "expected a path or `(`, found {other:?}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders() {
        let paths = vec![
            xac_xpath::parse("//a").unwrap(),
            xac_xpath::parse("//b").unwrap(),
            xac_xpath::parse("//c").unwrap(),
        ];
        let u = NodeSetExpr::union_of(paths).unwrap();
        assert_eq!(u.to_string(), "((//a union //b) union //c)");
        assert!(NodeSetExpr::union_of(Vec::new()).is_none());
        let e = NodeSetExpr::path("//a")
            .unwrap()
            .except(NodeSetExpr::path("//b").unwrap());
        assert_eq!(e.to_string(), "(//a except //b)");
    }

    #[test]
    fn parse_error_propagates() {
        assert!(NodeSetExpr::path("//bad[").is_err());
    }

    #[test]
    fn parses_paper_annotation_expression() {
        let e = NodeSetExpr::parse(
            "(//patient union //patient/name union //regular) \
             except (//patient[treatment] union //patient[.//experimental])",
        )
        .unwrap();
        match &e {
            NodeSetExpr::Except(l, r) => {
                assert!(matches!(**l, NodeSetExpr::Union(..)));
                assert!(matches!(**r, NodeSetExpr::Union(..)));
            }
            other => panic!("expected Except at top, got {other:?}"),
        }
    }

    #[test]
    fn parse_display_round_trip() {
        for src in [
            "//a",
            "(//a union //b)",
            "((//a union //b) except //c)",
            "((//a except //b) except (//c union //d))",
        ] {
            let e = NodeSetExpr::parse(src).unwrap();
            let printed = e.to_string();
            let again = NodeSetExpr::parse(&printed).unwrap();
            assert_eq!(e, again, "{src} -> {printed}");
        }
    }

    #[test]
    fn predicates_shield_operators_and_spaces() {
        let e = NodeSetExpr::parse("//a[b = \"x union y\"] except //c[d and e]").unwrap();
        match e {
            NodeSetExpr::Except(l, _) => {
                assert_eq!(l.to_string(), "//a[b = \"x union y\"]");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn left_associativity() {
        let e = NodeSetExpr::parse("//a union //b except //c").unwrap();
        assert_eq!(e.to_string(), "((//a union //b) except //c)");
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(NodeSetExpr::parse("").is_err());
        assert!(NodeSetExpr::parse("(//a").is_err());
        assert!(NodeSetExpr::parse("//a union").is_err());
        assert!(NodeSetExpr::parse("union //a").is_err());
        assert!(NodeSetExpr::parse("//a //b").is_err());
        assert!(NodeSetExpr::parse("//a[b = \"open]").is_err());
    }

    #[test]
    fn parsed_expression_evaluates() {
        let sdoc = crate::StoredDocument::new(
            xac_xml::Document::parse_str("<r><a><b/></a><a/><c/></r>").unwrap(),
        );
        let e = NodeSetExpr::parse("(//a union //c) except //a[b]").unwrap();
        let nodes = sdoc.eval_expr(&e);
        assert_eq!(nodes.len(), 2, "one a without b, plus c");
    }
}
