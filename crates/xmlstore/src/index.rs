//! Element-name index: element name → node ids, in document order.
//!
//! This is the structural index a native XML database maintains so that
//! `//name` queries need not sweep the whole tree. Deleted nodes are
//! filtered lazily on lookup; [`NameIndex::rebuild`] compacts the buckets
//! after heavy update churn.

use std::collections::HashMap;
use xac_xml::{Document, NodeId};

/// An element-name index over one document.
#[derive(Debug, Clone, Default)]
pub struct NameIndex {
    buckets: HashMap<String, Vec<NodeId>>,
}

impl NameIndex {
    /// Build the index for a document.
    pub fn build(doc: &Document) -> NameIndex {
        let mut buckets: HashMap<String, Vec<NodeId>> = HashMap::new();
        for node in doc.subtree(doc.root()) {
            if let Some(name) = doc.name(node) {
                buckets.entry(name.to_string()).or_default().push(node);
            }
        }
        NameIndex { buckets }
    }

    /// Live nodes named `name`, in document order.
    pub fn lookup<'d>(
        &'d self,
        doc: &'d Document,
        name: &str,
    ) -> impl Iterator<Item = NodeId> + 'd {
        self.buckets
            .get(name)
            .map(Vec::as_slice)
            .unwrap_or(&[])
            .iter()
            .copied()
            .filter(move |&n| doc.is_alive(n))
    }

    /// Register a newly inserted element.
    pub fn insert(&mut self, name: &str, node: NodeId) {
        self.buckets.entry(name.to_string()).or_default().push(node);
    }

    /// Distinct element names indexed.
    pub fn name_count(&self) -> usize {
        self.buckets.len()
    }

    /// Rebuild from scratch (drops stale entries for deleted nodes).
    pub fn rebuild(&mut self, doc: &Document) {
        *self = NameIndex::build(doc);
    }

    /// Total bucket entries, including stale ones (observability hook used
    /// to decide when to rebuild).
    pub fn entry_count(&self) -> usize {
        self.buckets.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xac_xml::Document;

    #[test]
    fn build_and_lookup() {
        let doc = Document::parse_str("<a><b/><c><b>x</b></c></a>").unwrap();
        let idx = NameIndex::build(&doc);
        assert_eq!(idx.lookup(&doc, "b").count(), 2);
        assert_eq!(idx.lookup(&doc, "a").count(), 1);
        assert_eq!(idx.lookup(&doc, "zz").count(), 0);
        assert_eq!(idx.name_count(), 3);
    }

    #[test]
    fn deleted_nodes_filtered() {
        let mut doc = Document::parse_str("<a><b/><c><b/></c></a>").unwrap();
        let idx = NameIndex::build(&doc);
        let c = doc.first_child_named(doc.root(), "c").unwrap();
        doc.remove_subtree(c).unwrap();
        assert_eq!(idx.lookup(&doc, "b").count(), 1, "b under c is gone");
        assert_eq!(idx.entry_count(), 4, "stale entries remain until rebuild");
        let mut idx = idx;
        idx.rebuild(&doc);
        assert_eq!(idx.entry_count(), 2);
    }

    #[test]
    fn insert_tracks_new_nodes() {
        let mut doc = Document::parse_str("<a/>").unwrap();
        let mut idx = NameIndex::build(&doc);
        let b = doc.add_element(doc.root(), "b");
        idx.insert("b", b);
        assert_eq!(idx.lookup(&doc, "b").collect::<Vec<_>>(), vec![b]);
    }

    #[test]
    fn document_order_preserved() {
        let doc = Document::parse_str("<a><b/><b/><b/></a>").unwrap();
        let idx = NameIndex::build(&doc);
        let ids: Vec<NodeId> = idx.lookup(&doc, "b").collect();
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
    }
}
