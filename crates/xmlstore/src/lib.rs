//! # xac-xmlstore
//!
//! The native XML store substrate of the **xmlac** system — the role
//! MonetDB/XQuery plays in the paper. It stores parsed documents by name,
//! keeps an element-name index per document, evaluates the paper's XPath
//! fragment (accelerated through the index), exposes the XQuery-lite
//! node-set algebra the annotation query needs (`union` / `except`), and
//! implements the paper's `xmlac:annotate()` update function: accessibility
//! is materialized as a `sign` attribute on elements, inserted when absent
//! and replaced when present.
//!
//! ```
//! use xac_xmlstore::{XmlStore, NodeSetExpr, SIGN_ATTR};
//!
//! let mut store = XmlStore::new();
//! store.load_xml("demo", "<a><b/><b><c/></b></a>").unwrap();
//! let sdoc = store.get_mut("demo").unwrap();
//! let expr = NodeSetExpr::path("//b[c]").unwrap();
//! let n = sdoc.annotate_expr(&expr, '+');
//! assert_eq!(n, 1);
//! ```

pub mod cam;
pub mod index;
pub mod store;
pub mod xquery;

pub use cam::Cam;
pub use index::NameIndex;
pub use store::{StoredDocument, XmlStore, SIGN_ATTR};
pub use xquery::NodeSetExpr;

/// Errors from the store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Document name already in use or unknown.
    Store(String),
    /// Underlying XML failure.
    Xml(String),
    /// Malformed query expression.
    Query(String),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Store(m) => write!(f, "store error: {m}"),
            Error::Xml(m) => write!(f, "xml error: {m}"),
            Error::Query(m) => write!(f, "query error: {m}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<xac_xml::Error> for Error {
    fn from(e: xac_xml::Error) -> Self {
        Error::Xml(e.to_string())
    }
}

impl From<xac_xpath::Error> for Error {
    fn from(e: xac_xpath::Error) -> Self {
        Error::Query(e.to_string())
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, Error>;
