//! The document store and per-document operations.

use crate::index::NameIndex;
use crate::xquery::NodeSetExpr;
use crate::{Error, Result};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, OnceLock};
use xac_obs::metrics::Counter;
use xac_xml::{Document, NodeId};
use xac_xpath::{Axis, Path};

/// Sign attributes written through `annotate_expr`, process-wide.
fn sign_writes_total() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| xac_obs::counter("xac_xmlstore_sign_writes_total"))
}

/// The attribute carrying accessibility annotations (paper §5.2: "we
/// choose to store accessibility annotations for XML elements in the form
/// of the XML attribute `sign`").
pub const SIGN_ATTR: &str = "sign";

/// A named collection of XML documents.
#[derive(Debug, Default)]
pub struct XmlStore {
    docs: BTreeMap<String, StoredDocument>,
}

impl XmlStore {
    /// Empty store.
    pub fn new() -> XmlStore {
        XmlStore::default()
    }

    /// Parse and load a document under a name.
    pub fn load_xml(&mut self, name: &str, xml: &str) -> Result<()> {
        let doc = Document::parse_str(xml)?;
        self.insert_document(name, doc)
    }

    /// Load an already-parsed document under a name.
    pub fn insert_document(&mut self, name: &str, doc: Document) -> Result<()> {
        if self.docs.contains_key(name) {
            return Err(Error::Store(format!("document `{name}` already loaded")));
        }
        self.docs.insert(name.to_string(), StoredDocument::new(doc));
        Ok(())
    }

    /// Drop a document; true when it existed.
    pub fn remove_document(&mut self, name: &str) -> bool {
        self.docs.remove(name).is_some()
    }

    /// Shared access to a stored document.
    pub fn get(&self, name: &str) -> Option<&StoredDocument> {
        self.docs.get(name)
    }

    /// Mutable access to a stored document.
    pub fn get_mut(&mut self, name: &str) -> Option<&mut StoredDocument> {
        self.docs.get_mut(name)
    }

    /// Loaded document names.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.docs.keys().map(String::as_str)
    }

    /// Number of loaded documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// True when no documents are loaded.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }
}

/// A document plus its structural index.
#[derive(Debug, Clone)]
pub struct StoredDocument {
    doc: Document,
    index: NameIndex,
}

impl StoredDocument {
    /// Wrap a document, building its index.
    pub fn new(doc: Document) -> StoredDocument {
        let index = NameIndex::build(&doc);
        StoredDocument { doc, index }
    }

    /// The underlying document.
    pub fn doc(&self) -> &Document {
        &self.doc
    }

    /// The element-name index.
    pub fn index(&self) -> &NameIndex {
        &self.index
    }

    /// Evaluate an absolute path, using the name index to seed leading
    /// `//name` steps instead of sweeping the tree.
    pub fn eval(&self, path: &Path) -> Vec<NodeId> {
        assert!(path.absolute, "store evaluation takes absolute paths");
        let Some(first) = path.steps.first() else {
            return Vec::new();
        };
        // Index fast path: a leading descendant step with a concrete name.
        if first.axis == Axis::Descendant {
            if let xac_xpath::ast::NodeTest::Name(n) = &first.test {
                let mut current: BTreeSet<NodeId> = self
                    .index
                    .lookup(&self.doc, n)
                    .filter(|&node| {
                        first
                            .predicates
                            .iter()
                            .all(|q| xac_xpath::eval::qualifier_holds(&self.doc, node, q))
                    })
                    .collect();
                for step in &path.steps[1..] {
                    current = apply_step(&self.doc, &current, step);
                    if current.is_empty() {
                        break;
                    }
                }
                return current.into_iter().collect();
            }
        }
        xac_xpath::eval(&self.doc, path)
    }

    /// Evaluate a node-set expression (the XQuery-lite algebra).
    pub fn eval_expr(&self, expr: &NodeSetExpr) -> BTreeSet<NodeId> {
        match expr {
            NodeSetExpr::Path(p) => self.eval(p).into_iter().collect(),
            NodeSetExpr::Union(a, b) => {
                let mut l = self.eval_expr(a);
                l.extend(self.eval_expr(b));
                l
            }
            NodeSetExpr::Except(a, b) => {
                let l = self.eval_expr(a);
                let r = self.eval_expr(b);
                l.difference(&r).copied().collect()
            }
        }
    }

    /// The paper's `xmlac:annotate()` on one node: insert the `sign`
    /// attribute if absent, replace its value otherwise.
    pub fn annotate(&mut self, node: NodeId, sign: char) {
        self.doc.set_attribute(node, SIGN_ATTR, sign.to_string());
    }

    /// Annotate every node selected by an expression; returns how many
    /// nodes were touched.
    pub fn annotate_expr(&mut self, expr: &NodeSetExpr, sign: char) -> usize {
        let _span = xac_obs::span("backend.write_signs");
        let nodes = self.eval_expr(expr);
        for &n in &nodes {
            self.annotate(n, sign);
        }
        sign_writes_total().add(nodes.len() as u64);
        nodes.len()
    }

    /// Fused sign write over a precomputed node set (the VM's element-
    /// arena sink): same span, counter and final store state as
    /// [`Self::annotate_expr`] on an expression selecting these nodes,
    /// without re-evaluating anything.
    pub fn annotate_nodes(&mut self, nodes: &[NodeId], sign: char) -> usize {
        let _span = xac_obs::span("backend.write_signs");
        for &n in nodes {
            self.annotate(n, sign);
        }
        sign_writes_total().add(nodes.len() as u64);
        nodes.len()
    }

    /// The sign of a node, if annotated.
    pub fn sign_of(&self, node: NodeId) -> Option<char> {
        self.doc.attribute(node, SIGN_ATTR).and_then(|s| s.chars().next())
    }

    /// Remove the sign attribute from the given nodes; returns how many
    /// actually carried one.
    pub fn clear_signs<I: IntoIterator<Item = NodeId>>(&mut self, nodes: I) -> usize {
        let mut cleared = 0;
        for n in nodes {
            if self.doc.remove_attribute(n, SIGN_ATTR).is_some() {
                cleared += 1;
            }
        }
        cleared
    }

    /// Remove every sign attribute in the document.
    pub fn clear_all_signs(&mut self) -> usize {
        let nodes: Vec<NodeId> = self.doc.all_elements().collect();
        self.clear_signs(nodes)
    }

    /// Overwrite the sign state wholesale with `signs`, keyed by
    /// `NodeId::index() as i64` (the native `sign_state` encoding used
    /// by the serving durability layer's WAL). Every existing sign is
    /// cleared, then exactly the mapped nodes are re-annotated; nodes
    /// whose index is not in the map end up unannotated (default sign).
    /// Returns the number of sign writes (clears + annotations).
    pub fn apply_sign_map(&mut self, signs: &std::collections::BTreeMap<i64, char>) -> usize {
        let mut writes = self.clear_all_signs();
        let mut plus: Vec<NodeId> = Vec::new();
        let mut minus: Vec<NodeId> = Vec::new();
        let nodes: Vec<NodeId> = self.doc.all_elements().collect();
        for n in nodes {
            match signs.get(&(n.index() as i64)) {
                Some('+') => plus.push(n),
                Some(_) => minus.push(n),
                None => {}
            }
        }
        writes += self.annotate_nodes(&plus, '+');
        writes += self.annotate_nodes(&minus, '-');
        writes
    }

    /// Count of nodes annotated with each sign `(plus, minus)`.
    pub fn sign_counts(&self) -> (usize, usize) {
        let mut plus = 0;
        let mut minus = 0;
        for n in self.doc.all_elements() {
            match self.doc.attribute(n, SIGN_ATTR) {
                Some("+") => plus += 1,
                Some("-") => minus += 1,
                _ => {}
            }
        }
        (plus, minus)
    }

    /// Delete the subtrees of every node matched by `path`; returns the
    /// number of nodes removed (the matched nodes plus their descendants).
    /// The name index keeps stale entries (filtered lazily); call
    /// [`StoredDocument::reindex`] after bulk deletions.
    pub fn delete_matching(&mut self, path: &Path) -> Result<usize> {
        let targets = self.eval(path);
        let mut removed = 0;
        for node in targets {
            // A target inside an already-removed subtree is gone.
            if self.doc.is_alive(node) {
                removed += self.doc.remove_subtree(node)?;
            }
        }
        Ok(removed)
    }

    /// Insert a new element under `parent`, keeping the index current.
    pub fn insert_element(&mut self, parent: NodeId, name: &str) -> NodeId {
        let node = self.doc.add_element(parent, name);
        self.index.insert(name, node);
        node
    }

    /// Insert a text child (no index entry — text nodes are values).
    pub fn insert_text(&mut self, parent: NodeId, value: &str) -> NodeId {
        self.doc.add_text(parent, value)
    }

    /// Rebuild the name index (after bulk structural updates).
    pub fn reindex(&mut self) {
        self.index.rebuild(&self.doc);
    }
}

/// One non-leading location step (shared with the index fast path).
fn apply_step(
    doc: &Document,
    current: &BTreeSet<NodeId>,
    step: &xac_xpath::Step,
) -> BTreeSet<NodeId> {
    let mut out = BTreeSet::new();
    let candidates: Box<dyn Iterator<Item = NodeId>> = match step.axis {
        Axis::Child => Box::new(current.iter().flat_map(|&c| doc.children(c))),
        Axis::Descendant => Box::new(current.iter().flat_map(|&c| doc.descendants(c))),
    };
    for node in candidates {
        let Some(name) = doc.name(node) else { continue };
        if !step.test.matches(name) {
            continue;
        }
        if step
            .predicates
            .iter()
            .all(|q| xac_xpath::eval::qualifier_holds(doc, node, q))
        {
            out.insert(node);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use xac_xpath::parse;

    fn hospital() -> StoredDocument {
        StoredDocument::new(
            Document::parse_str(
                "<hospital><dept><patients>\
                 <patient><psn>033</psn><name>john doe</name>\
                 <treatment><regular><med>enoxaparin</med><bill>700</bill></regular></treatment>\
                 </patient>\
                 <patient><psn>099</psn><name>joy smith</name></patient>\
                 </patients><staffinfo/></dept></hospital>",
            )
            .unwrap(),
        )
    }

    #[test]
    fn indexed_eval_matches_reference() {
        let sdoc = hospital();
        for q in [
            "//patient",
            "//patient[treatment]",
            "//patient/name",
            "//patient[treatment]/name",
            "//regular[bill > 500]",
            "/hospital/dept",
            "//*",
        ] {
            let p = parse(q).unwrap();
            assert_eq!(
                sdoc.eval(&p),
                xac_xpath::eval(sdoc.doc(), &p),
                "indexed evaluation differs for `{q}`"
            );
        }
    }

    #[test]
    fn annotate_expr_and_counts() {
        let mut sdoc = hospital();
        let expr = NodeSetExpr::Except(
            Box::new(NodeSetExpr::path("//patient").unwrap()),
            Box::new(NodeSetExpr::path("//patient[treatment]").unwrap()),
        );
        let n = sdoc.annotate_expr(&expr, '+');
        assert_eq!(n, 1, "only the treatment-less patient");
        assert_eq!(sdoc.sign_counts(), (1, 0));
        // Re-annotating replaces (upsert semantics).
        let n = sdoc.annotate_expr(&expr, '-');
        assert_eq!(n, 1);
        assert_eq!(sdoc.sign_counts(), (0, 1));
    }

    #[test]
    fn clear_signs() {
        let mut sdoc = hospital();
        sdoc.annotate_expr(&NodeSetExpr::path("//patient").unwrap(), '+');
        assert_eq!(sdoc.sign_counts().0, 2);
        let cleared = sdoc.clear_all_signs();
        assert_eq!(cleared, 2);
        assert_eq!(sdoc.sign_counts(), (0, 0));
    }

    #[test]
    fn delete_matching_removes_subtrees() {
        let mut sdoc = hospital();
        let before = sdoc.doc().element_count();
        let removed = sdoc.delete_matching(&parse("//treatment").unwrap()).unwrap();
        assert_eq!(removed, 6, "4 elements (treatment, regular, med, bill) + 2 text values");
        assert_eq!(sdoc.doc().element_count(), before - 4);
        assert!(sdoc.eval(&parse("//regular").unwrap()).is_empty());
        // Patients remain.
        assert_eq!(sdoc.eval(&parse("//patient").unwrap()).len(), 2);
    }

    #[test]
    fn delete_with_nested_matches() {
        let mut sdoc = StoredDocument::new(
            Document::parse_str("<a><b><b/></b></a>").unwrap(),
        );
        // Both b elements match; the outer removal swallows the inner.
        let removed = sdoc.delete_matching(&parse("//b").unwrap()).unwrap();
        assert_eq!(removed, 2);
        assert_eq!(sdoc.doc().element_count(), 1);
    }

    #[test]
    fn store_namespacing() {
        let mut store = XmlStore::new();
        store.load_xml("one", "<a/>").unwrap();
        store.load_xml("two", "<b/>").unwrap();
        assert_eq!(store.len(), 2);
        assert!(store.load_xml("one", "<c/>").is_err(), "duplicate name");
        assert!(store.get("one").is_some());
        assert!(store.remove_document("one"));
        assert!(!store.remove_document("one"));
        assert_eq!(store.names().collect::<Vec<_>>(), vec!["two"]);
    }

    #[test]
    fn insert_element_updates_index() {
        let mut sdoc = StoredDocument::new(Document::parse_str("<a/>").unwrap());
        let root = sdoc.doc().root();
        let b = sdoc.insert_element(root, "b");
        sdoc.insert_text(b, "42");
        assert_eq!(sdoc.eval(&parse("//b").unwrap()), vec![b]);
        assert_eq!(sdoc.eval(&parse("//b[. = 42]").unwrap()), vec![b]);
    }
}
