//! Compressed accessibility maps (CAMs).
//!
//! The paper's related work cites Yu et al.'s *compressed accessibility
//! map* [TODS'04]: instead of one label per node, store only the nodes
//! where accessibility **changes** relative to the parent, and answer
//! lookups by walking to the nearest recorded ancestor. Real policies
//! grant or deny whole regions, so the map is usually far smaller than
//! the annotation set — this module provides the structure both as a
//! related-work artifact and as a compact serialization of an annotated
//! document's accessibility state.
//!
//! ```
//! use xac_xmlstore::Cam;
//! use xac_xml::Document;
//! use std::collections::BTreeSet;
//!
//! let doc = Document::parse_str("<a><b><c/><d/></b><e/></a>").unwrap();
//! // b's whole subtree accessible, everything else denied.
//! let b = doc.first_child_named(doc.root(), "b").unwrap();
//! let acc: BTreeSet<_> = doc.subtree(b).collect();
//! let cam = Cam::build(&doc, &acc, false);
//! assert_eq!(cam.len(), 1, "one boundary entry covers the subtree");
//! assert!(cam.accessible(&doc, b));
//! assert!(!cam.accessible(&doc, doc.root()));
//! ```

use std::collections::{BTreeSet, HashMap};
use xac_xml::{Document, NodeId};

/// A compressed accessibility map over one document.
#[derive(Debug, Clone)]
pub struct Cam {
    /// Nodes whose accessibility differs from their parent's state.
    entries: HashMap<NodeId, bool>,
    /// Accessibility above the root (the policy default).
    default: bool,
}

impl Cam {
    /// Build the map from an explicit accessible-node set. Nodes are
    /// recorded only where their accessibility differs from the state
    /// inherited from the parent, so region-shaped accessibility
    /// compresses to its boundary.
    pub fn build(doc: &Document, accessible: &BTreeSet<NodeId>, default: bool) -> Cam {
        let mut entries = HashMap::new();
        // Pre-order walk carrying the inherited state.
        let mut stack: Vec<(NodeId, bool)> = vec![(doc.root(), default)];
        while let Some((node, inherited)) = stack.pop() {
            let state = if doc.is_element(node) {
                let acc = accessible.contains(&node);
                if acc != inherited {
                    entries.insert(node, acc);
                }
                acc
            } else {
                inherited // text nodes carry no accessibility of their own
            };
            for child in doc.children(node) {
                stack.push((child, state));
            }
        }
        Cam { entries, default }
    }

    /// Accessibility of a node: the nearest recorded ancestor-or-self
    /// entry decides; above the root, the default applies. O(depth).
    pub fn accessible(&self, doc: &Document, node: NodeId) -> bool {
        let mut cur = Some(node);
        while let Some(n) = cur {
            if let Some(&state) = self.entries.get(&n) {
                return state;
            }
            cur = doc.parent(n);
        }
        self.default
    }

    /// Number of boundary entries (the compressed size).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when accessibility is uniform (everything at the default).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The map's default (the policy default semantics).
    pub fn default_state(&self) -> bool {
        self.default
    }

    /// Materialize the full accessible set back out of the map.
    pub fn to_accessible_set(&self, doc: &Document) -> BTreeSet<NodeId> {
        let mut out = BTreeSet::new();
        let mut stack: Vec<(NodeId, bool)> = vec![(doc.root(), self.default)];
        while let Some((node, inherited)) = stack.pop() {
            let state = if doc.is_element(node) {
                let state = self.entries.get(&node).copied().unwrap_or(inherited);
                if state {
                    out.insert(node);
                }
                state
            } else {
                inherited
            };
            for child in doc.children(node) {
                stack.push((child, state));
            }
        }
        out
    }

    /// Compression ratio: boundary entries per explicitly-annotated node
    /// (how much smaller the CAM is than the paper's materialized signs;
    /// lower is better, 1.0 means no savings).
    pub fn compression_vs(&self, annotated_nodes: usize) -> f64 {
        if annotated_nodes == 0 {
            return if self.entries.is_empty() { 1.0 } else { f64::INFINITY };
        }
        self.entries.len() as f64 / annotated_nodes as f64
    }
}

impl crate::StoredDocument {
    /// Build the CAM equivalent of this document's current `sign`
    /// annotations (absent signs fall back to `default`).
    pub fn to_cam(&self, default: bool) -> Cam {
        let accessible: BTreeSet<NodeId> = self
            .doc()
            .all_elements()
            .filter(|&n| match self.sign_of(n) {
                Some('+') => true,
                Some(_) => false,
                None => default,
            })
            .collect();
        Cam::build(self.doc(), &accessible, default)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc() -> Document {
        Document::parse_str(
            "<hospital><dept><patients>\
             <patient><psn>1</psn><name>a</name></patient>\
             <patient><psn>2</psn><name>b</name></patient>\
             </patients><staffinfo/></dept></hospital>",
        )
        .unwrap()
    }

    #[test]
    fn uniform_documents_compress_to_nothing() {
        let d = doc();
        let none = BTreeSet::new();
        let cam = Cam::build(&d, &none, false);
        assert!(cam.is_empty());
        assert!(!cam.accessible(&d, d.root()));

        let all: BTreeSet<NodeId> = d.all_elements().collect();
        let cam = Cam::build(&d, &all, true);
        assert!(cam.is_empty());
        assert!(cam.accessible(&d, d.root()));
        assert_eq!(cam.to_accessible_set(&d), all);
    }

    #[test]
    fn subtree_regions_compress_to_boundaries() {
        let d = doc();
        // Both patient subtrees fully accessible, nothing else.
        let acc: BTreeSet<NodeId> = d
            .all_elements()
            .filter(|&n| d.name(n) == Some("patient"))
            .flat_map(|p| d.subtree(p).filter(|&x| d.is_element(x)).collect::<Vec<_>>())
            .collect();
        let cam = Cam::build(&d, &acc, false);
        assert_eq!(cam.len(), 2, "one entry per patient subtree, not per node");
        assert_eq!(cam.to_accessible_set(&d), acc);
        assert!(cam.compression_vs(acc.len()) < 0.5);
    }

    #[test]
    fn alternating_accessibility_round_trips() {
        let d = doc();
        // A deliberately scattered set (every other element).
        let acc: BTreeSet<NodeId> =
            d.all_elements().enumerate().filter(|(i, _)| i % 2 == 0).map(|(_, n)| n).collect();
        for default in [false, true] {
            let cam = Cam::build(&d, &acc, default);
            assert_eq!(cam.to_accessible_set(&d), acc, "default={default}");
            for n in d.all_elements() {
                assert_eq!(cam.accessible(&d, n), acc.contains(&n));
            }
        }
    }

    #[test]
    fn stored_document_conversion() {
        let mut sdoc = crate::StoredDocument::new(doc());
        let patients = sdoc.eval(&xac_xpath::parse("//patient").unwrap());
        for p in patients {
            sdoc.annotate(p, '+');
        }
        let cam = sdoc.to_cam(false);
        // Node-only (non-inherited) annotations compress poorly: each
        // accessible patient is a boundary, and so is each of its denied
        // children — 2 + 2×2 = 6 entries for 2 annotated nodes. The CAM
        // pays off for *region-shaped* accessibility, not the paper's
        // explicit per-node rules; that asymmetry is the point of
        // measuring both (see the `ablations` harness).
        assert_eq!(cam.len(), 6);
        let d = sdoc.doc();
        let accessible = cam.to_accessible_set(d);
        assert_eq!(accessible.len(), 2);
        assert!(accessible.iter().all(|&n| d.name(n) == Some("patient")));
    }

    #[test]
    fn compression_ratio_edge_cases() {
        let d = doc();
        let cam = Cam::build(&d, &BTreeSet::new(), false);
        assert_eq!(cam.compression_vs(0), 1.0);
        let one: BTreeSet<NodeId> = [d.root()].into_iter().collect();
        let cam = Cam::build(&d, &one, false);
        assert!(cam.compression_vs(0).is_infinite());
    }
}
