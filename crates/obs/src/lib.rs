//! `xac-obs`: the dependency-free observability substrate for the
//! xmlac workspace.
//!
//! Three pieces:
//!
//! - [`trace`] — hierarchical span tracing: a thread-local span stack,
//!   monotonic-clock timings, and a bounded ring-buffer event log.
//!   Off by default; one relaxed atomic load per call site when off.
//! - [`metrics`] — typed instruments (counters, gauges, log₂
//!   histograms) and a name-keyed [`Registry`].
//! - [`export`] — Prometheus text exposition and Chrome trace-event
//!   JSON, written from scratch, plus validators for both formats.
//!
//! Pipeline crates record into the process-wide [`registry`] under
//! `xac_*` names; per-engine state (like `xac-serve`'s `Metrics`)
//! builds on the same primitives but stays engine-local so each
//! engine's accounting identity holds independently.

pub mod export;
pub mod flight;
pub mod metrics;
pub mod trace;

pub use export::{
    chrome_trace, prometheus_render, sample_key, validate_flow_pairing, validate_json,
    validate_prometheus,
};
pub use flight::{flight_recorder, FlightRecord, FlightRecorder, DEFAULT_FLIGHT_CAPACITY};
pub use metrics::{
    bucket_index, Counter, Exemplar, Gauge, Histogram, HistogramSnapshot, Registry, BUCKETS,
};
pub use trace::{
    instant, span, span_stats, take_events, SpanGuard, SpanStat, TraceBuffer, TraceContext,
    TraceEvent, TraceKind,
};

use std::sync::OnceLock;

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-wide metrics registry.
pub fn registry() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

/// Get-or-create a counter in the global [`registry`].
pub fn counter(name: &str) -> std::sync::Arc<Counter> {
    registry().counter(name)
}

/// Get-or-create a gauge in the global [`registry`].
pub fn gauge(name: &str) -> std::sync::Arc<Gauge> {
    registry().gauge(name)
}

/// Get-or-create a histogram in the global [`registry`].
pub fn histogram(name: &str) -> std::sync::Arc<Histogram> {
    registry().histogram(name)
}

/// Render the global registry as Prometheus text, with per-span
/// aggregates appended as `xac_span_total{span="…"}` and
/// `xac_span_seconds_total{span="…"}` so phase timings survive even
/// when the event ring has wrapped.
pub fn prometheus_global() -> String {
    use std::fmt::Write as _;
    let mut out = prometheus_render(registry());
    let stats = trace::span_stats();
    if !stats.is_empty() {
        let _ = writeln!(out, "# TYPE xac_span_total counter");
        for s in &stats {
            let _ = writeln!(out, "{} {}", sample_key("xac_span_total", &[("span", s.name)]), s.count);
        }
        let _ = writeln!(out, "# TYPE xac_span_seconds_total counter");
        for s in &stats {
            let _ = writeln!(
                out,
                "{} {:.9}",
                sample_key("xac_span_seconds_total", &[("span", s.name)]),
                s.total_ns as f64 / 1e9
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_registry_is_shared_and_renders() {
        counter("xac_obs_selftest_total").add(2);
        counter("xac_obs_selftest_total").inc();
        assert_eq!(registry().counter("xac_obs_selftest_total").get(), 3);
        let text = prometheus_global();
        validate_prometheus(&text).expect("global exposition must validate");
        assert!(text.contains("xac_obs_selftest_total 3"));
    }
}
