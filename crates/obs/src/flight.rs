//! Always-on flight recorder: a fixed-size ring of per-request
//! records.
//!
//! Unlike span tracing (off by default, drained by tools), the flight
//! recorder is cheap enough to never disable: one small record per
//! request — trace id, verb, backend, outcome, epoch, and the phase
//! latency breakdown the server measured — pushed into a bounded ring
//! under a short mutex hold. The ring answers two questions a span
//! buffer cannot: *what were the last N requests this server handled*
//! (the `Request::Tail` admin verb) and *what did the request that
//! just failed look like* (records classified as errors, quarantines
//! or slower than the configured threshold are additionally dumped to
//! stderr the moment they are recorded, so the evidence exists even if
//! nobody ever asks for the tail).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

use crate::trace::trace_id_hex;

/// Default ring capacity of the global recorder.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 1024;

/// Default slow-request threshold (microseconds): requests at or above
/// it are dumped on record. 500 ms — generous enough that only genuine
/// outliers trip it on any workload this repo serves.
pub const DEFAULT_SLOW_THRESHOLD_US: u64 = 500_000;

/// One request's flight record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightRecord {
    /// The request's 128-bit trace id (0 when the client sent none).
    pub trace_id: u128,
    /// Request verb (`query`, `delete`, `scrape`, …).
    pub verb: String,
    /// Serving backend name (`native/xml`, `rdb/row`, `rdb/column`).
    pub backend: String,
    /// Outcome classification: `granted`, `denied`, `applied`,
    /// `refused`, `ok`, or `error:<kind>`.
    pub outcome: String,
    /// Engine epoch observed by the request.
    pub epoch: u64,
    /// Time spent decoding the request frame, microseconds.
    pub decode_us: u64,
    /// Queue wait (admission + rate-limit throttling), microseconds.
    pub queue_us: u64,
    /// Engine execution time, microseconds.
    pub execute_us: u64,
    /// End-to-end server-side latency, microseconds.
    pub total_us: u64,
    /// Monotone record number, assigned by the ring.
    pub seq: u64,
}

impl FlightRecord {
    /// Whether the outcome classifies as a failure (dumped on record).
    pub fn is_error(&self) -> bool {
        self.outcome.starts_with("error")
    }

    /// One-line text rendering, shared by the stderr dump and
    /// `xmlac client tail`.
    pub fn render(&self) -> String {
        format!(
            "#{} trace={} verb={} backend={} outcome={} epoch={} \
             decode={}us queue={}us execute={}us total={}us",
            self.seq,
            trace_id_hex(self.trace_id),
            self.verb,
            self.backend,
            self.outcome,
            self.epoch,
            self.decode_us,
            self.queue_us,
            self.execute_us,
            self.total_us,
        )
    }
}

struct RecorderInner {
    ring: VecDeque<FlightRecord>,
    dropped: u64,
    next_seq: u64,
}

/// A bounded ring of [`FlightRecord`]s with oldest-first eviction and
/// automatic dump-on-anomaly. The process-global instance is reached
/// through [`flight_recorder`]; tests build small ones directly.
pub struct FlightRecorder {
    cap: usize,
    slow_threshold_us: AtomicU64,
    dump_to_stderr: AtomicBool,
    inner: Mutex<RecorderInner>,
}

fn unpoison<T>(lock: &Mutex<T>) -> MutexGuard<'_, T> {
    lock.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl FlightRecorder {
    /// A recorder holding at most `cap` records (minimum 1).
    pub fn with_capacity(cap: usize) -> FlightRecorder {
        FlightRecorder {
            cap: cap.max(1),
            slow_threshold_us: AtomicU64::new(DEFAULT_SLOW_THRESHOLD_US),
            dump_to_stderr: AtomicBool::new(true),
            inner: Mutex::new(RecorderInner {
                ring: VecDeque::new(),
                dropped: 0,
                next_seq: 0,
            }),
        }
    }

    /// Record one request, stamping its `seq`. At capacity the oldest
    /// record is evicted first and counted. Records classified as
    /// errors or slower than the threshold are dumped to stderr
    /// (unless dumping is disabled).
    pub fn record(&self, mut record: FlightRecord) {
        let slow = record.total_us >= self.slow_threshold_us.load(Ordering::Relaxed);
        let anomalous = slow || record.is_error();
        {
            let mut inner = unpoison(&self.inner);
            record.seq = inner.next_seq;
            inner.next_seq += 1;
            if inner.ring.len() == self.cap {
                inner.ring.pop_front();
                inner.dropped += 1;
            }
            inner.ring.push_back(record.clone());
        }
        if anomalous && self.dump_to_stderr.load(Ordering::Relaxed) {
            eprintln!(
                "xac-flight[{}]: {}",
                if record.is_error() { "error" } else { "slow" },
                record.render()
            );
        }
    }

    /// The most recent `n` records, oldest first.
    pub fn tail(&self, n: usize) -> Vec<FlightRecord> {
        let inner = unpoison(&self.inner);
        let skip = inner.ring.len().saturating_sub(n);
        inner.ring.iter().skip(skip).cloned().collect()
    }

    /// Records evicted at capacity so far.
    pub fn dropped(&self) -> u64 {
        unpoison(&self.inner).dropped
    }

    /// Buffered record count.
    pub fn len(&self) -> usize {
        unpoison(&self.inner).ring.len()
    }

    /// True when nothing is recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured ring capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Set the slow-request dump threshold, microseconds.
    pub fn set_slow_threshold_us(&self, us: u64) {
        self.slow_threshold_us.store(us, Ordering::Relaxed);
    }

    /// The current slow-request dump threshold, microseconds.
    pub fn slow_threshold_us(&self) -> u64 {
        self.slow_threshold_us.load(Ordering::Relaxed)
    }

    /// Enable or disable the stderr dump (tests that drive error paths
    /// on purpose turn it off to keep their output readable).
    pub fn set_dump_to_stderr(&self, on: bool) {
        self.dump_to_stderr.store(on, Ordering::Relaxed);
    }

    /// Clear records and the drop counter (`seq` keeps counting).
    pub fn reset(&self) {
        let mut inner = unpoison(&self.inner);
        inner.ring.clear();
        inner.dropped = 0;
    }
}

static GLOBAL: OnceLock<FlightRecorder> = OnceLock::new();

/// The process-global flight recorder ([`DEFAULT_FLIGHT_CAPACITY`]
/// records).
pub fn flight_recorder() -> &'static FlightRecorder {
    GLOBAL.get_or_init(|| FlightRecorder::with_capacity(DEFAULT_FLIGHT_CAPACITY))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(n: u64) -> FlightRecord {
        FlightRecord {
            trace_id: n as u128 + 1,
            verb: "query".to_string(),
            backend: "native/xml".to_string(),
            outcome: "granted".to_string(),
            epoch: 1,
            decode_us: 1,
            queue_us: 0,
            execute_us: n,
            total_us: n + 1,
            seq: 0,
        }
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let rec = FlightRecorder::with_capacity(4);
        rec.set_dump_to_stderr(false);
        for n in 0..10 {
            rec.record(record(n));
        }
        assert_eq!(rec.len(), 4);
        assert_eq!(rec.dropped(), 6);
        let tail = rec.tail(16);
        let seqs: Vec<u64> = tail.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, [6, 7, 8, 9], "newest four survive, oldest first");
        assert_eq!(rec.tail(2).len(), 2);
        assert_eq!(rec.tail(2)[1].seq, 9, "tail(n) keeps the most recent n");
    }

    #[test]
    fn reset_clears_but_seq_keeps_counting() {
        let rec = FlightRecorder::with_capacity(2);
        rec.set_dump_to_stderr(false);
        rec.record(record(0));
        rec.record(record(1));
        rec.record(record(2));
        assert_eq!(rec.dropped(), 1);
        rec.reset();
        assert!(rec.is_empty());
        assert_eq!(rec.dropped(), 0);
        rec.record(record(3));
        assert_eq!(rec.tail(1)[0].seq, 3, "seq survives the reset");
    }

    #[test]
    fn error_and_slow_classification() {
        let rec = FlightRecorder::with_capacity(4);
        rec.set_dump_to_stderr(false);
        rec.set_slow_threshold_us(100);
        assert_eq!(rec.slow_threshold_us(), 100);
        let mut bad = record(0);
        bad.outcome = "error:quarantined".to_string();
        assert!(bad.is_error());
        assert!(!record(1).is_error());
        let line = bad.render();
        assert!(line.contains("outcome=error:quarantined"));
        assert!(line.contains("trace=00000000000000000000000000000001"));
    }
}
