//! Hierarchical span tracing: a thread-local span stack, monotonic
//! timings, and a bounded ring-buffer event log.
//!
//! Tracing is **off by default** and gated on one relaxed atomic load:
//! with it off, [`span`] constructs a disarmed guard and the drop does
//! one branch — cheap enough to leave in every hot path (the figures
//! harness asserts the disabled overhead stays under 2% of the
//! annotation microbench). With it on, each span records its start on
//! the process-wide monotonic clock, its thread id (small integers
//! assigned on first use, stable for the thread's lifetime) and its
//! depth on that thread's span stack; the completed span is pushed
//! into the global ring buffer and folded into per-name aggregates.
//!
//! The ring buffer is bounded: at capacity it drops the *oldest* event
//! and counts the drop, never reordering survivors — a long run keeps
//! the most recent window instead of failing or growing without bound.
//!
//! Request-scoped tracing rides on a [`TraceContext`] — a 128-bit
//! trace id plus the minting span's id — stored in a thread-local slot
//! while a request is being handled ([`enter`]). Every span and
//! instant recorded while a context is entered carries its trace id,
//! so one id links the client-side send, the server-side decode and
//! admission, the engine's `serve.*` spans, and the durable
//! `wal.commit` fsync for the same request, across threads (and, via
//! the wire frame, across processes).

use std::cell::Cell;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

/// Capacity of the global event ring buffer.
pub const DEFAULT_EVENT_CAPACITY: usize = 65_536;

static ENABLED: AtomicBool = AtomicBool::new(false);
static EPOCH: OnceLock<Instant> = OnceLock::new();
static NEXT_TID: AtomicU64 = AtomicU64::new(1);
static BUFFER: OnceLock<TraceBuffer> = OnceLock::new();
static STATS: Mutex<BTreeMap<&'static str, (u64, u64)>> = Mutex::new(BTreeMap::new());

thread_local! {
    /// This thread's trace id; 0 until assigned.
    static TID: Cell<u64> = const { Cell::new(0) };
    /// Depth of the live span stack on this thread.
    static DEPTH: Cell<u32> = const { Cell::new(0) };
    /// The request context entered on this thread (0 = none).
    static CONTEXT: Cell<(u128, u64)> = const { Cell::new((0, 0)) };
}

/// One splitmix64 step (Steele, Lea & Flood, OOPSLA 2014) — the same
/// mixer the workload generators use, inlined here so the substrate
/// crate stays dependency-free.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Entropy pool for [`TraceContext::mint`]: seeded once from the wall
/// clock, then advanced by a relaxed fetch-add so concurrent minters
/// draw distinct splitmix streams.
static MINT_STATE: AtomicU64 = AtomicU64::new(0);

/// A request-scoped trace context: a 128-bit trace id shared by every
/// span of one logical request, plus the id of the span that minted it
/// (the parent for any remote continuation).
///
/// Contexts are minted client-side, serialized into the wire frame as
/// three big-endian `u64`s, and re-entered server-side with [`enter`];
/// a zero `trace_id` means "no context" and is never minted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceContext {
    /// 128-bit trace id, nonzero for every minted context.
    pub trace_id: u128,
    /// Id of the span that minted (or last owned) this context.
    pub span_id: u64,
}

impl TraceContext {
    /// Mint a fresh context with a random nonzero trace id.
    pub fn mint() -> TraceContext {
        // First mint folds the wall clock into the pool so separate
        // processes (client vs server binaries) draw distinct streams.
        if MINT_STATE.load(Ordering::Relaxed) == 0 {
            let nanos = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos() as u64)
                .unwrap_or(0x5EED);
            let _ = MINT_STATE.compare_exchange(
                0,
                nanos | 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            );
        }
        let mut s = MINT_STATE.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed);
        loop {
            let hi = splitmix64(&mut s);
            let lo = splitmix64(&mut s);
            let span_id = splitmix64(&mut s);
            let trace_id = ((hi as u128) << 64) | lo as u128;
            if trace_id != 0 {
                return TraceContext { trace_id, span_id };
            }
        }
    }

    /// The trace id as 32 lowercase hex digits — the spelling used by
    /// exemplars, flight records and Chrome-trace flow event ids.
    pub fn trace_id_hex(&self) -> String {
        format!("{:032x}", self.trace_id)
    }
}

/// Render any 128-bit trace id the way [`TraceContext::trace_id_hex`]
/// does.
pub fn trace_id_hex(trace_id: u128) -> String {
    format!("{trace_id:032x}")
}

/// Enter `ctx` on this thread: spans and instants recorded until the
/// returned guard drops carry `ctx.trace_id`. Nests — the guard
/// restores the previously entered context.
pub fn enter(ctx: TraceContext) -> ContextGuard {
    let prev = CONTEXT.with(|c| c.replace((ctx.trace_id, ctx.span_id)));
    ContextGuard { prev }
}

/// The context currently entered on this thread, if any.
pub fn current() -> Option<TraceContext> {
    let (trace_id, span_id) = CONTEXT.with(|c| c.get());
    if trace_id == 0 {
        None
    } else {
        Some(TraceContext { trace_id, span_id })
    }
}

/// RAII guard restoring the previously entered [`TraceContext`].
#[must_use = "dropping the guard immediately exits the context"]
pub struct ContextGuard {
    prev: (u128, u64),
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        CONTEXT.with(|c| c.set(self.prev));
    }
}

fn current_trace_id() -> u128 {
    CONTEXT.with(|c| c.get().0)
}

/// Nanoseconds since the process trace epoch (first trace activity).
fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

fn buffer() -> &'static TraceBuffer {
    BUFFER.get_or_init(|| TraceBuffer::with_capacity(DEFAULT_EVENT_CAPACITY))
}

fn thread_id() -> u64 {
    TID.with(|c| {
        if c.get() == 0 {
            c.set(NEXT_TID.fetch_add(1, Ordering::Relaxed));
        }
        c.get()
    })
}

fn unpoison<T>(lock: &Mutex<T>) -> MutexGuard<'_, T> {
    lock.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Turn tracing on or off process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether tracing is currently on.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// What kind of event a [`TraceEvent`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A completed span (has a duration).
    Span,
    /// A point event (fault firings, ladder rungs).
    Instant,
}

/// One recorded event.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Span or instant name.
    pub name: String,
    /// Span or instant.
    pub kind: TraceKind,
    /// Trace-local thread id (small integers from 1).
    pub tid: u64,
    /// Span-stack depth at the event (0 = top level).
    pub depth: u32,
    /// Start, nanoseconds since the trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds (0 for instants).
    pub dur_ns: u64,
    /// Global push order, assigned by the buffer — survivors of a
    /// capacity drop keep strictly increasing `seq`.
    pub seq: u64,
    /// The [`TraceContext`] trace id entered when the event was
    /// recorded; 0 when no request context was active.
    pub trace_id: u128,
}

/// A bounded MPSC-ish event log: concurrent pushes, oldest-first drops
/// at capacity, drained in push order. The global tracer uses one with
/// [`DEFAULT_EVENT_CAPACITY`]; tests build small ones directly.
pub struct TraceBuffer {
    cap: usize,
    inner: Mutex<BufferInner>,
}

struct BufferInner {
    events: VecDeque<TraceEvent>,
    dropped: u64,
    next_seq: u64,
}

impl TraceBuffer {
    /// A buffer holding at most `cap` events (minimum 1).
    pub fn with_capacity(cap: usize) -> TraceBuffer {
        TraceBuffer {
            cap: cap.max(1),
            inner: Mutex::new(BufferInner {
                events: VecDeque::new(),
                dropped: 0,
                next_seq: 0,
            }),
        }
    }

    /// Append an event, stamping its `seq`; at capacity the oldest
    /// event is dropped first and the drop counted.
    pub fn push(&self, mut event: TraceEvent) {
        let mut inner = unpoison(&self.inner);
        event.seq = inner.next_seq;
        inner.next_seq += 1;
        if inner.events.len() == self.cap {
            inner.events.pop_front();
            inner.dropped += 1;
        }
        inner.events.push_back(event);
    }

    /// Remove and return all buffered events, oldest first.
    pub fn drain(&self) -> Vec<TraceEvent> {
        unpoison(&self.inner).events.drain(..).collect()
    }

    /// Events dropped at capacity so far.
    pub fn dropped(&self) -> u64 {
        unpoison(&self.inner).dropped
    }

    /// Buffered event count.
    pub fn len(&self) -> usize {
        unpoison(&self.inner).events.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Clear events and the drop counter (`seq` keeps counting, so
    /// post-reset events still sort after pre-reset ones).
    pub fn reset(&self) {
        let mut inner = unpoison(&self.inner);
        inner.events.clear();
        inner.dropped = 0;
    }
}

/// RAII guard for one span: created by [`span`], records on drop.
#[must_use = "a span measures the scope that holds its guard"]
pub struct SpanGuard {
    name: &'static str,
    start_ns: u64,
    tid: u64,
    depth: u32,
    armed: bool,
}

/// Open a span named `name`. When tracing is off this is one relaxed
/// atomic load and a disarmed guard; when on, the guard records a
/// [`TraceEvent`] and folds into [`span_stats`] as it drops.
pub fn span(name: &'static str) -> SpanGuard {
    if !ENABLED.load(Ordering::Relaxed) {
        return SpanGuard { name, start_ns: 0, tid: 0, depth: 0, armed: false };
    }
    let tid = thread_id();
    let depth = DEPTH.with(|d| {
        let v = d.get();
        d.set(v + 1);
        v
    });
    SpanGuard { name, start_ns: now_ns(), tid, depth, armed: true }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let dur_ns = now_ns().saturating_sub(self.start_ns);
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        {
            let mut stats = unpoison(&STATS);
            let entry = stats.entry(self.name).or_insert((0, 0));
            entry.0 += 1;
            entry.1 = entry.1.saturating_add(dur_ns);
        }
        buffer().push(TraceEvent {
            name: self.name.to_string(),
            kind: TraceKind::Span,
            tid: self.tid,
            depth: self.depth,
            start_ns: self.start_ns,
            dur_ns,
            seq: 0,
            trace_id: current_trace_id(),
        });
    }
}

/// Record a point event (e.g. a fault firing) at the current thread
/// and depth. No-op while tracing is off.
pub fn instant(name: &str) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    buffer().push(TraceEvent {
        name: name.to_string(),
        kind: TraceKind::Instant,
        tid: thread_id(),
        depth: DEPTH.with(|d| d.get()),
        start_ns: now_ns(),
        dur_ns: 0,
        seq: 0,
        trace_id: current_trace_id(),
    });
}

/// Record an already-measured span that *ends now* and lasted `dur` —
/// for phases whose trace context only becomes known after the work
/// (e.g. the server decoding the very frame that carries the context:
/// decode is timed with a plain clock, the context is entered, then
/// the span is backfilled so it still carries the request's trace id).
/// No-op while tracing is off.
pub fn record_span(name: &'static str, dur: Duration) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    let dur_ns = dur.as_nanos() as u64;
    let end = now_ns();
    {
        let mut stats = unpoison(&STATS);
        let entry = stats.entry(name).or_insert((0, 0));
        entry.0 += 1;
        entry.1 = entry.1.saturating_add(dur_ns);
    }
    buffer().push(TraceEvent {
        name: name.to_string(),
        kind: TraceKind::Span,
        tid: thread_id(),
        depth: DEPTH.with(|d| d.get()),
        start_ns: end.saturating_sub(dur_ns),
        dur_ns,
        seq: 0,
        trace_id: current_trace_id(),
    });
}

/// Drain the global event buffer (push order, oldest first).
pub fn take_events() -> Vec<TraceEvent> {
    buffer().drain()
}

/// Events dropped from the global buffer at capacity so far.
pub fn dropped_events() -> u64 {
    buffer().dropped()
}

/// Aggregate statistics for one span name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanStat {
    /// The span name.
    pub name: &'static str,
    /// Completed spans recorded under the name.
    pub count: u64,
    /// Saturating sum of their durations, nanoseconds.
    pub total_ns: u64,
}

/// Per-name span aggregates accumulated while tracing was on, sorted
/// by name.
pub fn span_stats() -> Vec<SpanStat> {
    unpoison(&STATS)
        .iter()
        .map(|(&name, &(count, total_ns))| SpanStat { name, count, total_ns })
        .collect()
}

/// Clear the event buffer (and its drop counter) and the span
/// aggregates. Registry metrics are monotone and are *not* touched.
pub fn reset() {
    buffer().reset();
    unpoison(&STATS).clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(name: &str) -> TraceEvent {
        TraceEvent {
            name: name.to_string(),
            kind: TraceKind::Span,
            tid: 1,
            depth: 0,
            start_ns: 0,
            dur_ns: 0,
            seq: 0,
            trace_id: 0,
        }
    }

    #[test]
    fn minted_contexts_are_distinct_and_nonzero() {
        let a = TraceContext::mint();
        let b = TraceContext::mint();
        assert_ne!(a.trace_id, 0);
        assert_ne!(b.trace_id, 0);
        assert_ne!(a.trace_id, b.trace_id, "two mints must not collide");
        assert_eq!(a.trace_id_hex().len(), 32);
        assert_eq!(trace_id_hex(a.trace_id), a.trace_id_hex());
    }

    #[test]
    fn enter_nests_and_restores() {
        assert!(current().is_none());
        let a = TraceContext::mint();
        let b = TraceContext::mint();
        {
            let _ga = enter(a);
            assert_eq!(current(), Some(a));
            {
                let _gb = enter(b);
                assert_eq!(current(), Some(b));
            }
            assert_eq!(current(), Some(a), "inner exit restores the outer context");
        }
        assert!(current().is_none());
    }

    #[test]
    fn ring_buffer_drops_oldest_first_without_reordering() {
        let buf = TraceBuffer::with_capacity(8);
        for i in 0..20 {
            buf.push(event(&format!("e{i}")));
        }
        assert_eq!(buf.len(), 8);
        assert_eq!(buf.dropped(), 12);
        let survivors = buf.drain();
        let names: Vec<&str> = survivors.iter().map(|e| e.name.as_str()).collect();
        // The 12 oldest were dropped; the newest 8 survive, in push order.
        assert_eq!(names, ["e12", "e13", "e14", "e15", "e16", "e17", "e18", "e19"]);
        for w in survivors.windows(2) {
            assert_eq!(w[1].seq, w[0].seq + 1, "survivors keep contiguous push order");
        }
        assert!(buf.is_empty());
    }

    #[test]
    fn buffer_reset_clears_events_and_drop_count() {
        let buf = TraceBuffer::with_capacity(2);
        for i in 0..5 {
            buf.push(event(&format!("e{i}")));
        }
        assert_eq!(buf.dropped(), 3);
        buf.reset();
        assert_eq!(buf.dropped(), 0);
        assert!(buf.is_empty());
        buf.push(event("after"));
        assert_eq!(buf.drain().len(), 1);
    }

    #[test]
    fn disabled_span_records_nothing() {
        // Tracing is off by default in a fresh process; these tests never
        // enable it, so the global buffer must stay silent.
        assert!(!enabled());
        {
            let _g = span("quiet");
        }
        instant("quiet too");
        assert!(span_stats().iter().all(|s| s.name != "quiet"));
    }
}
