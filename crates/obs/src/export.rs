//! Exporters written from scratch: Chrome trace-event JSON (loadable
//! in `chrome://tracing` / Perfetto) and Prometheus text exposition,
//! plus validators for both formats so CI can check artifacts without
//! external tooling.

use std::fmt::Write as _;

use crate::metrics::{HistogramSnapshot, Registry};
use crate::trace::{TraceEvent, TraceKind};

/// Escape a string for embedding inside a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render events as Chrome trace-event JSON (the "JSON object format"
/// with a `traceEvents` array). Spans become complete (`"ph":"X"`)
/// events; instants become thread-scoped (`"ph":"i"`) events.
/// Timestamps are microseconds with nanosecond precision kept in the
/// fractional part.
///
/// Spans that carry a nonzero trace id are additionally stitched into
/// **flow events** (`ph:"s"` start → `ph:"t"` steps → `ph:"f"` finish,
/// `bt:"e"` so the finish binds to the enclosing slice) keyed by the
/// hex trace id, which is what makes a client-send span and the
/// server-side spans of the same request draw as one connected arrow
/// chain in Perfetto even across threads and processes. A trace id
/// that appears on a single span emits no flow (nothing to connect).
pub fn chrome_trace(events: &[TraceEvent]) -> String {
    use std::collections::BTreeMap;
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    let mut first = true;
    for e in events {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let ts_us = e.start_ns as f64 / 1_000.0;
        match e.kind {
            TraceKind::Span => {
                let dur_us = e.dur_ns as f64 / 1_000.0;
                let _ = write!(
                    out,
                    "{{\"name\":\"{}\",\"cat\":\"xac\",\"ph\":\"X\",\"ts\":{ts_us:.3},\"dur\":{dur_us:.3},\"pid\":1,\"tid\":{}}}",
                    json_escape(&e.name),
                    e.tid
                );
            }
            TraceKind::Instant => {
                let _ = write!(
                    out,
                    "{{\"name\":\"{}\",\"cat\":\"xac\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts_us:.3},\"pid\":1,\"tid\":{}}}",
                    json_escape(&e.name),
                    e.tid
                );
            }
        }
    }

    // Flow chains: spans grouped per trace id, ordered by start time
    // (seq breaks ties so re-exported buffers stay deterministic).
    let mut by_trace: BTreeMap<u128, Vec<&TraceEvent>> = BTreeMap::new();
    for e in events {
        if e.kind == TraceKind::Span && e.trace_id != 0 {
            by_trace.entry(e.trace_id).or_default().push(e);
        }
    }
    for (trace_id, mut spans) in by_trace {
        if spans.len() < 2 {
            continue;
        }
        spans.sort_by_key(|e| (e.start_ns, e.seq));
        let id = crate::trace::trace_id_hex(trace_id);
        let last = spans.len() - 1;
        for (i, e) in spans.iter().enumerate() {
            let ph = match i {
                0 => "s",
                i if i == last => "f",
                _ => "t",
            };
            let bt = if ph == "f" { ",\"bt\":\"e\"" } else { "" };
            let ts_us = e.start_ns as f64 / 1_000.0;
            let _ = write!(
                out,
                ",\n{{\"name\":\"request\",\"cat\":\"flow\",\"ph\":\"{ph}\"{bt},\"id\":\"{id}\",\"ts\":{ts_us:.3},\"pid\":1,\"tid\":{}}}",
                e.tid
            );
        }
    }
    out.push_str("\n]}\n");
    out
}

/// Escape a Prometheus label value (`\`, `"`, newline).
fn label_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Family name of a registered key: everything before the label body.
fn family_of(key: &str) -> &str {
    match key.find('{') {
        Some(i) => &key[..i],
        None => key,
    }
}

/// Append one counter sample (with `# TYPE`/`# HELP` emitted by the
/// caller once per family).
pub fn write_counter(out: &mut String, key: &str, value: u64) {
    let _ = writeln!(out, "{key} {value}");
}

/// Append one gauge sample.
pub fn write_gauge(out: &mut String, key: &str, value: u64) {
    let _ = writeln!(out, "{key} {value}");
}

/// Merge an extra label (e.g. `le="15"`) into a key that may or may
/// not already carry a label body.
fn key_with_label(key: &str, label: &str) -> String {
    match key.find('{') {
        Some(i) => {
            let (name, rest) = key.split_at(i);
            let body = rest.trim_start_matches('{').trim_end_matches('}');
            if body.is_empty() {
                format!("{name}{{{label}}}")
            } else {
                format!("{name}{{{body},{label}}}")
            }
        }
        None => format!("{key}{{{label}}}"),
    }
}

/// Append one histogram in Prometheus exposition form: cumulative
/// `_bucket{le=...}` samples (upper bounds are the inclusive log2
/// bucket tops, `(1<<i)-1`), then `_sum` and `_count`. Buckets that
/// carry a trace-id exemplar get the OpenMetrics suffix
/// `# {trace_id="<32 hex>"} <observed value>`, linking the bucket to a
/// recent request that landed in it.
pub fn write_histogram(out: &mut String, key: &str, snap: &HistogramSnapshot) {
    let name = family_of(key);
    let labels = &key[name.len()..];
    let mut cumulative: u64 = 0;
    for (i, &n) in snap.buckets.iter().enumerate() {
        cumulative += n;
        let le = if i + 1 == snap.buckets.len() {
            "+Inf".to_string()
        } else {
            HistogramSnapshot::bucket_bound(i).to_string()
        };
        let bucket_key = key_with_label(&format!("{name}_bucket{labels}"), &format!("le=\"{le}\""));
        match snap.exemplars.get(i).copied().flatten() {
            Some(ex) => {
                let _ = writeln!(
                    out,
                    "{bucket_key} {cumulative} # {{trace_id=\"{}\"}} {}",
                    crate::trace::trace_id_hex(ex.trace_id),
                    ex.value
                );
            }
            None => {
                let _ = writeln!(out, "{bucket_key} {cumulative}");
            }
        }
    }
    let _ = writeln!(out, "{name}_sum{labels} {}", snap.total);
    let _ = writeln!(out, "{name}_count{labels} {}", snap.count);
}

/// Render a whole registry in Prometheus text exposition format.
/// Samples sharing a family (same name, different labels) are grouped
/// under a single `# TYPE` line.
pub fn prometheus_render(registry: &Registry) -> String {
    use std::collections::BTreeMap;
    let mut out = String::new();

    let mut families: BTreeMap<String, Vec<(String, u64)>> = BTreeMap::new();
    for (key, v) in registry.counters() {
        families.entry(family_of(&key).to_string()).or_default().push((key, v));
    }
    for (family, samples) in &families {
        let _ = writeln!(out, "# TYPE {family} counter");
        for (key, v) in samples {
            write_counter(&mut out, key, *v);
        }
    }

    let mut families: BTreeMap<String, Vec<(String, u64)>> = BTreeMap::new();
    for (key, v) in registry.gauges() {
        families.entry(family_of(&key).to_string()).or_default().push((key, v));
    }
    for (family, samples) in &families {
        let _ = writeln!(out, "# TYPE {family} gauge");
        for (key, v) in samples {
            write_gauge(&mut out, key, *v);
        }
    }

    let mut families: BTreeMap<String, Vec<(String, HistogramSnapshot)>> = BTreeMap::new();
    for (key, snap) in registry.histograms() {
        families.entry(family_of(&key).to_string()).or_default().push((key, snap));
    }
    for (family, samples) in &families {
        let _ = writeln!(out, "# TYPE {family} histogram");
        for (key, snap) in samples {
            write_histogram(&mut out, key, snap);
        }
    }

    out
}

/// Build a labeled sample key, escaping the label values:
/// `sample_key("xac_serve_reads", &[("backend", "native")])` →
/// `xac_serve_reads{backend="native"}`.
pub fn sample_key(family: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return family.to_string();
    }
    let body: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", label_escape(v)))
        .collect();
    format!("{family}{{{}}}", body.join(","))
}

fn valid_metric_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_body(s: &str) -> bool {
    // s is the text between '{' and '}': k="v",k2="v2" (trailing comma ok).
    let mut rest = s;
    loop {
        rest = rest.trim_start();
        if rest.is_empty() {
            return true;
        }
        let eq = match rest.find('=') {
            Some(i) => i,
            None => return false,
        };
        let name = rest[..eq].trim();
        if !valid_metric_name(name) || name.contains(':') {
            return false;
        }
        rest = &rest[eq + 1..];
        if !rest.starts_with('"') {
            return false;
        }
        // Scan the quoted value honoring backslash escapes.
        let bytes = rest.as_bytes();
        let mut i = 1;
        loop {
            match bytes.get(i) {
                None => return false,
                Some(b'\\') => i += 2,
                Some(b'"') => break,
                Some(_) => i += 1,
            }
        }
        rest = &rest[i + 1..];
        rest = rest.trim_start();
        if let Some(r) = rest.strip_prefix(',') {
            rest = r;
        } else if !rest.is_empty() {
            return false;
        }
    }
}

/// Scan a `{...}` label body starting at `rest` (which must begin with
/// `{`), honoring quoted values; returns the text after the closing
/// brace, or `None` if the body is unterminated or malformed.
fn scan_label_body(rest: &str) -> Option<&str> {
    let bytes = rest.as_bytes();
    let mut i = 1;
    let mut in_quotes = false;
    let close = loop {
        match bytes.get(i) {
            None => return None,
            Some(b'\\') if in_quotes => i += 1,
            Some(b'"') => in_quotes = !in_quotes,
            Some(b'}') if !in_quotes => break i,
            Some(_) => {}
        }
        i += 1;
    };
    if !valid_label_body(&rest[1..close]) {
        return None;
    }
    Some(&rest[close + 1..])
}

fn valid_sample_value(value: &str) -> bool {
    value.parse::<f64>().is_ok() || matches!(value, "+Inf" | "-Inf" | "Inf" | "NaN")
}

fn valid_sample_line(line: &str) -> bool {
    // name[{labels}] value [timestamp] [# {labels} value [timestamp]]
    // — the trailing `# {...}` form is an OpenMetrics exemplar, as
    // emitted by [`write_histogram`] for buckets with a trace id.
    let name_end = line
        .find(|c: char| c == '{' || c.is_whitespace())
        .unwrap_or(line.len());
    if !valid_metric_name(&line[..name_end]) {
        return false;
    }
    let mut rest = &line[name_end..];
    if rest.starts_with('{') {
        // The label body cannot contain an unescaped '}' in a value, but
        // values are quoted — find the closing brace outside quotes.
        rest = match scan_label_body(rest) {
            Some(r) => r,
            None => return false,
        };
    }
    rest = rest.trim_start();
    let value_end = rest.find(char::is_whitespace).unwrap_or(rest.len());
    if !valid_sample_value(&rest[..value_end]) {
        return false;
    }
    rest = rest[value_end..].trim_start();
    // Optional timestamp (milliseconds, may be negative).
    if !rest.is_empty() && !rest.starts_with('#') {
        let ts_end = rest.find(char::is_whitespace).unwrap_or(rest.len());
        if rest[..ts_end].parse::<i64>().is_err() {
            return false;
        }
        rest = rest[ts_end..].trim_start();
    }
    if rest.is_empty() {
        return true;
    }
    // Exemplar: `# {labels} value [timestamp]`.
    let Some(ex) = rest.strip_prefix('#') else { return false };
    let ex = ex.trim_start();
    if !ex.starts_with('{') {
        return false;
    }
    let Some(after) = scan_label_body(ex) else { return false };
    let mut parts = after.split_whitespace();
    match parts.next() {
        Some(v) if valid_sample_value(v) => {}
        _ => return false,
    }
    match parts.next() {
        None => true,
        Some(ts) => ts.parse::<f64>().is_ok() && parts.next().is_none(),
    }
}

/// Validate Prometheus text exposition: every non-empty line must be
/// `# TYPE`/`# HELP` metadata, a comment, or `name[{labels}] value
/// [timestamp]`. Returns the first offending line on failure.
pub fn validate_prometheus(text: &str) -> Result<(), String> {
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.trim().is_empty() {
            continue;
        }
        if let Some(meta) = line.strip_prefix('#') {
            let meta = meta.trim_start();
            if meta.starts_with("TYPE ") || meta.starts_with("HELP ") {
                continue;
            }
            return Err(format!("line {}: comment is not # TYPE / # HELP: {line}", idx + 1));
        }
        if !valid_sample_line(line) {
            return Err(format!("line {}: not `name{{labels}} value`: {line}", idx + 1));
        }
    }
    Ok(())
}

/// A minimal recursive-descent JSON syntax checker (no value
/// materialization). Rejects trailing garbage and nesting deeper than
/// 512 levels.
pub fn validate_json(text: &str) -> Result<(), String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

const MAX_JSON_DEPTH: usize = 512;

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(&b) = bytes.get(*pos) {
        if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<(), String> {
    if depth > MAX_JSON_DEPTH {
        return Err("nesting too deep".to_string());
    }
    match bytes.get(*pos) {
        None => Err(format!("unexpected end of input at byte {pos}", pos = *pos)),
        Some(b'{') => parse_object(bytes, pos, depth),
        Some(b'[') => parse_array(bytes, pos, depth),
        Some(b'"') => parse_string(bytes, pos),
        Some(b't') => parse_literal(bytes, pos, "true"),
        Some(b'f') => parse_literal(bytes, pos, "false"),
        Some(b'n') => parse_literal(bytes, pos, "null"),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    debug_assert_eq!(bytes.get(*pos), Some(&b'"'));
    *pos += 1;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            match bytes.get(*pos) {
                                Some(c) if c.is_ascii_hexdigit() => *pos += 1,
                                _ => {
                                    return Err(format!(
                                        "bad \\u escape at byte {pos}",
                                        pos = *pos
                                    ))
                                }
                            }
                        }
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
            }
            0x00..=0x1f => {
                return Err(format!("raw control char in string at byte {pos}", pos = *pos))
            }
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let int_start = *pos;
    while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
        *pos += 1;
    }
    if *pos == int_start {
        return Err(format!("invalid number at byte {start}"));
    }
    // JSON forbids leading zeros on multi-digit integer parts.
    if bytes[int_start] == b'0' && *pos - int_start > 1 {
        return Err(format!("leading zero in number at byte {start}"));
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        let frac_start = *pos;
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
        if *pos == frac_start {
            return Err(format!("invalid fraction at byte {start}"));
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        let exp_start = *pos;
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
        if *pos == exp_start {
            return Err(format!("invalid exponent at byte {start}"));
        }
    }
    Ok(())
}

fn parse_object(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<(), String> {
    *pos += 1; // consume '{'
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        skip_ws(bytes, pos);
        parse_value(bytes, pos, depth + 1)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<(), String> {
    *pos += 1; // consume '['
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        parse_value(bytes, pos, depth + 1)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

/// Like [`parse_string`] but returns the raw contents (escapes left
/// as-is — flow phases and trace-id strings never contain any).
fn read_string_raw<'a>(bytes: &'a [u8], pos: &mut usize, text: &'a str) -> Result<&'a str, String> {
    let start = *pos + 1;
    parse_string(bytes, pos)?;
    Ok(&text[start..*pos - 1])
}

/// Walk a JSON value collecting `(ph, id)` string pairs from every
/// object that carries both keys at the same level.
fn flow_scan(
    text: &str,
    bytes: &[u8],
    pos: &mut usize,
    depth: usize,
    found: &mut Vec<(String, String)>,
) -> Result<(), String> {
    if depth > MAX_JSON_DEPTH {
        return Err("nesting too deep".to_string());
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1;
            skip_ws(bytes, pos);
            let (mut ph, mut id) = (None, None);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(());
            }
            loop {
                skip_ws(bytes, pos);
                let key = read_string_raw(bytes, pos, text)?.to_string();
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}", pos = *pos));
                }
                *pos += 1;
                skip_ws(bytes, pos);
                if (key == "ph" || key == "id") && bytes.get(*pos) == Some(&b'"') {
                    let value = read_string_raw(bytes, pos, text)?.to_string();
                    if key == "ph" {
                        ph = Some(value);
                    } else {
                        id = Some(value);
                    }
                } else {
                    flow_scan(text, bytes, pos, depth + 1, found)?;
                }
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        break;
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
                }
            }
            if let (Some(ph), Some(id)) = (ph, id) {
                found.push((ph, id));
            }
            Ok(())
        }
        Some(b'[') => {
            *pos += 1;
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(());
            }
            loop {
                flow_scan(text, bytes, pos, depth + 1, found)?;
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(());
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
                }
            }
        }
        _ => parse_value(bytes, pos, depth),
    }
}

/// Validate flow-event pairing in a Chrome trace: the document must be
/// well-formed JSON, and every flow id that appears on any `ph:"s"`,
/// `ph:"t"` or `ph:"f"` event must carry exactly one start (`s`) and
/// exactly one finish (`f`) — a dangling start, a finish without a
/// start, or a step on an unopened chain all fail. Traces with no flow
/// events at all pass (nothing to pair).
pub fn validate_flow_pairing(text: &str) -> Result<(), String> {
    validate_json(text)?;
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let mut found = Vec::new();
    skip_ws(bytes, &mut pos);
    flow_scan(text, bytes, &mut pos, 0, &mut found)?;
    use std::collections::BTreeMap;
    let mut chains: BTreeMap<&str, (u32, u32, u32)> = BTreeMap::new();
    for (ph, id) in &found {
        let slot = chains.entry(id.as_str()).or_default();
        match ph.as_str() {
            "s" => slot.0 += 1,
            "t" => slot.1 += 1,
            "f" => slot.2 += 1,
            _ => {}
        }
    }
    for (id, (starts, steps, finishes)) in chains {
        if starts + steps + finishes == 0 {
            continue; // id on a non-flow event (e.g. an async span)
        }
        if starts != 1 || finishes != 1 {
            return Err(format!(
                "flow id {id}: {starts} start(s), {steps} step(s), {finishes} finish(es) \
                 — expected exactly one start and one finish"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{TraceEvent, TraceKind};

    fn span_event(name: &str, tid: u64, start_ns: u64, dur_ns: u64) -> TraceEvent {
        TraceEvent {
            name: name.to_string(),
            kind: TraceKind::Span,
            tid,
            depth: 0,
            start_ns,
            dur_ns,
            seq: 0,
            trace_id: 0,
        }
    }

    fn traced_span(name: &str, tid: u64, start_ns: u64, trace_id: u128) -> TraceEvent {
        TraceEvent { trace_id, ..span_event(name, tid, start_ns, 10_000) }
    }

    #[test]
    fn chrome_trace_output_is_valid_json() {
        let mut events = vec![
            span_event("annotate.full", 1, 1_000, 2_500_000),
            span_event("reannotate.plan", 2, 5_000, 40_000),
        ];
        events.push(TraceEvent {
            name: "fault:mid_reannotate".to_string(),
            kind: TraceKind::Instant,
            tid: 2,
            depth: 1,
            start_ns: 25_000,
            dur_ns: 0,
            seq: 0,
            trace_id: 0,
        });
        let json = chrome_trace(&events);
        validate_json(&json).expect("chrome trace must be well-formed JSON");
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"name\":\"fault:mid_reannotate\""));
        assert!(!json.contains("\"ph\":\"s\""), "untraced spans emit no flow events");
    }

    #[test]
    fn flow_events_connect_spans_sharing_a_trace_id() {
        let events = vec![
            traced_span("net.client_send", 1, 1_000, 0xAB),
            traced_span("net.server_decode", 2, 2_000, 0xAB),
            traced_span("serve.update", 2, 3_000, 0xAB),
            traced_span("lonely", 3, 4_000, 0xCD), // single span: no flow
            span_event("untraced", 3, 5_000, 10),
        ];
        let json = chrome_trace(&events);
        validate_flow_pairing(&json).expect("emitted flows must pair");
        let id = "000000000000000000000000000000ab";
        assert_eq!(json.matches("\"ph\":\"s\"").count(), 1);
        assert_eq!(json.matches("\"ph\":\"t\"").count(), 1);
        assert_eq!(json.matches("\"ph\":\"f\"").count(), 1);
        assert!(json.contains(&format!("\"id\":\"{id}\"")));
        assert!(json.contains("\"bt\":\"e\""), "finish must bind enclosing");
        assert!(!json.contains("00000000000000000000000000cd"), "singleton id emits nothing");
    }

    #[test]
    fn flow_pairing_validator_rejects_dangling_chains() {
        let ok = r#"{"traceEvents":[
            {"ph":"s","id":"a","ts":1},{"ph":"t","id":"a","ts":2},{"ph":"f","id":"a","ts":3}]}"#;
        validate_flow_pairing(ok).expect("balanced chain");
        let dangling_start = r#"{"traceEvents":[{"ph":"s","id":"a","ts":1}]}"#;
        assert!(validate_flow_pairing(dangling_start).is_err());
        let orphan_finish = r#"{"traceEvents":[{"ph":"f","id":"a","ts":1}]}"#;
        assert!(validate_flow_pairing(orphan_finish).is_err());
        let double_start =
            r#"[{"ph":"s","id":"a"},{"ph":"s","id":"a"},{"ph":"f","id":"a"}]"#;
        assert!(validate_flow_pairing(double_start).is_err());
        let step_only = r#"[{"ph":"t","id":"a"}]"#;
        assert!(validate_flow_pairing(step_only).is_err());
        // Non-flow phases sharing an id don't participate.
        let async_only = r#"[{"ph":"X","id":"a","ts":1,"dur":2}]"#;
        validate_flow_pairing(async_only).expect("no flow events to pair");
        // Still a JSON validator underneath.
        assert!(validate_flow_pairing("[1 2]").is_err());
    }

    #[test]
    fn histogram_exemplars_render_and_validate() {
        let reg = Registry::new();
        let h = reg.histogram(&sample_key("xac_net_request_us", &[("verb", "query")]));
        h.observe_with_exemplar(100, 0xAB);
        h.observe(50_000); // no exemplar on this bucket
        let text = prometheus_render(&reg);
        validate_prometheus(&text).expect("exemplar exposition must validate");
        assert!(
            text.contains("# {trace_id=\"000000000000000000000000000000ab\"} 100"),
            "missing exemplar suffix in:\n{text}"
        );
    }

    #[test]
    fn empty_trace_is_valid_json() {
        validate_json(&chrome_trace(&[])).expect("empty trace must still parse");
    }

    #[test]
    fn prometheus_render_is_valid_exposition() {
        let reg = Registry::new();
        reg.counter("xac_oracle_hits_total").add(10);
        reg.counter("xac_oracle_misses_total").add(3);
        reg.counter(&sample_key("xac_serve_reads_total", &[("backend", "native")]))
            .add(7);
        reg.counter(&sample_key("xac_serve_reads_total", &[("backend", "edge")]))
            .add(2);
        reg.gauge("xac_serve_current_epoch").set(4);
        let h = reg.histogram("xac_read_latency_us");
        for v in [0u64, 1, 7, 100, u64::MAX] {
            h.observe(v);
        }
        let text = prometheus_render(&reg);
        validate_prometheus(&text).expect("rendered exposition must validate");
        // One TYPE line per family even with multiple labeled samples.
        assert_eq!(text.matches("# TYPE xac_serve_reads_total counter").count(), 1);
        assert!(text.contains("xac_oracle_hits_total 10"));
        assert!(text.contains("xac_serve_reads_total{backend=\"native\"} 7"));
        assert!(text.contains("le=\"+Inf\""));
        assert!(text.contains("xac_read_latency_us_count 5"));
    }

    #[test]
    fn prometheus_validator_rejects_malformed_lines() {
        assert!(validate_prometheus("just words here\n").is_err());
        assert!(validate_prometheus("9leading_digit 1\n").is_err());
        assert!(validate_prometheus("name{unclosed=\"v\" 1\n").is_err());
        assert!(validate_prometheus("name 1 2 3\n").is_err());
        assert!(validate_prometheus("# a stray comment\n").is_err());
        assert!(validate_prometheus("name{} not_a_number\n").is_err());
        // Valid shapes pass.
        assert!(validate_prometheus("# TYPE x counter\nx 1\n").is_ok());
        assert!(validate_prometheus("x{a=\"b\",c=\"d\"} 1.5 1700000000\n").is_ok());
        assert!(validate_prometheus("x_bucket{le=\"+Inf\"} 12\n").is_ok());
        // Exemplar suffixes: `# {labels} value [ts]` after the sample.
        assert!(validate_prometheus("x_bucket{le=\"127\"} 3 # {trace_id=\"ab12\"} 100\n").is_ok());
        assert!(validate_prometheus("x 1 1700000000 # {trace_id=\"ab\"} 2 1700.5\n").is_ok());
        assert!(validate_prometheus("x 1 # not_braced 2\n").is_err());
        assert!(validate_prometheus("x 1 # {trace_id=\"ab\"}\n").is_err(), "exemplar needs a value");
        assert!(validate_prometheus("x 1 # {unclosed=\"v\" 2\n").is_err());
    }

    #[test]
    fn json_validator_accepts_and_rejects() {
        assert!(validate_json("{\"a\":[1,2.5,-3e2,true,false,null,\"s\\n\"]}").is_ok());
        assert!(validate_json("  [ ]  ").is_ok());
        assert!(validate_json("{\"a\":1,}").is_err());
        assert!(validate_json("[1 2]").is_err());
        assert!(validate_json("{\"a\"}").is_err());
        assert!(validate_json("01").is_err());
        assert!(validate_json("\"unterminated").is_err());
        assert!(validate_json("{}extra").is_err());
        assert!(validate_json("").is_err());
    }

    #[test]
    fn histogram_exposition_is_cumulative() {
        let reg = Registry::new();
        let h = reg.histogram("lat");
        h.observe(0); // bucket 0
        h.observe(1); // bucket 1
        h.observe(1); // bucket 1
        let text = prometheus_render(&reg);
        assert!(text.contains("lat_bucket{le=\"0\"} 1"));
        assert!(text.contains("lat_bucket{le=\"1\"} 3"));
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("lat_sum 2"));
        assert!(text.contains("lat_count 3"));
    }
}
