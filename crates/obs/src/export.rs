//! Exporters written from scratch: Chrome trace-event JSON (loadable
//! in `chrome://tracing` / Perfetto) and Prometheus text exposition,
//! plus validators for both formats so CI can check artifacts without
//! external tooling.

use std::fmt::Write as _;

use crate::metrics::{HistogramSnapshot, Registry};
use crate::trace::{TraceEvent, TraceKind};

/// Escape a string for embedding inside a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render events as Chrome trace-event JSON (the "JSON object format"
/// with a `traceEvents` array). Spans become complete (`"ph":"X"`)
/// events; instants become thread-scoped (`"ph":"i"`) events.
/// Timestamps are microseconds with nanosecond precision kept in the
/// fractional part.
pub fn chrome_trace(events: &[TraceEvent]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    let mut first = true;
    for e in events {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let ts_us = e.start_ns as f64 / 1_000.0;
        match e.kind {
            TraceKind::Span => {
                let dur_us = e.dur_ns as f64 / 1_000.0;
                let _ = write!(
                    out,
                    "{{\"name\":\"{}\",\"cat\":\"xac\",\"ph\":\"X\",\"ts\":{ts_us:.3},\"dur\":{dur_us:.3},\"pid\":1,\"tid\":{}}}",
                    json_escape(&e.name),
                    e.tid
                );
            }
            TraceKind::Instant => {
                let _ = write!(
                    out,
                    "{{\"name\":\"{}\",\"cat\":\"xac\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts_us:.3},\"pid\":1,\"tid\":{}}}",
                    json_escape(&e.name),
                    e.tid
                );
            }
        }
    }
    out.push_str("\n]}\n");
    out
}

/// Escape a Prometheus label value (`\`, `"`, newline).
fn label_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Family name of a registered key: everything before the label body.
fn family_of(key: &str) -> &str {
    match key.find('{') {
        Some(i) => &key[..i],
        None => key,
    }
}

/// Append one counter sample (with `# TYPE`/`# HELP` emitted by the
/// caller once per family).
pub fn write_counter(out: &mut String, key: &str, value: u64) {
    let _ = writeln!(out, "{key} {value}");
}

/// Append one gauge sample.
pub fn write_gauge(out: &mut String, key: &str, value: u64) {
    let _ = writeln!(out, "{key} {value}");
}

/// Merge an extra label (e.g. `le="15"`) into a key that may or may
/// not already carry a label body.
fn key_with_label(key: &str, label: &str) -> String {
    match key.find('{') {
        Some(i) => {
            let (name, rest) = key.split_at(i);
            let body = rest.trim_start_matches('{').trim_end_matches('}');
            if body.is_empty() {
                format!("{name}{{{label}}}")
            } else {
                format!("{name}{{{body},{label}}}")
            }
        }
        None => format!("{key}{{{label}}}"),
    }
}

/// Append one histogram in Prometheus exposition form: cumulative
/// `_bucket{le=...}` samples (upper bounds are the inclusive log2
/// bucket tops, `(1<<i)-1`), then `_sum` and `_count`.
pub fn write_histogram(out: &mut String, key: &str, snap: &HistogramSnapshot) {
    let name = family_of(key);
    let labels = &key[name.len()..];
    let mut cumulative: u64 = 0;
    for (i, &n) in snap.buckets.iter().enumerate() {
        cumulative += n;
        let le = if i + 1 == snap.buckets.len() {
            "+Inf".to_string()
        } else {
            HistogramSnapshot::bucket_bound(i).to_string()
        };
        let bucket_key = key_with_label(&format!("{name}_bucket{labels}"), &format!("le=\"{le}\""));
        let _ = writeln!(out, "{bucket_key} {cumulative}");
    }
    let _ = writeln!(out, "{name}_sum{labels} {}", snap.total);
    let _ = writeln!(out, "{name}_count{labels} {}", snap.count);
}

/// Render a whole registry in Prometheus text exposition format.
/// Samples sharing a family (same name, different labels) are grouped
/// under a single `# TYPE` line.
pub fn prometheus_render(registry: &Registry) -> String {
    use std::collections::BTreeMap;
    let mut out = String::new();

    let mut families: BTreeMap<String, Vec<(String, u64)>> = BTreeMap::new();
    for (key, v) in registry.counters() {
        families.entry(family_of(&key).to_string()).or_default().push((key, v));
    }
    for (family, samples) in &families {
        let _ = writeln!(out, "# TYPE {family} counter");
        for (key, v) in samples {
            write_counter(&mut out, key, *v);
        }
    }

    let mut families: BTreeMap<String, Vec<(String, u64)>> = BTreeMap::new();
    for (key, v) in registry.gauges() {
        families.entry(family_of(&key).to_string()).or_default().push((key, v));
    }
    for (family, samples) in &families {
        let _ = writeln!(out, "# TYPE {family} gauge");
        for (key, v) in samples {
            write_gauge(&mut out, key, *v);
        }
    }

    let mut families: BTreeMap<String, Vec<(String, HistogramSnapshot)>> = BTreeMap::new();
    for (key, snap) in registry.histograms() {
        families.entry(family_of(&key).to_string()).or_default().push((key, snap));
    }
    for (family, samples) in &families {
        let _ = writeln!(out, "# TYPE {family} histogram");
        for (key, snap) in samples {
            write_histogram(&mut out, key, snap);
        }
    }

    out
}

/// Build a labeled sample key, escaping the label values:
/// `sample_key("xac_serve_reads", &[("backend", "native")])` →
/// `xac_serve_reads{backend="native"}`.
pub fn sample_key(family: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return family.to_string();
    }
    let body: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", label_escape(v)))
        .collect();
    format!("{family}{{{}}}", body.join(","))
}

fn valid_metric_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_body(s: &str) -> bool {
    // s is the text between '{' and '}': k="v",k2="v2" (trailing comma ok).
    let mut rest = s;
    loop {
        rest = rest.trim_start();
        if rest.is_empty() {
            return true;
        }
        let eq = match rest.find('=') {
            Some(i) => i,
            None => return false,
        };
        let name = rest[..eq].trim();
        if !valid_metric_name(name) || name.contains(':') {
            return false;
        }
        rest = &rest[eq + 1..];
        if !rest.starts_with('"') {
            return false;
        }
        // Scan the quoted value honoring backslash escapes.
        let bytes = rest.as_bytes();
        let mut i = 1;
        loop {
            match bytes.get(i) {
                None => return false,
                Some(b'\\') => i += 2,
                Some(b'"') => break,
                Some(_) => i += 1,
            }
        }
        rest = &rest[i + 1..];
        rest = rest.trim_start();
        if let Some(r) = rest.strip_prefix(',') {
            rest = r;
        } else if !rest.is_empty() {
            return false;
        }
    }
}

fn valid_sample_line(line: &str) -> bool {
    // name[{labels}] value [timestamp]
    let name_end = line
        .find(|c: char| c == '{' || c.is_whitespace())
        .unwrap_or(line.len());
    if !valid_metric_name(&line[..name_end]) {
        return false;
    }
    let mut rest = &line[name_end..];
    if rest.starts_with('{') {
        // The label body cannot contain an unescaped '}' in a value, but
        // values are quoted — find the closing brace outside quotes.
        let bytes = rest.as_bytes();
        let mut i = 1;
        let mut in_quotes = false;
        let close = loop {
            match bytes.get(i) {
                None => return false,
                Some(b'\\') if in_quotes => i += 1,
                Some(b'"') => in_quotes = !in_quotes,
                Some(b'}') if !in_quotes => break i,
                Some(_) => {}
            }
            i += 1;
        };
        if !valid_label_body(&rest[1..close]) {
            return false;
        }
        rest = &rest[close + 1..];
    }
    let mut parts = rest.split_whitespace();
    let value = match parts.next() {
        Some(v) => v,
        None => return false,
    };
    let value_ok = value.parse::<f64>().is_ok()
        || matches!(value, "+Inf" | "-Inf" | "Inf" | "NaN");
    if !value_ok {
        return false;
    }
    match parts.next() {
        None => true,
        // Optional timestamp (milliseconds, may be negative).
        Some(ts) => ts.parse::<i64>().is_ok() && parts.next().is_none(),
    }
}

/// Validate Prometheus text exposition: every non-empty line must be
/// `# TYPE`/`# HELP` metadata, a comment, or `name[{labels}] value
/// [timestamp]`. Returns the first offending line on failure.
pub fn validate_prometheus(text: &str) -> Result<(), String> {
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.trim().is_empty() {
            continue;
        }
        if let Some(meta) = line.strip_prefix('#') {
            let meta = meta.trim_start();
            if meta.starts_with("TYPE ") || meta.starts_with("HELP ") {
                continue;
            }
            return Err(format!("line {}: comment is not # TYPE / # HELP: {line}", idx + 1));
        }
        if !valid_sample_line(line) {
            return Err(format!("line {}: not `name{{labels}} value`: {line}", idx + 1));
        }
    }
    Ok(())
}

/// A minimal recursive-descent JSON syntax checker (no value
/// materialization). Rejects trailing garbage and nesting deeper than
/// 512 levels.
pub fn validate_json(text: &str) -> Result<(), String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

const MAX_JSON_DEPTH: usize = 512;

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(&b) = bytes.get(*pos) {
        if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<(), String> {
    if depth > MAX_JSON_DEPTH {
        return Err("nesting too deep".to_string());
    }
    match bytes.get(*pos) {
        None => Err(format!("unexpected end of input at byte {pos}", pos = *pos)),
        Some(b'{') => parse_object(bytes, pos, depth),
        Some(b'[') => parse_array(bytes, pos, depth),
        Some(b'"') => parse_string(bytes, pos),
        Some(b't') => parse_literal(bytes, pos, "true"),
        Some(b'f') => parse_literal(bytes, pos, "false"),
        Some(b'n') => parse_literal(bytes, pos, "null"),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    debug_assert_eq!(bytes.get(*pos), Some(&b'"'));
    *pos += 1;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            match bytes.get(*pos) {
                                Some(c) if c.is_ascii_hexdigit() => *pos += 1,
                                _ => {
                                    return Err(format!(
                                        "bad \\u escape at byte {pos}",
                                        pos = *pos
                                    ))
                                }
                            }
                        }
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
            }
            0x00..=0x1f => {
                return Err(format!("raw control char in string at byte {pos}", pos = *pos))
            }
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let int_start = *pos;
    while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
        *pos += 1;
    }
    if *pos == int_start {
        return Err(format!("invalid number at byte {start}"));
    }
    // JSON forbids leading zeros on multi-digit integer parts.
    if bytes[int_start] == b'0' && *pos - int_start > 1 {
        return Err(format!("leading zero in number at byte {start}"));
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        let frac_start = *pos;
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
        if *pos == frac_start {
            return Err(format!("invalid fraction at byte {start}"));
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        let exp_start = *pos;
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
        if *pos == exp_start {
            return Err(format!("invalid exponent at byte {start}"));
        }
    }
    Ok(())
}

fn parse_object(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<(), String> {
    *pos += 1; // consume '{'
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        skip_ws(bytes, pos);
        parse_value(bytes, pos, depth + 1)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<(), String> {
    *pos += 1; // consume '['
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        parse_value(bytes, pos, depth + 1)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{TraceEvent, TraceKind};

    fn span_event(name: &str, tid: u64, start_ns: u64, dur_ns: u64) -> TraceEvent {
        TraceEvent {
            name: name.to_string(),
            kind: TraceKind::Span,
            tid,
            depth: 0,
            start_ns,
            dur_ns,
            seq: 0,
        }
    }

    #[test]
    fn chrome_trace_output_is_valid_json() {
        let mut events = vec![
            span_event("annotate.full", 1, 1_000, 2_500_000),
            span_event("reannotate.plan", 2, 5_000, 40_000),
        ];
        events.push(TraceEvent {
            name: "fault:mid_reannotate".to_string(),
            kind: TraceKind::Instant,
            tid: 2,
            depth: 1,
            start_ns: 25_000,
            dur_ns: 0,
            seq: 0,
        });
        let json = chrome_trace(&events);
        validate_json(&json).expect("chrome trace must be well-formed JSON");
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"name\":\"fault:mid_reannotate\""));
    }

    #[test]
    fn empty_trace_is_valid_json() {
        validate_json(&chrome_trace(&[])).expect("empty trace must still parse");
    }

    #[test]
    fn prometheus_render_is_valid_exposition() {
        let reg = Registry::new();
        reg.counter("xac_oracle_hits_total").add(10);
        reg.counter("xac_oracle_misses_total").add(3);
        reg.counter(&sample_key("xac_serve_reads_total", &[("backend", "native")]))
            .add(7);
        reg.counter(&sample_key("xac_serve_reads_total", &[("backend", "edge")]))
            .add(2);
        reg.gauge("xac_serve_current_epoch").set(4);
        let h = reg.histogram("xac_read_latency_us");
        for v in [0u64, 1, 7, 100, u64::MAX] {
            h.observe(v);
        }
        let text = prometheus_render(&reg);
        validate_prometheus(&text).expect("rendered exposition must validate");
        // One TYPE line per family even with multiple labeled samples.
        assert_eq!(text.matches("# TYPE xac_serve_reads_total counter").count(), 1);
        assert!(text.contains("xac_oracle_hits_total 10"));
        assert!(text.contains("xac_serve_reads_total{backend=\"native\"} 7"));
        assert!(text.contains("le=\"+Inf\""));
        assert!(text.contains("xac_read_latency_us_count 5"));
    }

    #[test]
    fn prometheus_validator_rejects_malformed_lines() {
        assert!(validate_prometheus("just words here\n").is_err());
        assert!(validate_prometheus("9leading_digit 1\n").is_err());
        assert!(validate_prometheus("name{unclosed=\"v\" 1\n").is_err());
        assert!(validate_prometheus("name 1 2 3\n").is_err());
        assert!(validate_prometheus("# a stray comment\n").is_err());
        assert!(validate_prometheus("name{} not_a_number\n").is_err());
        // Valid shapes pass.
        assert!(validate_prometheus("# TYPE x counter\nx 1\n").is_ok());
        assert!(validate_prometheus("x{a=\"b\",c=\"d\"} 1.5 1700000000\n").is_ok());
        assert!(validate_prometheus("x_bucket{le=\"+Inf\"} 12\n").is_ok());
    }

    #[test]
    fn json_validator_accepts_and_rejects() {
        assert!(validate_json("{\"a\":[1,2.5,-3e2,true,false,null,\"s\\n\"]}").is_ok());
        assert!(validate_json("  [ ]  ").is_ok());
        assert!(validate_json("{\"a\":1,}").is_err());
        assert!(validate_json("[1 2]").is_err());
        assert!(validate_json("{\"a\"}").is_err());
        assert!(validate_json("01").is_err());
        assert!(validate_json("\"unterminated").is_err());
        assert!(validate_json("{}extra").is_err());
        assert!(validate_json("").is_err());
    }

    #[test]
    fn histogram_exposition_is_cumulative() {
        let reg = Registry::new();
        let h = reg.histogram("lat");
        h.observe(0); // bucket 0
        h.observe(1); // bucket 1
        h.observe(1); // bucket 1
        let text = prometheus_render(&reg);
        assert!(text.contains("lat_bucket{le=\"0\"} 1"));
        assert!(text.contains("lat_bucket{le=\"1\"} 3"));
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("lat_sum 2"));
        assert!(text.contains("lat_count 3"));
    }
}
