//! Typed metrics: counters, gauges, log₂ histograms, and a name-keyed
//! registry.
//!
//! Every primitive is lock-free on the hot path (relaxed atomics); the
//! registry takes a mutex only on first lookup of a name, after which
//! callers hold an `Arc` to the instrument and never touch the map
//! again. Relaxed ordering is sufficient throughout: each instrument is
//! independent, and a snapshot is a statistically consistent view, not
//! a transactional one.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Number of log₂ histogram buckets. Bucket 0 holds the value `0`,
/// bucket `i` (for `1 <= i < 63`) holds values in `[2^(i-1), 2^i)`, and
/// bucket 63 holds everything from `2^62` up to and including
/// `u64::MAX` — every `u64` lands in exactly one bucket, no value
/// panics or is silently dropped.
pub const BUCKETS: usize = 64;

/// The bucket a value lands in. Total over all of `u64`:
/// `bucket_index(0) == 0`, `bucket_index(u64::MAX) == BUCKETS - 1`.
pub fn bucket_index(v: u64) -> usize {
    // leading_zeros(0) == 64, so 0 maps to bucket 0 without a branch;
    // the min() clamp folds the open-ended top range into bucket 63.
    (64 - v.leading_zeros() as usize).min(BUCKETS - 1)
}

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter.
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Add 1; returns the previous value.
    pub fn inc(&self) -> u64 {
        self.add(1)
    }

    /// Add `n` (relaxed); returns the previous value.
    pub fn add(&self, n: u64) -> u64 {
        self.0.fetch_add(n, Ordering::Relaxed)
    }

    /// Add `n` with an explicit ordering; returns the previous value.
    /// Mirrors `AtomicU64::fetch_add` so counters drop in where a raw
    /// atomic used to live.
    pub fn fetch_add(&self, n: u64, order: Ordering) -> u64 {
        self.0.fetch_add(n, order)
    }

    /// Current value (relaxed).
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Current value with an explicit ordering.
    pub fn load(&self, order: Ordering) -> u64 {
        self.0.load(order)
    }
}

/// A gauge: a value that can move in either direction.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A zeroed gauge.
    pub const fn new() -> Gauge {
        Gauge(AtomicU64::new(0))
    }

    /// Set the value (relaxed).
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed)
    }

    /// Set the value with an explicit ordering. Mirrors
    /// `AtomicU64::store`.
    pub fn store(&self, v: u64, order: Ordering) {
        self.0.store(v, order)
    }

    /// Current value (relaxed).
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Current value with an explicit ordering.
    pub fn load(&self, order: Ordering) -> u64 {
        self.0.load(order)
    }
}

/// A trace-id exemplar pinned to a histogram bucket: the most recent
/// traced observation that landed there, so a p99 outlier bucket links
/// straight to the flight record / trace of a request that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exemplar {
    /// The observing request's 128-bit trace id (never 0 — untraced
    /// observations record no exemplar).
    pub trace_id: u128,
    /// The observed value.
    pub value: u64,
}

/// A fixed-bucket log₂ histogram over unit-agnostic `u64` observations
/// (callers pick nanoseconds, microseconds, bytes, …).
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    total: AtomicU64,
    count: AtomicU64,
    /// Last-write-wins per-bucket exemplars. A mutex, not atomics: only
    /// [`Histogram::observe_with_exemplar`] (one lock per served wire
    /// request) touches it — plain [`Histogram::observe`] stays
    /// lock-free.
    exemplars: Mutex<Vec<Option<Exemplar>>>,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            total: AtomicU64::new(0),
            count: AtomicU64::new(0),
            exemplars: Mutex::new(vec![None; BUCKETS]),
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one observation. Total for the whole `u64` domain: `0`
    /// lands in the first bucket, `u64::MAX` in the last, and the
    /// running sum saturates instead of wrapping.
    pub fn observe(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        // Saturating accumulate: a wrapped sum would silently corrupt
        // every mean derived from it, and `u64::MAX` observations are a
        // supported input.
        let mut cur = self.total.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_add(v);
            match self
                .total
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one observation and pin it as its bucket's exemplar when
    /// `trace_id` is nonzero. Last write wins — the exemplar always
    /// names a *recent* request that landed in the bucket.
    pub fn observe_with_exemplar(&self, v: u64, trace_id: u128) {
        self.observe(v);
        if trace_id != 0 {
            unpoison(&self.exemplars)[bucket_index(v)] = Some(Exemplar { trace_id, value: v });
        }
    }

    /// A point-in-time copy.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            total: self.total.load(Ordering::Relaxed),
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            exemplars: unpoison(&self.exemplars).clone(),
        }
    }
}

/// Frozen histogram state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Saturating sum of all observations.
    pub total: u64,
    /// Per-bucket counts, [`BUCKETS`] long.
    pub buckets: Vec<u64>,
    /// Per-bucket trace-id exemplars (empty or [`BUCKETS`] long).
    pub exemplars: Vec<Option<Exemplar>>,
}

impl HistogramSnapshot {
    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total as f64 / self.count as f64
        }
    }

    /// Inclusive upper bound of bucket `i` (`u64::MAX` for the last).
    pub fn bucket_bound(i: usize) -> u64 {
        if i >= BUCKETS - 1 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Upper bound of the bucket containing the q-quantile
    /// (`0.0 ..= 1.0`), or 0 when empty — an upper estimate within a
    /// factor of two, like any log₂ sketch.
    pub fn quantile_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64) * q.clamp(0.0, 1.0)).ceil() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank.max(1) {
                return Self::bucket_bound(i);
            }
        }
        u64::MAX
    }

    /// Inclusive lower bound of bucket `i` (`0` for the first).
    pub fn bucket_floor(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            1u64 << (i - 1)
        }
    }

    /// The q-quantile (`0.0 ..= 1.0`) with **sub-bucket linear
    /// interpolation**, or 0.0 when empty.
    ///
    /// The target rank is `q · count` (a fractional sample count); the
    /// walk finds the bucket where the cumulative count crosses it and
    /// interpolates linearly between the bucket's inclusive bounds
    /// `[lo, hi]` by the fraction of the bucket's samples below the
    /// rank: `lo + (rank − cum_below) / bucket_count · (hi − lo)`.
    /// This assumes samples are uniform *within* a bucket, so the
    /// estimate is exact at bucket edges and off by at most one bucket
    /// width (a factor of two in value) in the worst case — much
    /// tighter than [`HistogramSnapshot::quantile_bound`]'s hard upper
    /// bound whenever the data half-fills its top buckets. Bucket 0
    /// holds only the value 0, so it never interpolates.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (self.count as f64) * q.clamp(0.0, 1.0);
        let mut below = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let cum = below + c;
            if (cum as f64) >= rank {
                let lo = Self::bucket_floor(i) as f64;
                let hi = Self::bucket_bound(i) as f64;
                let frac = ((rank - below as f64) / c as f64).clamp(0.0, 1.0);
                return lo + frac * (hi - lo);
            }
            below = cum;
        }
        Self::bucket_bound(BUCKETS - 1) as f64
    }
}

/// Recover a possibly-poisoned mutex: everything guarded here is a
/// plain map or counter whose invariants survive any panic.
fn unpoison<T>(lock: &Mutex<T>) -> MutexGuard<'_, T> {
    lock.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A name-keyed registry of instruments. Keys are full Prometheus
/// sample names, labels included (e.g. `xac_oracle_hits_total` or
/// `xac_serve_reads{backend="native/xml"}`); the exporter splits the
/// family name back out at render time.
#[derive(Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The counter registered under `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = unpoison(&self.counters);
        map.entry(name.to_string()).or_default().clone()
    }

    /// The gauge registered under `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = unpoison(&self.gauges);
        map.entry(name.to_string()).or_default().clone()
    }

    /// The histogram registered under `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = unpoison(&self.histograms);
        map.entry(name.to_string()).or_insert_with(|| Arc::new(Histogram::new())).clone()
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> Vec<(String, u64)> {
        unpoison(&self.counters).iter().map(|(k, v)| (k.clone(), v.get())).collect()
    }

    /// All gauges, sorted by name.
    pub fn gauges(&self) -> Vec<(String, u64)> {
        unpoison(&self.gauges).iter().map(|(k, v)| (k.clone(), v.get())).collect()
    }

    /// All histograms, sorted by name.
    pub fn histograms(&self) -> Vec<(String, HistogramSnapshot)> {
        unpoison(&self.histograms).iter().map(|(k, v)| (k.clone(), v.snapshot())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Sweep every bucket boundary: `2^i - 1`, `2^i` and `2^i + 1` for
    /// each `i`, plus the two extremes the issue calls out — `0` must
    /// land in the first bucket and `u64::MAX` in the last, without a
    /// panic or a dropped sample.
    #[test]
    fn bucket_boundary_sweep() {
        assert_eq!(bucket_index(0), 0, "zero lands in the first bucket");
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1, "u64::MAX lands in the last bucket");
        assert_eq!(bucket_index(1), 1);
        for i in 1..64u32 {
            let v = 1u64 << i;
            // 2^i opens bucket i+1 (clamped to the last bucket).
            assert_eq!(bucket_index(v), ((i + 1) as usize).min(BUCKETS - 1), "at 2^{i}");
            assert_eq!(bucket_index(v - 1), (i as usize).min(BUCKETS - 1), "at 2^{i}-1");
            if v < u64::MAX {
                assert_eq!(
                    bucket_index(v + 1),
                    ((i + 1) as usize).min(BUCKETS - 1),
                    "at 2^{i}+1"
                );
            }
        }
        // Buckets are monotone in the value: no value can sort below a
        // smaller value's bucket.
        let probes = [0u64, 1, 2, 3, 4, 1023, 1024, 1025, u64::MAX / 2, u64::MAX - 1, u64::MAX];
        for w in probes.windows(2) {
            assert!(bucket_index(w[0]) <= bucket_index(w[1]), "{} vs {}", w[0], w[1]);
        }
    }

    #[test]
    fn histogram_extremes_never_drop_or_wrap() {
        let h = Histogram::new();
        h.observe(0);
        h.observe(u64::MAX);
        h.observe(u64::MAX); // would wrap a plain sum
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.buckets.iter().sum::<u64>(), 3, "no sample dropped");
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[BUCKETS - 1], 2);
        assert_eq!(s.total, u64::MAX, "sum saturates instead of wrapping");
        assert_eq!(s.quantile_bound(1.0), u64::MAX);
    }

    #[test]
    fn histogram_quantiles_and_mean() {
        let h = Histogram::new();
        for v in [0u64, 1, 3, 8, 100, 1000] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.total, 1112);
        assert!(s.mean() > 100.0);
        assert!(s.quantile_bound(1.0) >= 1000);
        let empty = HistogramSnapshot { count: 0, total: 0, buckets: vec![], exemplars: vec![] };
        assert_eq!(empty.quantile_bound(0.5), 0);
        assert_eq!(empty.quantile(0.5), 0.0);
    }

    #[test]
    fn exemplars_pin_the_last_traced_observation_per_bucket() {
        let h = Histogram::new();
        h.observe(100); // untraced: no exemplar
        h.observe_with_exemplar(100, 0xAB); // bucket 7
        h.observe_with_exemplar(70, 0xCD); // same bucket: last write wins
        h.observe_with_exemplar(5000, 0xEF); // bucket 13
        h.observe_with_exemplar(3, 0); // zero trace id: untraced
        let s = h.snapshot();
        assert_eq!(s.exemplars[bucket_index(100)], Some(Exemplar { trace_id: 0xCD, value: 70 }));
        assert_eq!(s.exemplars[bucket_index(5000)], Some(Exemplar { trace_id: 0xEF, value: 5000 }));
        assert_eq!(s.exemplars[bucket_index(3)], None);
        assert_eq!(s.count, 5, "exemplar observations still count");
    }

    /// The interpolated quantile against *exact* order statistics of a
    /// SplitMix64 sample stream: every estimate must land inside the
    /// bucket that contains the exact quantile (the documented error
    /// bound), be monotone in q, and — for a stream uniform over
    /// `[0, 2^20)`, where the within-bucket uniformity assumption holds
    /// exactly in the limit — track the exact value within 5%.
    #[test]
    fn quantile_interpolation_tracks_a_splitmix_stream() {
        let mut state = 42u64;
        let h = Histogram::new();
        let mut samples: Vec<u64> = Vec::new();
        for _ in 0..10_000 {
            let v = crate::trace::splitmix64(&mut state) % (1 << 20);
            h.observe(v);
            samples.push(v);
        }
        samples.sort_unstable();
        let s = h.snapshot();
        let mut prev = -1.0f64;
        for &q in &[0.01, 0.1, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let est = s.quantile(q);
            // Exact q-quantile at the same rank convention (count * q,
            // ceil to a 1-based rank).
            let rank = ((samples.len() as f64 * q).ceil() as usize).clamp(1, samples.len());
            let exact = samples[rank - 1];
            let b = bucket_index(exact);
            let (lo, hi) =
                (HistogramSnapshot::bucket_floor(b), HistogramSnapshot::bucket_bound(b));
            assert!(
                est >= lo as f64 && est <= hi as f64,
                "q={q}: estimate {est} outside exact bucket [{lo}, {hi}] (exact {exact})"
            );
            assert!(
                (est - exact as f64).abs() / (exact as f64).max(1.0) < 0.05,
                "q={q}: estimate {est} vs exact {exact} off by > 5%"
            );
            assert!(est >= prev, "quantiles must be monotone in q");
            prev = est;
        }
        // The uniform stream's median is ~2^19: a direct sanity anchor
        // on the interpolation arithmetic, not just its error bound.
        let p50 = s.quantile(0.5);
        assert!((p50 - (1 << 19) as f64).abs() < 0.05 * (1 << 19) as f64, "median {p50}");
    }

    #[test]
    fn quantile_degenerate_shapes() {
        // All-zero stream: bucket 0 never interpolates.
        let h = Histogram::new();
        for _ in 0..5 {
            h.observe(0);
        }
        assert_eq!(h.snapshot().quantile(0.99), 0.0);
        // Single value: every quantile lands in its bucket.
        let h = Histogram::new();
        h.observe(700);
        let est = h.snapshot().quantile(0.5);
        let b = bucket_index(700);
        assert!(est >= HistogramSnapshot::bucket_floor(b) as f64);
        assert!(est <= HistogramSnapshot::bucket_bound(b) as f64);
    }

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        assert_eq!(c.inc(), 0);
        assert_eq!(c.add(4), 1);
        assert_eq!(c.fetch_add(5, Ordering::Relaxed), 5);
        assert_eq!(c.get(), 10);
        assert_eq!(c.load(Ordering::Relaxed), 10);
        let g = Gauge::new();
        g.set(7);
        assert_eq!(g.get(), 7);
        g.store(3, Ordering::Relaxed);
        assert_eq!(g.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn registry_returns_the_same_instrument_per_name() {
        let r = Registry::new();
        let a = r.counter("x_total");
        let b = r.counter("x_total");
        a.add(2);
        b.add(3);
        assert_eq!(r.counter("x_total").get(), 5);
        assert_eq!(r.counters(), vec![("x_total".to_string(), 5)]);
        r.gauge("g").set(9);
        assert_eq!(r.gauges(), vec![("g".to_string(), 9)]);
        r.histogram("h").observe(1);
        assert_eq!(r.histograms().len(), 1);
        assert_eq!(r.histograms()[0].1.count, 1);
    }
}
