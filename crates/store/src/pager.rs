//! The file-backed pager: a buffer pool of [`Page`] frames over one
//! page file, with LRU eviction, pin counts, dirty tracking, and
//! checksum verification on every load. Flushing is O(dirty pages) —
//! the property the durable checkpoint above inherits.

use crate::error::{Result, StoreError, StoreErrorKind};
use crate::page::{Page, PAGE_SIZE};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};

fn pager_hits() -> &'static Arc<xac_obs::Counter> {
    static C: OnceLock<Arc<xac_obs::Counter>> = OnceLock::new();
    C.get_or_init(|| xac_obs::counter("xac_pager_hits_total"))
}

fn pager_misses() -> &'static Arc<xac_obs::Counter> {
    static C: OnceLock<Arc<xac_obs::Counter>> = OnceLock::new();
    C.get_or_init(|| xac_obs::counter("xac_pager_misses_total"))
}

fn pager_evictions() -> &'static Arc<xac_obs::Counter> {
    static C: OnceLock<Arc<xac_obs::Counter>> = OnceLock::new();
    C.get_or_init(|| xac_obs::counter("xac_pager_evictions_total"))
}

fn pager_flushed() -> &'static Arc<xac_obs::Counter> {
    static C: OnceLock<Arc<xac_obs::Counter>> = OnceLock::new();
    C.get_or_init(|| xac_obs::counter("xac_pager_flushed_pages_total"))
}

fn pager_fsyncs() -> &'static Arc<xac_obs::Counter> {
    static C: OnceLock<Arc<xac_obs::Counter>> = OnceLock::new();
    C.get_or_init(|| xac_obs::counter("xac_pager_fsyncs_total"))
}

/// Running counters for one pager instance (process-global equivalents
/// are published as `xac_pager_*` obs metrics).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PagerStats {
    /// Frame lookups answered from the buffer pool.
    pub hits: u64,
    /// Frame lookups that had to read the file.
    pub misses: u64,
    /// Frames evicted to make room.
    pub evictions: u64,
    /// Pages written back to the file.
    pub pages_flushed: u64,
    /// `fsync` calls on the page file.
    pub fsyncs: u64,
}

impl PagerStats {
    /// Buffer-pool hit rate in [0, 1]; 1.0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Frame {
    page: Page,
    dirty: bool,
    pins: u32,
    last_used: u64,
}

/// The buffer-pooled pager. Single-writer by construction (the serve
/// engine's writer mutex is the concurrency story above it).
pub struct Pager {
    file: File,
    path: PathBuf,
    frames: HashMap<u32, Frame>,
    capacity: usize,
    tick: u64,
    npages: u32,
    stats: PagerStats,
}

impl Pager {
    /// Open (creating if absent) the page file at `path` with a buffer
    /// pool of `capacity` frames. A trailing partial page — the residue
    /// of a crash mid-extension — is truncated away; page *content*
    /// corruption is surfaced lazily, per page, on first load.
    pub fn open(path: &Path, capacity: usize) -> Result<Pager> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(|e| StoreError::io(format!("open page file {}", path.display()), e))?;
        let len = file
            .metadata()
            .map_err(|e| StoreError::io("stat page file", e))?
            .len();
        let whole = len - len % PAGE_SIZE as u64;
        if whole != len {
            file.set_len(whole)
                .map_err(|e| StoreError::io("truncate torn tail page", e))?;
        }
        Ok(Pager {
            file,
            path: path.to_path_buf(),
            frames: HashMap::new(),
            capacity: capacity.max(1),
            tick: 0,
            npages: (whole / PAGE_SIZE as u64) as u32,
            stats: PagerStats::default(),
        })
    }

    /// The page file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of allocated pages.
    pub fn page_count(&self) -> u32 {
        self.npages
    }

    /// This pager's counters.
    pub fn stats(&self) -> PagerStats {
        self.stats
    }

    /// Number of dirty frames in the pool.
    pub fn dirty_count(&self) -> usize {
        self.frames.values().filter(|f| f.dirty).count()
    }

    /// Numbers of the dirty frames, ascending.
    pub fn dirty_pages(&self) -> Vec<u32> {
        let mut dirty: Vec<u32> = self
            .frames
            .iter()
            .filter(|(_, f)| f.dirty)
            .map(|(&no, _)| no)
            .collect();
        dirty.sort_unstable();
        dirty
    }

    /// Allocate a fresh page at the end of the file; returns its
    /// number. The page exists as a dirty frame until flushed.
    pub fn allocate(&mut self) -> Result<u32> {
        let no = self.npages;
        self.npages += 1;
        self.make_room(no)?;
        self.tick += 1;
        self.frames.insert(
            no,
            Frame { page: Page::new(no), dirty: true, pins: 0, last_used: self.tick },
        );
        Ok(no)
    }

    fn make_room(&mut self, incoming: u32) -> Result<()> {
        while self.frames.len() >= self.capacity {
            let victim = self
                .frames
                .iter()
                .filter(|(&no, f)| f.pins == 0 && no != incoming)
                .min_by_key(|(_, f)| f.last_used)
                .map(|(&no, _)| no);
            let Some(no) = victim else {
                // Everything is pinned: grow past capacity rather than
                // deadlock — the pool is a cache, not a hard limit.
                return Ok(());
            };
            self.evict(no)?;
        }
        Ok(())
    }

    fn evict(&mut self, no: u32) -> Result<()> {
        if let Some(mut frame) = self.frames.remove(&no) {
            if frame.dirty {
                self.write_frame(no, &mut frame.page)?;
            }
            self.stats.evictions += 1;
            pager_evictions().inc();
        }
        Ok(())
    }

    fn write_frame(&mut self, no: u32, page: &mut Page) -> Result<()> {
        let offset = no as u64 * PAGE_SIZE as u64;
        self.file
            .seek(SeekFrom::Start(offset))
            .map_err(|e| StoreError::io(format!("seek to page {no}"), e))?;
        self.file
            .write_all(page.sealed())
            .map_err(|e| StoreError::io(format!("write page {no}"), e))?;
        self.stats.pages_flushed += 1;
        pager_flushed().inc();
        Ok(())
    }

    fn load(&mut self, no: u32) -> Result<()> {
        if self.frames.contains_key(&no) {
            self.stats.hits += 1;
            pager_hits().inc();
            return Ok(());
        }
        if no >= self.npages {
            return Err(StoreError::new(
                StoreErrorKind::Corrupt,
                format!("page {no} out of range (file has {})", self.npages),
            ));
        }
        self.stats.misses += 1;
        pager_misses().inc();
        self.make_room(no)?;
        let mut bytes = [0u8; PAGE_SIZE];
        self.file
            .seek(SeekFrom::Start(no as u64 * PAGE_SIZE as u64))
            .map_err(|e| StoreError::io(format!("seek to page {no}"), e))?;
        self.file
            .read_exact(&mut bytes)
            .map_err(|e| StoreError::io(format!("read page {no}"), e))?;
        let page = Page::from_bytes(bytes)?;
        if page.page_no() != no {
            return Err(StoreError::new(
                StoreErrorKind::Corrupt,
                format!("page at slot {no} claims to be page {}", page.page_no()),
            ));
        }
        self.tick += 1;
        self.frames
            .insert(no, Frame { page, dirty: false, pins: 0, last_used: self.tick });
        Ok(())
    }

    /// Read access to page `no`, faulting it in (and verifying its
    /// checksum) if needed.
    pub fn page(&mut self, no: u32) -> Result<&Page> {
        self.load(no)?;
        self.tick += 1;
        let frame = self.frames.get_mut(&no).expect("just loaded");
        frame.last_used = self.tick;
        Ok(&frame.page)
    }

    /// Write access to page `no`; marks the frame dirty.
    pub fn page_mut(&mut self, no: u32) -> Result<&mut Page> {
        self.load(no)?;
        self.tick += 1;
        let frame = self.frames.get_mut(&no).expect("just loaded");
        frame.last_used = self.tick;
        frame.dirty = true;
        Ok(&mut frame.page)
    }

    /// Pin page `no` in the pool (it will not be evicted until
    /// unpinned). Faults the page in first.
    pub fn pin(&mut self, no: u32) -> Result<()> {
        self.load(no)?;
        self.frames.get_mut(&no).expect("just loaded").pins += 1;
        Ok(())
    }

    /// Drop one pin from page `no` (no-op when not resident or
    /// unpinned).
    pub fn unpin(&mut self, no: u32) {
        if let Some(frame) = self.frames.get_mut(&no) {
            frame.pins = frame.pins.saturating_sub(1);
        }
    }

    /// Replace page `no` with a fresh empty page (dirty, unflushed) —
    /// the recovery path for a page whose checksum failed: its contents
    /// are rebuilt from the WAL, not trusted from disk.
    pub fn reset_page(&mut self, no: u32) -> Result<()> {
        if no >= self.npages {
            return Err(StoreError::new(
                StoreErrorKind::Corrupt,
                format!("cannot reset unallocated page {no}"),
            ));
        }
        self.make_room(no)?;
        self.tick += 1;
        self.frames.insert(
            no,
            Frame { page: Page::new(no), dirty: true, pins: 0, last_used: self.tick },
        );
        Ok(())
    }

    /// Write back every dirty frame and fsync the file; returns how
    /// many pages were written. `stop_after` caps the number written
    /// (fault-injection hook — simulates a crash partway through a
    /// multi-page checkpoint flush); `None` flushes everything.
    pub fn flush_dirty_capped(&mut self, stop_after: Option<usize>) -> Result<usize> {
        let mut dirty: Vec<u32> = self
            .frames
            .iter()
            .filter(|(_, f)| f.dirty)
            .map(|(&no, _)| no)
            .collect();
        dirty.sort_unstable();
        let mut written = 0usize;
        for no in dirty {
            if let Some(cap) = stop_after {
                if written >= cap {
                    return Ok(written);
                }
            }
            let mut frame = self.frames.remove(&no).expect("listed as resident");
            self.write_frame(no, &mut frame.page)?;
            frame.dirty = false;
            self.frames.insert(no, frame);
            written += 1;
        }
        self.sync()?;
        Ok(written)
    }

    /// Write back every dirty frame and fsync the file.
    pub fn flush_dirty(&mut self) -> Result<usize> {
        self.flush_dirty_capped(None)
    }

    /// fsync the page file.
    pub fn sync(&mut self) -> Result<()> {
        self.file
            .sync_data()
            .map_err(|e| StoreError::io("fsync page file", e))?;
        self.stats.fsyncs += 1;
        pager_fsyncs().inc();
        Ok(())
    }

    /// Fault-injection hook: write only the first half of page `no` to
    /// disk (a torn write), leaving the on-disk image failing its
    /// checksum — exactly what a power cut mid-`write` leaves behind.
    /// The in-memory frame stays resident and dirty: the running
    /// process still holds the good copy, so a later flush repairs the
    /// disk and the tear is only observable by an open that happens
    /// first — i.e. by a crash.
    pub fn tear_page(&mut self, no: u32) -> Result<()> {
        if no >= self.npages {
            return Err(StoreError::new(
                StoreErrorKind::Corrupt,
                format!("cannot tear unallocated page {no}"),
            ));
        }
        self.load(no)?;
        let frame = self.frames.get_mut(&no).expect("just loaded");
        let sealed = *frame.page.sealed();
        frame.dirty = true;
        self.file
            .seek(SeekFrom::Start(no as u64 * PAGE_SIZE as u64))
            .map_err(|e| StoreError::io(format!("seek to page {no}"), e))?;
        self.file
            .write_all(&sealed[..PAGE_SIZE / 2])
            .map_err(|e| StoreError::io(format!("tear page {no}"), e))?;
        // Scribble over the second half so the torn image cannot
        // accidentally still match its checksum.
        let noise = [0x5Au8; PAGE_SIZE / 2];
        self.file
            .write_all(&noise)
            .map_err(|e| StoreError::io(format!("tear page {no}"), e))?;
        self.file
            .sync_data()
            .map_err(|e| StoreError::io("fsync torn page", e))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("xac_store_pager_{name}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("pages.dat")
    }

    #[test]
    fn pages_survive_flush_and_reopen() {
        let path = tmp("reopen");
        let _ = std::fs::remove_file(&path);
        {
            let mut pager = Pager::open(&path, 8).unwrap();
            let a = pager.allocate().unwrap();
            let b = pager.allocate().unwrap();
            pager.page_mut(a).unwrap().insert_cell(b"first").unwrap();
            pager.page_mut(b).unwrap().insert_cell(b"second").unwrap();
            assert_eq!(pager.dirty_count(), 2);
            assert_eq!(pager.flush_dirty().unwrap(), 2);
            assert_eq!(pager.dirty_count(), 0);
        }
        let mut pager = Pager::open(&path, 8).unwrap();
        assert_eq!(pager.page_count(), 2);
        assert_eq!(pager.page(0).unwrap().cell(0).unwrap(), b"first");
        assert_eq!(pager.page(1).unwrap().cell(0).unwrap(), b"second");
        let stats = pager.stats();
        assert_eq!(stats.misses, 2);
        assert_eq!(pager.page(0).unwrap().cell(0).unwrap(), b"first");
        assert_eq!(pager.stats().hits, 1);
    }

    #[test]
    fn lru_evicts_cold_unpinned_frames_only() {
        let path = tmp("lru");
        let _ = std::fs::remove_file(&path);
        let mut pager = Pager::open(&path, 2).unwrap();
        let a = pager.allocate().unwrap();
        let b = pager.allocate().unwrap();
        pager.page_mut(a).unwrap().insert_cell(b"a").unwrap();
        pager.page_mut(b).unwrap().insert_cell(b"b").unwrap();
        pager.pin(a).unwrap();
        // Third page with capacity 2: must evict b (a is pinned),
        // writing its dirty frame back.
        let c = pager.allocate().unwrap();
        pager.page_mut(c).unwrap().insert_cell(b"c").unwrap();
        assert_eq!(pager.stats().evictions, 1);
        // b faults back in from disk intact.
        assert_eq!(pager.page(b).unwrap().cell(0).unwrap(), b"b");
        pager.unpin(a);
        assert_eq!(pager.page(a).unwrap().cell(0).unwrap(), b"a");
        assert!(pager.stats().hit_rate() > 0.0);
    }

    #[test]
    fn torn_page_write_fails_checksum_on_reopen() {
        let path = tmp("torn");
        let _ = std::fs::remove_file(&path);
        {
            let mut pager = Pager::open(&path, 4).unwrap();
            let a = pager.allocate().unwrap();
            pager.page_mut(a).unwrap().insert_cell(b"doomed").unwrap();
            pager.flush_dirty().unwrap();
            pager.tear_page(a).unwrap();
        }
        let mut pager = Pager::open(&path, 4).unwrap();
        let err = pager.page(0).unwrap_err();
        assert_eq!(err.kind, StoreErrorKind::Checksum, "{err}");
        // reset_page rebuilds a usable empty page in place.
        pager.reset_page(0).unwrap();
        pager.page_mut(0).unwrap().insert_cell(b"repaired").unwrap();
        pager.flush_dirty().unwrap();
        drop(pager);
        let mut pager = Pager::open(&path, 4).unwrap();
        assert_eq!(pager.page(0).unwrap().cell(0).unwrap(), b"repaired");
    }

    #[test]
    fn partial_tail_page_is_truncated_on_open() {
        let path = tmp("tail");
        let _ = std::fs::remove_file(&path);
        {
            let mut pager = Pager::open(&path, 4).unwrap();
            pager.allocate().unwrap();
            pager.flush_dirty().unwrap();
        }
        // Append half a page of garbage — a crash mid-extension.
        {
            use std::io::Write;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[0xFFu8; PAGE_SIZE / 2]).unwrap();
        }
        let pager = Pager::open(&path, 4).unwrap();
        assert_eq!(pager.page_count(), 1);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), PAGE_SIZE as u64);
    }
}
