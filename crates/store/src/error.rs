//! Typed storage failures. Everything the pager and WAL can hit is
//! classified into a small closed set of kinds so the layers above
//! (xac-core's `Error::Storage`, the serve ladder, the CLI exit code)
//! can act on the class without parsing message text.

use std::fmt;

/// The failure classes the storage layer distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreErrorKind {
    /// An OS-level I/O failure (open, read, write, fsync, truncate).
    Io,
    /// A page's stored checksum did not match its contents — a torn or
    /// corrupted page write detected on load.
    Checksum,
    /// A WAL frame was incomplete or failed its CRC — the torn tail a
    /// crash mid-append leaves behind.
    TornWrite,
    /// Structurally invalid on-disk state (bad magic, impossible
    /// offsets, mismatched backend tag).
    Corrupt,
}

impl StoreErrorKind {
    /// The canonical spelling, carried into `Error::Storage`'s
    /// `source_kind` so diagnostics stay greppable across layers.
    pub fn name(self) -> &'static str {
        match self {
            StoreErrorKind::Io => "io",
            StoreErrorKind::Checksum => "checksum",
            StoreErrorKind::TornWrite => "torn_write",
            StoreErrorKind::Corrupt => "corrupt",
        }
    }
}

impl fmt::Display for StoreErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One storage failure: a kind plus human-readable context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreError {
    /// The failure class.
    pub kind: StoreErrorKind,
    /// What was being attempted, with paths/offsets where useful.
    pub context: String,
}

impl StoreError {
    /// Build an error of `kind`.
    pub fn new(kind: StoreErrorKind, context: impl Into<String>) -> StoreError {
        StoreError { kind, context: context.into() }
    }

    /// Wrap an OS error with what was being attempted.
    pub fn io(context: impl fmt::Display, e: std::io::Error) -> StoreError {
        StoreError::new(StoreErrorKind::Io, format!("{context}: {e}"))
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "storage {} error: {}", self.kind, self.context)
    }
}

impl std::error::Error for StoreError {}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, StoreError>;
