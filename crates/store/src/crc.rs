//! CRC-32 (IEEE 802.3 polynomial), table-driven, built from scratch —
//! the workspace carries no external crates (DESIGN.md §6). Frames both
//! the page checksums and the WAL record framing, so a torn or bit-rotted
//! write is detected on reopen rather than silently replayed.

/// The reflected IEEE polynomial (0x04C11DB7 bit-reversed).
const POLY: u32 = 0xEDB8_8320;

/// The byte-indexed remainder table, computed at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 of `bytes` (init `0xFFFF_FFFF`, final xor, reflected — the
/// standard zlib/Ethernet parameterization).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_vectors() {
        // Canonical check value for the IEEE parameterization.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn detects_single_bit_flips() {
        let mut data = b"guarded update sign diff".to_vec();
        let clean = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(crc32(&data), clean, "flip at {byte}:{bit} undetected");
                data[byte] ^= 1 << bit;
            }
        }
    }
}
