//! The durable sign map: the materialized `sign` column/attribute —
//! the state the paper's whole method revolves around — behind a
//! [`PageStore`] trait, persisted on slotted pages.
//!
//! Each entry is a fixed 9-byte cell `[id i64 LE][sign u8]`. An
//! in-memory directory (id → (page, slot)) and mirror map are rebuilt
//! by scanning the pages on open; the pages are the durable copy, the
//! WAL is the source of truth when they disagree (a torn page is reset
//! and rebuilt via [`PageStore::reconcile`]).

use crate::error::{Result, StoreError, StoreErrorKind};
use crate::pager::{Pager, PagerStats};
use std::collections::{BTreeMap, HashMap};
use std::path::Path;

/// A durable id → sign map with dirty-page-granular flushing. This is
/// the storage contract both the relational sign columns and the native
/// element arena's sign attributes persist through.
pub trait PageStore {
    /// Set (insert or overwrite) the sign for `id`.
    fn put_sign(&mut self, id: i64, sign: char) -> Result<()>;
    /// Remove the sign for `id` (no-op when absent).
    fn clear_sign(&mut self, id: i64) -> Result<()>;
    /// The sign for `id`, if any.
    fn get_sign(&self, id: i64) -> Option<char>;
    /// Write back dirty pages and fsync; returns pages written. Cost is
    /// O(dirty pages) — the durable checkpoint.
    fn flush(&mut self) -> Result<usize>;
    /// The full map, in id order.
    fn sign_state(&self) -> BTreeMap<i64, char>;
    /// Number of entries.
    fn len(&self) -> usize;
    /// True when empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Make the store byte-equal to `target`, putting/clearing only
    /// differences; returns entries changed. The recovery path: after
    /// WAL replay decides the true map, the pages are repaired to it.
    fn reconcile(&mut self, target: &BTreeMap<i64, char>) -> Result<usize> {
        let current = self.sign_state();
        let mut changed = 0usize;
        for (&id, &sign) in target {
            if current.get(&id) != Some(&sign) {
                self.put_sign(id, sign)?;
                changed += 1;
            }
        }
        for &id in current.keys() {
            if !target.contains_key(&id) {
                self.clear_sign(id)?;
                changed += 1;
            }
        }
        Ok(changed)
    }
}

const CELL_SIZE: usize = 9;

fn encode_cell(id: i64, sign: char) -> [u8; CELL_SIZE] {
    let mut cell = [0u8; CELL_SIZE];
    cell[..8].copy_from_slice(&id.to_le_bytes());
    cell[8] = sign as u8;
    cell
}

fn decode_cell(cell: &[u8]) -> Result<(i64, char)> {
    if cell.len() != CELL_SIZE {
        return Err(StoreError::new(
            StoreErrorKind::Corrupt,
            format!("sign cell has {} bytes, expected {CELL_SIZE}", cell.len()),
        ));
    }
    let id = i64::from_le_bytes(cell[..8].try_into().unwrap());
    Ok((id, cell[8] as char))
}

/// [`PageStore`] over a [`Pager`]. See the module docs.
pub struct SignPageStore {
    pager: Pager,
    /// id → (page, slot) for every live entry.
    directory: HashMap<i64, (u32, u16)>,
    /// In-memory mirror of the durable map (pages remain the durable
    /// copy; this makes `get_sign`/`sign_state` allocation-cheap).
    mirror: BTreeMap<i64, char>,
    /// Pages with room for at least one more cell, newest last.
    open_pages: Vec<u32>,
    /// Pages whose checksum failed on open — reset to empty, their
    /// entries lost until `reconcile` repairs them from the WAL.
    torn_pages: Vec<u32>,
}

impl SignPageStore {
    /// Open (creating if absent) the page file, scan every page to
    /// rebuild the directory, and reset any page that fails its
    /// checksum (recording it in [`SignPageStore::torn_pages`]).
    pub fn open(path: &Path, pool_pages: usize) -> Result<SignPageStore> {
        let mut pager = Pager::open(path, pool_pages)?;
        let mut directory = HashMap::new();
        let mut mirror = BTreeMap::new();
        let mut open_pages = Vec::new();
        let mut torn_pages = Vec::new();
        for no in 0..pager.page_count() {
            match pager.page(no) {
                Ok(page) => {
                    for (slot, cell) in page.live_cells() {
                        let (id, sign) = decode_cell(cell)?;
                        directory.insert(id, (no, slot));
                        mirror.insert(id, sign);
                    }
                    if page.free_space() >= CELL_SIZE {
                        open_pages.push(no);
                    }
                }
                Err(e) if e.kind == StoreErrorKind::Checksum => {
                    pager.reset_page(no)?;
                    open_pages.push(no);
                    torn_pages.push(no);
                }
                Err(e) => return Err(e),
            }
        }
        Ok(SignPageStore { pager, directory, mirror, open_pages, torn_pages })
    }

    /// Pages whose checksum failed on open (already reset to empty).
    /// Non-empty means the caller must [`PageStore::reconcile`] against
    /// the WAL-replayed map before trusting reads.
    pub fn torn_pages(&self) -> &[u32] {
        &self.torn_pages
    }

    /// The underlying pager's counters.
    pub fn pager_stats(&self) -> PagerStats {
        self.pager.stats()
    }

    /// Number of dirty (unflushed) pages.
    pub fn dirty_pages(&self) -> usize {
        self.pager.dirty_count()
    }

    /// Fault-injection hook: tear the on-disk image of the first dirty
    /// page, as a crash mid-page-write would. Returns the torn page
    /// number, or `None` when nothing is dirty.
    pub fn tear_first_dirty_page(&mut self) -> Result<Option<u32>> {
        match self.pager.dirty_pages().first().copied() {
            Some(no) => {
                self.pager.tear_page(no)?;
                Ok(Some(no))
            }
            None => Ok(None),
        }
    }

    /// Fault-injection hook: flush at most `cap` dirty pages then stop
    /// (no fsync) — a crash partway through the checkpoint flush.
    pub fn flush_capped(&mut self, cap: usize) -> Result<usize> {
        self.pager.flush_dirty_capped(Some(cap))
    }

    fn page_with_room(&mut self) -> Result<u32> {
        while let Some(&no) = self.open_pages.last() {
            if self.pager.page(no)?.free_space() >= CELL_SIZE {
                return Ok(no);
            }
            self.open_pages.pop();
        }
        let no = self.pager.allocate()?;
        self.open_pages.push(no);
        Ok(no)
    }
}

impl PageStore for SignPageStore {
    fn put_sign(&mut self, id: i64, sign: char) -> Result<()> {
        let cell = encode_cell(id, sign);
        if let Some(&(page_no, slot)) = self.directory.get(&id) {
            let page = self.pager.page_mut(page_no)?;
            if !page.update_cell(slot, &cell) {
                return Err(StoreError::new(
                    StoreErrorKind::Corrupt,
                    format!("sign directory points id {id} at a dead slot"),
                ));
            }
        } else {
            let page_no = self.page_with_room()?;
            let page = self.pager.page_mut(page_no)?;
            let slot = page.insert_cell(&cell).ok_or_else(|| {
                StoreError::new(StoreErrorKind::Corrupt, "page reported room it did not have")
            })?;
            self.directory.insert(id, (page_no, slot));
        }
        self.mirror.insert(id, sign);
        Ok(())
    }

    fn clear_sign(&mut self, id: i64) -> Result<()> {
        if let Some((page_no, slot)) = self.directory.remove(&id) {
            self.pager.page_mut(page_no)?.delete_cell(slot);
            if !self.open_pages.contains(&page_no) {
                self.open_pages.push(page_no);
            }
            self.mirror.remove(&id);
        }
        Ok(())
    }

    fn get_sign(&self, id: i64) -> Option<char> {
        self.mirror.get(&id).copied()
    }

    fn flush(&mut self) -> Result<usize> {
        self.pager.flush_dirty()
    }

    fn sign_state(&self) -> BTreeMap<i64, char> {
        self.mirror.clone()
    }

    fn len(&self) -> usize {
        self.directory.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("xac_store_signs_{name}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("signs.pages");
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn put_get_clear_flush_reopen() {
        let path = tmp("basic");
        {
            let mut store = SignPageStore::open(&path, 8).unwrap();
            for id in 0..600i64 {
                store.put_sign(id, if id % 3 == 0 { '+' } else { '-' }).unwrap();
            }
            store.clear_sign(17).unwrap();
            store.put_sign(5, '-').unwrap(); // overwrite in place
            assert_eq!(store.len(), 599);
            assert!(store.flush().unwrap() > 0);
        }
        let store = SignPageStore::open(&path, 8).unwrap();
        assert!(store.torn_pages().is_empty());
        assert_eq!(store.len(), 599);
        assert_eq!(store.get_sign(0), Some('+'));
        assert_eq!(store.get_sign(5), Some('-'));
        assert_eq!(store.get_sign(17), None);
        let state = store.sign_state();
        assert_eq!(state.len(), 599);
        assert_eq!(state.get(&3), Some(&'+'));
    }

    #[test]
    fn flush_cost_is_dirty_pages_not_total_pages() {
        let path = tmp("dirty");
        let mut store = SignPageStore::open(&path, 64).unwrap();
        // ~600 entries at 9+4 bytes each spread over several pages.
        for id in 0..600i64 {
            store.put_sign(id, '+').unwrap();
        }
        let initial = store.flush().unwrap();
        assert!(initial >= 2, "expected several pages, wrote {initial}");
        // A small update touches one page.
        store.put_sign(3, '-').unwrap();
        assert_eq!(store.dirty_pages(), 1);
        assert_eq!(store.flush().unwrap(), 1);
        assert_eq!(store.flush().unwrap(), 0, "clean store flushes nothing");
    }

    #[test]
    fn torn_page_is_reset_and_reconciled() {
        let path = tmp("torn");
        let golden: BTreeMap<i64, char> =
            (0..400i64).map(|id| (id, if id % 2 == 0 { '+' } else { '-' })).collect();
        {
            let mut store = SignPageStore::open(&path, 8).unwrap();
            store.reconcile(&golden).unwrap();
            store.flush().unwrap();
            store.put_sign(0, '-').unwrap(); // dirty one page…
            store.tear_first_dirty_page().unwrap().expect("a dirty page to tear");
        }
        let mut store = SignPageStore::open(&path, 8).unwrap();
        assert_eq!(store.torn_pages().len(), 1, "the torn page was detected");
        assert!(store.len() < golden.len(), "torn page's entries are gone pre-repair");
        let repaired = store.reconcile(&golden).unwrap();
        assert!(repaired > 0);
        store.flush().unwrap();
        drop(store);
        let store = SignPageStore::open(&path, 8).unwrap();
        assert!(store.torn_pages().is_empty());
        assert_eq!(store.sign_state(), golden, "byte-identical after repair");
    }

    #[test]
    fn reconcile_is_a_noop_on_equal_state() {
        let path = tmp("noop");
        let mut store = SignPageStore::open(&path, 8).unwrap();
        let target: BTreeMap<i64, char> = (0..50i64).map(|id| (id, '+')).collect();
        assert_eq!(store.reconcile(&target).unwrap(), 50);
        store.flush().unwrap();
        assert_eq!(store.reconcile(&target).unwrap(), 0);
        assert_eq!(store.dirty_pages(), 0, "no-op reconcile dirties nothing");
    }
}
