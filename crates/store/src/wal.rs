//! The write-ahead log.
//!
//! An append-only file of CRC-framed records:
//!
//! ```text
//! frame   := [len u32 LE][crc u32 LE][payload: len bytes]   crc = CRC-32(payload)
//! payload := [tag u8][fields...]
//! string  := [len u32 LE][utf-8 bytes]
//! option  := [present u8][value if present]
//! ```
//!
//! Record grammar (tag → fields):
//!
//! ```text
//! 1 Meta      backend:string mode:string       first record of every log
//! 2 Delete    path:string                      guarded structural delete
//! 3 Insert    parent:string name:string text:option<string>
//! 4 SignSet   id:i64 sign:u8                   sign diff entry
//! 5 SignClear id:i64                           sign diff entry (sign removed)
//! 6 Commit    epoch:u64                        transaction boundary, fsync'd
//! ```
//!
//! A transaction is every record since the previous `Commit` up to and
//! including its own; recovery replays whole committed transactions
//! only. On reopen the log is scanned front to back: the first
//! incomplete or CRC-failing frame is the **torn tail** a crash
//! mid-append leaves behind, and everything from the last `Commit`
//! boundary onward (torn bytes and valid-but-uncommitted records alike)
//! is truncated away — an implicit abort of the interrupted
//! transaction.

use crate::crc::crc32;
use crate::error::{Result, StoreError, StoreErrorKind};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};

/// Refuse frames larger than this — no legal record comes close, so a
/// bigger declared length means a corrupt header, not a big record.
const MAX_FRAME: u32 = 1 << 20;

fn wal_records() -> &'static Arc<xac_obs::Counter> {
    static C: OnceLock<Arc<xac_obs::Counter>> = OnceLock::new();
    C.get_or_init(|| xac_obs::counter("xac_wal_records_total"))
}

fn wal_bytes() -> &'static Arc<xac_obs::Counter> {
    static C: OnceLock<Arc<xac_obs::Counter>> = OnceLock::new();
    C.get_or_init(|| xac_obs::counter("xac_wal_appended_bytes_total"))
}

fn wal_fsyncs() -> &'static Arc<xac_obs::Counter> {
    static C: OnceLock<Arc<xac_obs::Counter>> = OnceLock::new();
    C.get_or_init(|| xac_obs::counter("xac_wal_fsyncs_total"))
}

fn wal_commits() -> &'static Arc<xac_obs::Counter> {
    static C: OnceLock<Arc<xac_obs::Counter>> = OnceLock::new();
    C.get_or_init(|| xac_obs::counter("xac_wal_commits_total"))
}

fn wal_replayed() -> &'static Arc<xac_obs::Counter> {
    static C: OnceLock<Arc<xac_obs::Counter>> = OnceLock::new();
    C.get_or_init(|| xac_obs::counter("xac_wal_replayed_records_total"))
}

/// One WAL record. See the module docs for the on-disk grammar.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// Identifies the log: which backend and annotate mode wrote it.
    /// Always the first record; recovery refuses a log whose tag does
    /// not match the backend being recovered.
    Meta {
        /// The backend's `Backend::name`, e.g. `relational/column`.
        backend: String,
        /// The annotate mode's canonical spelling.
        mode: String,
    },
    /// A committed guarded delete's path (source text).
    Delete {
        /// XPath source designating the deleted nodes.
        path: String,
    },
    /// A committed guarded insert.
    Insert {
        /// XPath source designating the parent nodes.
        parent: String,
        /// Inserted element name.
        name: String,
        /// Optional text content.
        text: Option<String>,
    },
    /// Sign diff entry: node/tuple `id` now carries `sign`.
    SignSet {
        /// The backend-assigned node/tuple id.
        id: i64,
        /// `'+'` or `'-'`.
        sign: char,
    },
    /// Sign diff entry: node/tuple `id` no longer carries a sign.
    SignClear {
        /// The backend-assigned node/tuple id.
        id: i64,
    },
    /// Transaction boundary; `epoch` is the backend epoch after the
    /// transaction.
    Commit {
        /// Backend epoch at commit.
        epoch: u64,
    },
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.at + n > self.bytes.len() {
            return Err(StoreError::new(
                StoreErrorKind::Corrupt,
                "wal record truncated inside a field",
            ));
        }
        let slice = &self.bytes[self.at..self.at + n];
        self.at += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn string(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| StoreError::new(StoreErrorKind::Corrupt, "wal string is not utf-8"))
    }

    fn done(&self) -> bool {
        self.at == self.bytes.len()
    }
}

impl WalRecord {
    /// Encode to the payload form (no frame header).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        match self {
            WalRecord::Meta { backend, mode } => {
                out.push(1);
                put_string(&mut out, backend);
                put_string(&mut out, mode);
            }
            WalRecord::Delete { path } => {
                out.push(2);
                put_string(&mut out, path);
            }
            WalRecord::Insert { parent, name, text } => {
                out.push(3);
                put_string(&mut out, parent);
                put_string(&mut out, name);
                match text {
                    Some(t) => {
                        out.push(1);
                        put_string(&mut out, t);
                    }
                    None => out.push(0),
                }
            }
            WalRecord::SignSet { id, sign } => {
                out.push(4);
                out.extend_from_slice(&id.to_le_bytes());
                out.push(*sign as u8);
            }
            WalRecord::SignClear { id } => {
                out.push(5);
                out.extend_from_slice(&id.to_le_bytes());
            }
            WalRecord::Commit { epoch } => {
                out.push(6);
                out.extend_from_slice(&epoch.to_le_bytes());
            }
        }
        out
    }

    /// Decode a payload. Trailing bytes are an error — a frame holds
    /// exactly one record.
    pub fn decode(bytes: &[u8]) -> Result<WalRecord> {
        let mut c = Cursor { bytes, at: 0 };
        let record = match c.u8()? {
            1 => WalRecord::Meta { backend: c.string()?, mode: c.string()? },
            2 => WalRecord::Delete { path: c.string()? },
            3 => {
                let parent = c.string()?;
                let name = c.string()?;
                let text = match c.u8()? {
                    0 => None,
                    1 => Some(c.string()?),
                    other => {
                        return Err(StoreError::new(
                            StoreErrorKind::Corrupt,
                            format!("bad option byte {other} in wal insert"),
                        ))
                    }
                };
                WalRecord::Insert { parent, name, text }
            }
            4 => WalRecord::SignSet { id: c.i64()?, sign: c.u8()? as char },
            5 => WalRecord::SignClear { id: c.i64()? },
            6 => WalRecord::Commit { epoch: c.u64()? },
            tag => {
                return Err(StoreError::new(
                    StoreErrorKind::Corrupt,
                    format!("unknown wal record tag {tag}"),
                ))
            }
        };
        if !c.done() {
            return Err(StoreError::new(
                StoreErrorKind::Corrupt,
                "trailing bytes after wal record",
            ));
        }
        Ok(record)
    }
}

/// Running counters for one WAL instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Records appended (commits included).
    pub records_appended: u64,
    /// Frame bytes appended.
    pub bytes_appended: u64,
    /// `fsync` calls.
    pub fsyncs: u64,
    /// Commit records appended.
    pub commits: u64,
    /// Committed records returned by the reopen scan.
    pub records_replayed: u64,
    /// Bytes discarded by torn-tail/uncommitted truncation on reopen.
    pub truncated_bytes: u64,
}

/// The write-ahead log over one append-only file.
pub struct Wal {
    file: File,
    path: PathBuf,
    /// Current append offset (== file length).
    len: u64,
    /// Offset just past the last durable `Commit` record.
    last_commit_end: u64,
    stats: WalStats,
}

impl Wal {
    /// Open (creating if absent) the log at `path`, scan it, truncate
    /// any torn or uncommitted tail, and return the log positioned for
    /// appending together with every *committed* record in order.
    pub fn open(path: &Path) -> Result<(Wal, Vec<WalRecord>)> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(|e| StoreError::io(format!("open wal {}", path.display()), e))?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)
            .map_err(|e| StoreError::io("read wal", e))?;
        let mut records = Vec::new();
        let mut at = 0usize;
        let mut last_commit_end = 0u64;
        let mut committed = 0usize;
        loop {
            if at + 8 > bytes.len() {
                break; // torn header (or clean EOF)
            }
            let len = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap());
            let crc = u32::from_le_bytes(bytes[at + 4..at + 8].try_into().unwrap());
            if len == 0 || len > MAX_FRAME || at + 8 + len as usize > bytes.len() {
                break; // torn payload or garbage header
            }
            let payload = &bytes[at + 8..at + 8 + len as usize];
            if crc32(payload) != crc {
                break; // torn write inside the payload
            }
            let Ok(record) = WalRecord::decode(payload) else {
                break; // framed garbage: treat like a torn tail
            };
            at += 8 + len as usize;
            let is_commit = matches!(record, WalRecord::Commit { .. });
            records.push(record);
            if is_commit {
                last_commit_end = at as u64;
                committed = records.len();
            }
        }
        // Drop valid-but-uncommitted records, then physically truncate
        // both them and any torn bytes beyond.
        records.truncate(committed);
        let truncated = bytes.len() as u64 - last_commit_end;
        if truncated > 0 {
            file.set_len(last_commit_end)
                .map_err(|e| StoreError::io("truncate wal tail", e))?;
        }
        file.seek(SeekFrom::Start(last_commit_end))
            .map_err(|e| StoreError::io("seek wal end", e))?;
        let stats = WalStats {
            records_replayed: records.len() as u64,
            truncated_bytes: truncated,
            ..WalStats::default()
        };
        wal_replayed().add(records.len() as u64);
        Ok((
            Wal {
                file,
                path: path.to_path_buf(),
                len: last_commit_end,
                last_commit_end,
                stats,
            },
            records,
        ))
    }

    /// The log file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Current length in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when the log holds no committed records.
    pub fn is_empty(&self) -> bool {
        self.last_commit_end == 0
    }

    /// Offset just past the last `Commit` record.
    pub fn last_commit_end(&self) -> u64 {
        self.last_commit_end
    }

    /// This log's counters.
    pub fn stats(&self) -> WalStats {
        self.stats
    }

    fn frame(record: &WalRecord) -> Vec<u8> {
        let payload = record.encode();
        let mut out = Vec::with_capacity(payload.len() + 8);
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Append one record (no fsync; durability comes from
    /// [`Wal::commit`]).
    pub fn append(&mut self, record: &WalRecord) -> Result<()> {
        let frame = Wal::frame(record);
        self.file
            .write_all(&frame)
            .map_err(|e| StoreError::io("append wal record", e))?;
        self.len += frame.len() as u64;
        self.stats.records_appended += 1;
        self.stats.bytes_appended += frame.len() as u64;
        wal_records().inc();
        wal_bytes().add(frame.len() as u64);
        Ok(())
    }

    /// Append the `Commit` boundary and (when `sync`) fsync everything
    /// up to it — the transaction's durability point.
    pub fn commit(&mut self, epoch: u64, sync: bool) -> Result<()> {
        self.append(&WalRecord::Commit { epoch })?;
        if sync {
            self.file
                .sync_data()
                .map_err(|e| StoreError::io("fsync wal", e))?;
            self.stats.fsyncs += 1;
            wal_fsyncs().inc();
        }
        self.last_commit_end = self.len;
        self.stats.commits += 1;
        wal_commits().inc();
        Ok(())
    }

    /// Abort the in-flight transaction: truncate the log back to the
    /// last commit boundary. Idempotent; called before each new
    /// transaction and by the rollback rung, so a failed transaction's
    /// partial records can never pollute the next one's replay.
    pub fn abort_to_last_commit(&mut self) -> Result<()> {
        if self.len == self.last_commit_end {
            return Ok(());
        }
        self.file
            .set_len(self.last_commit_end)
            .map_err(|e| StoreError::io("truncate aborted wal tail", e))?;
        self.file
            .seek(SeekFrom::Start(self.last_commit_end))
            .map_err(|e| StoreError::io("seek wal end", e))?;
        self.len = self.last_commit_end;
        Ok(())
    }

    /// Fault-injection hook: append only a prefix of `record`'s frame —
    /// the torn write a crash mid-append leaves behind. The reopen scan
    /// stops here and truncates.
    pub fn append_torn(&mut self, record: &WalRecord) -> Result<()> {
        let frame = Wal::frame(record);
        let cut = 8 + (frame.len() - 8) / 2;
        self.file
            .write_all(&frame[..cut])
            .map_err(|e| StoreError::io("append torn wal record", e))?;
        self.file
            .sync_data()
            .map_err(|e| StoreError::io("fsync torn wal record", e))?;
        self.len += cut as u64;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("xac_store_wal_{name}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("wal.log")
    }

    fn sample_txn() -> Vec<WalRecord> {
        vec![
            WalRecord::Meta { backend: "relational/column".into(), mode: "batched".into() },
            WalRecord::SignSet { id: 1, sign: '+' },
            WalRecord::SignSet { id: 2, sign: '-' },
            WalRecord::Commit { epoch: 1 },
        ]
    }

    #[test]
    fn record_codec_round_trips() {
        let records = vec![
            WalRecord::Meta { backend: "native/xml".into(), mode: "compiled".into() },
            WalRecord::Delete { path: "//regular".into() },
            WalRecord::Insert { parent: "//patients".into(), name: "patient".into(), text: None },
            WalRecord::Insert {
                parent: "//patient".into(),
                name: "psn".into(),
                text: Some("033".into()),
            },
            WalRecord::SignSet { id: -9, sign: '+' },
            WalRecord::SignClear { id: 42 },
            WalRecord::Commit { epoch: 7 },
        ];
        for r in &records {
            assert_eq!(&WalRecord::decode(&r.encode()).unwrap(), r);
        }
        assert!(WalRecord::decode(&[99]).is_err(), "unknown tag");
        let mut extra = records[1].encode();
        extra.push(0);
        assert!(WalRecord::decode(&extra).is_err(), "trailing byte");
    }

    #[test]
    fn committed_records_survive_reopen() {
        let path = tmp("reopen");
        let _ = std::fs::remove_file(&path);
        {
            let (mut wal, replayed) = Wal::open(&path).unwrap();
            assert!(replayed.is_empty());
            for r in sample_txn() {
                match r {
                    WalRecord::Commit { epoch } => wal.commit(epoch, true).unwrap(),
                    other => wal.append(&other).unwrap(),
                }
            }
            assert_eq!(wal.stats().commits, 1);
            assert_eq!(wal.stats().fsyncs, 1);
        }
        let (wal, replayed) = Wal::open(&path).unwrap();
        assert_eq!(replayed, sample_txn());
        assert_eq!(wal.stats().records_replayed, 4);
        assert_eq!(wal.stats().truncated_bytes, 0);
    }

    #[test]
    fn torn_tail_is_detected_and_truncated() {
        let path = tmp("torn");
        let _ = std::fs::remove_file(&path);
        let committed_len;
        {
            let (mut wal, _) = Wal::open(&path).unwrap();
            for r in sample_txn() {
                match r {
                    WalRecord::Commit { epoch } => wal.commit(epoch, true).unwrap(),
                    other => wal.append(&other).unwrap(),
                }
            }
            committed_len = wal.last_commit_end();
            // A second transaction dies mid-record.
            wal.append(&WalRecord::Delete { path: "//regular".into() }).unwrap();
            wal.append_torn(&WalRecord::SignSet { id: 5, sign: '-' }).unwrap();
        }
        let (wal, replayed) = Wal::open(&path).unwrap();
        assert_eq!(replayed, sample_txn(), "only the committed transaction replays");
        assert!(wal.stats().truncated_bytes > 0);
        assert_eq!(wal.len(), committed_len, "torn + uncommitted bytes truncated");
    }

    #[test]
    fn uncommitted_tail_is_an_implicit_abort() {
        let path = tmp("abort");
        let _ = std::fs::remove_file(&path);
        {
            let (mut wal, _) = Wal::open(&path).unwrap();
            for r in sample_txn() {
                match r {
                    WalRecord::Commit { epoch } => wal.commit(epoch, true).unwrap(),
                    other => wal.append(&other).unwrap(),
                }
            }
            // Valid, complete records — but no commit mark.
            wal.append(&WalRecord::SignSet { id: 77, sign: '+' }).unwrap();
            wal.append(&WalRecord::SignSet { id: 78, sign: '+' }).unwrap();
        }
        let (_, replayed) = Wal::open(&path).unwrap();
        assert_eq!(replayed, sample_txn());
    }

    #[test]
    fn explicit_abort_truncates_in_process() {
        let path = tmp("abort2");
        let _ = std::fs::remove_file(&path);
        let (mut wal, _) = Wal::open(&path).unwrap();
        wal.append(&WalRecord::Meta { backend: "native/xml".into(), mode: "paper".into() })
            .unwrap();
        wal.commit(1, false).unwrap();
        let committed = wal.len();
        wal.append(&WalRecord::SignSet { id: 1, sign: '+' }).unwrap();
        assert!(wal.len() > committed);
        wal.abort_to_last_commit().unwrap();
        assert_eq!(wal.len(), committed);
        // The next transaction appends cleanly after the abort.
        wal.append(&WalRecord::SignSet { id: 2, sign: '-' }).unwrap();
        wal.commit(2, false).unwrap();
        drop(wal);
        let (_, replayed) = Wal::open(&path).unwrap();
        assert_eq!(replayed.len(), 4);
        assert!(matches!(replayed[2], WalRecord::SignSet { id: 2, sign: '-' }));
    }

    #[test]
    fn garbage_header_stops_the_scan() {
        let path = tmp("garbage");
        let _ = std::fs::remove_file(&path);
        {
            let (mut wal, _) = Wal::open(&path).unwrap();
            wal.append(&WalRecord::Meta { backend: "native/xml".into(), mode: "paper".into() })
                .unwrap();
            wal.commit(1, true).unwrap();
        }
        {
            use std::io::Write;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[0xFF; 32]).unwrap();
        }
        let (wal, replayed) = Wal::open(&path).unwrap();
        assert_eq!(replayed.len(), 2);
        assert_eq!(wal.stats().truncated_bytes, 32);
    }
}
