//! # xac-store — durable storage primitives
//!
//! The dependency-free storage engine under the serving stack
//! (DESIGN.md §4i): a 4 KB slotted-page file format ([`page`]), a
//! buffer-pooled file pager with LRU eviction, pin counts, dirty
//! tracking and per-page CRC-32 checksums ([`pager`]), a CRC-framed
//! append-only write-ahead log with torn-tail detection ([`wal`]), and
//! the [`PageStore`] trait putting the materialized sign state — the
//! relational tables' sign columns and the native store's element-arena
//! sign attributes alike — on durable pages ([`sign_store`]).
//!
//! The crate knows nothing about XML, policies, or backends: it moves
//! ids, signs and opaque path strings. `xac-serve`'s durability layer
//! composes these pieces into the guarded-update commit protocol
//! (WAL-append → commit record → in-place page writes) and the
//! kill-and-reopen recovery path.
//!
//! Like every crate in the workspace it uses no external dependencies
//! (DESIGN.md §6); the CRC, the page format and the log framing are
//! implemented from scratch. Counters are published as `xac_wal_*` /
//! `xac_pager_*` obs metrics.

pub mod crc;
pub mod error;
pub mod page;
pub mod pager;
pub mod sign_store;
pub mod wal;

pub use crc::crc32;
pub use error::{Result, StoreError, StoreErrorKind};
pub use page::{Page, PAGE_SIZE};
pub use pager::{Pager, PagerStats};
pub use sign_store::{PageStore, SignPageStore};
pub use wal::{Wal, WalRecord, WalStats};

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    /// The crate-level crash story in one test: a committed transaction
    /// survives a torn page, because the WAL re-derives the map and
    /// `reconcile` repairs the pages.
    #[test]
    fn wal_plus_pages_recover_a_torn_write() {
        let dir = std::env::temp_dir().join(format!("xac_store_e2e_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let wal_path = dir.join("e2e.wal");
        let pages_path = dir.join("e2e.pages");
        let _ = std::fs::remove_file(&wal_path);
        let _ = std::fs::remove_file(&pages_path);

        let golden: BTreeMap<i64, char> =
            (0..300i64).map(|id| (id, if id % 5 == 0 { '-' } else { '+' })).collect();
        {
            let (mut wal, _) = Wal::open(&wal_path).unwrap();
            wal.append(&WalRecord::Meta { backend: "native/xml".into(), mode: "paper".into() })
                .unwrap();
            for (&id, &sign) in &golden {
                wal.append(&WalRecord::SignSet { id, sign }).unwrap();
            }
            wal.commit(1, true).unwrap();
            let mut store = SignPageStore::open(&pages_path, 8).unwrap();
            store.reconcile(&golden).unwrap();
            store.flush().unwrap();
            // Crash mid-write: one page torn on disk.
            store.put_sign(10, '-').unwrap();
            store.tear_first_dirty_page().unwrap().unwrap();
        }
        // Reopen: WAL says `golden`; pages have a hole; reconcile fixes.
        let (_, records) = Wal::open(&wal_path).unwrap();
        let mut replayed = BTreeMap::new();
        for r in &records {
            match r {
                WalRecord::SignSet { id, sign } => {
                    replayed.insert(*id, *sign);
                }
                WalRecord::SignClear { id } => {
                    replayed.remove(id);
                }
                _ => {}
            }
        }
        assert_eq!(replayed, golden);
        let mut store = SignPageStore::open(&pages_path, 8).unwrap();
        assert!(!store.torn_pages().is_empty());
        store.reconcile(&replayed).unwrap();
        store.flush().unwrap();
        assert_eq!(store.sign_state(), golden);
    }
}
