//! The 4 KB slotted page.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//! 0       4     checksum   CRC-32 over bytes 4..4096 (sealed on flush)
//! 4       4     page_no
//! 8       2     nslots     slot-directory length
//! 10      2     free_start low end of the cell area (cells grow down)
//! 12      4*n   slot dir   per slot: [offset u16][len u16]; len 0 = tombstone
//! ...           free space
//! ..4096        cells      written downward from the page end
//! ```
//!
//! A slot, once allocated, keeps its index for the page's lifetime —
//! deletion tombstones it (len 0) and the slot can be re-filled by a
//! later same-size insert, so (page_no, slot) pairs stay stable keys
//! for the in-memory directory above.

use crate::crc::crc32;
use crate::error::{Result, StoreError, StoreErrorKind};

/// Page size in bytes. Everything on disk is a whole number of these.
pub const PAGE_SIZE: usize = 4096;

/// Byte offset where the slot directory starts.
const HEADER_SIZE: usize = 12;
/// Bytes per slot-directory entry.
const SLOT_SIZE: usize = 4;

/// One 4 KB slotted page, manipulated in memory and sealed (checksummed)
/// when flushed.
#[derive(Clone)]
pub struct Page {
    data: Box<[u8; PAGE_SIZE]>,
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Page")
            .field("page_no", &self.page_no())
            .field("nslots", &self.nslots())
            .field("free_space", &self.free_space())
            .finish()
    }
}

impl Page {
    /// A fresh empty page numbered `page_no`.
    pub fn new(page_no: u32) -> Page {
        let mut page = Page { data: Box::new([0u8; PAGE_SIZE]) };
        page.data[4..8].copy_from_slice(&page_no.to_le_bytes());
        page.set_nslots(0);
        page.set_free_start(PAGE_SIZE as u16);
        page
    }

    /// Adopt a raw on-disk image, verifying its checksum.
    pub fn from_bytes(bytes: [u8; PAGE_SIZE]) -> Result<Page> {
        let page = Page { data: Box::new(bytes) };
        let stored = u32::from_le_bytes(page.data[0..4].try_into().unwrap());
        let actual = crc32(&page.data[4..]);
        if stored != actual {
            return Err(StoreError::new(
                StoreErrorKind::Checksum,
                format!(
                    "page {} checksum mismatch (stored {stored:#010x}, computed {actual:#010x})",
                    page.page_no()
                ),
            ));
        }
        Ok(page)
    }

    /// Recompute and store the checksum, returning the sealed bytes.
    pub fn sealed(&mut self) -> &[u8; PAGE_SIZE] {
        let crc = crc32(&self.data[4..]);
        self.data[0..4].copy_from_slice(&crc.to_le_bytes());
        &self.data
    }

    /// The page's number (its offset in the file divided by
    /// [`PAGE_SIZE`]).
    pub fn page_no(&self) -> u32 {
        u32::from_le_bytes(self.data[4..8].try_into().unwrap())
    }

    /// Number of slot-directory entries (live and tombstoned).
    pub fn nslots(&self) -> u16 {
        u16::from_le_bytes(self.data[8..10].try_into().unwrap())
    }

    fn set_nslots(&mut self, n: u16) {
        self.data[8..10].copy_from_slice(&n.to_le_bytes());
    }

    fn free_start(&self) -> u16 {
        u16::from_le_bytes(self.data[10..12].try_into().unwrap())
    }

    fn set_free_start(&mut self, v: u16) {
        self.data[10..12].copy_from_slice(&v.to_le_bytes());
    }

    fn slot_entry(&self, slot: u16) -> Option<(u16, u16)> {
        if slot >= self.nslots() {
            return None;
        }
        let at = HEADER_SIZE + slot as usize * SLOT_SIZE;
        let offset = u16::from_le_bytes(self.data[at..at + 2].try_into().unwrap());
        let len = u16::from_le_bytes(self.data[at + 2..at + 4].try_into().unwrap());
        Some((offset, len))
    }

    fn set_slot_entry(&mut self, slot: u16, offset: u16, len: u16) {
        let at = HEADER_SIZE + slot as usize * SLOT_SIZE;
        self.data[at..at + 2].copy_from_slice(&offset.to_le_bytes());
        self.data[at + 2..at + 4].copy_from_slice(&len.to_le_bytes());
    }

    /// Bytes available for one more cell of any size (accounting for
    /// its slot-directory entry).
    pub fn free_space(&self) -> usize {
        let dir_end = HEADER_SIZE + self.nslots() as usize * SLOT_SIZE;
        (self.free_start() as usize).saturating_sub(dir_end + SLOT_SIZE)
    }

    /// Insert a cell, preferring a tombstoned slot whose old cell fits
    /// `bytes` exactly, else appending a new slot. Returns the slot
    /// index, or `None` when the page is full.
    pub fn insert_cell(&mut self, bytes: &[u8]) -> Option<u16> {
        assert!(!bytes.is_empty() && bytes.len() <= PAGE_SIZE / 4, "cell size out of range");
        // Re-fill a tombstone: the tombstone keeps its original cell
        // offset in `offset` with len 0; reuse only on exact size match
        // so neighbouring cells are never overwritten.
        for slot in 0..self.nslots() {
            if let Some((offset, 0)) = self.slot_entry(slot) {
                let end = offset as usize + bytes.len();
                let next_live_start = self
                    .live_cells_above(offset)
                    .unwrap_or(PAGE_SIZE);
                if offset != 0 && end <= next_live_start {
                    self.data[offset as usize..end].copy_from_slice(bytes);
                    self.set_slot_entry(slot, offset, bytes.len() as u16);
                    return Some(slot);
                }
            }
        }
        if self.free_space() < bytes.len() {
            return None;
        }
        let offset = self.free_start() as usize - bytes.len();
        self.data[offset..offset + bytes.len()].copy_from_slice(bytes);
        let slot = self.nslots();
        self.set_nslots(slot + 1);
        self.set_slot_entry(slot, offset as u16, bytes.len() as u16);
        self.set_free_start(offset as u16);
        Some(slot)
    }

    /// The lowest start offset of a live cell strictly above `offset`,
    /// if any — the bound a re-filled tombstone must not cross.
    fn live_cells_above(&self, offset: u16) -> Option<usize> {
        (0..self.nslots())
            .filter_map(|s| self.slot_entry(s))
            .filter(|&(o, len)| len > 0 && o > offset)
            .map(|(o, _)| o as usize)
            .min()
    }

    /// The cell at `slot`; `None` for out-of-range or tombstoned slots.
    pub fn cell(&self, slot: u16) -> Option<&[u8]> {
        match self.slot_entry(slot) {
            Some((offset, len)) if len > 0 => {
                Some(&self.data[offset as usize..offset as usize + len as usize])
            }
            _ => None,
        }
    }

    /// Overwrite the cell at `slot` in place. Only same-length updates
    /// are supported (the sign records above are fixed-size); returns
    /// false on length mismatch or tombstone.
    pub fn update_cell(&mut self, slot: u16, bytes: &[u8]) -> bool {
        match self.slot_entry(slot) {
            Some((offset, len)) if len as usize == bytes.len() && len > 0 => {
                self.data[offset as usize..offset as usize + len as usize].copy_from_slice(bytes);
                true
            }
            _ => false,
        }
    }

    /// Tombstone the cell at `slot` (idempotent).
    pub fn delete_cell(&mut self, slot: u16) {
        if let Some((offset, len)) = self.slot_entry(slot) {
            if len > 0 {
                self.data[offset as usize..offset as usize + len as usize].fill(0);
                self.set_slot_entry(slot, offset, 0);
            }
        }
    }

    /// Iterate live (slot, cell) pairs.
    pub fn live_cells(&self) -> impl Iterator<Item = (u16, &[u8])> {
        (0..self.nslots()).filter_map(|s| self.cell(s).map(|c| (s, c)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_read_delete_round_trip() {
        let mut p = Page::new(7);
        assert_eq!(p.page_no(), 7);
        let a = p.insert_cell(b"alpha").unwrap();
        let b = p.insert_cell(b"beta").unwrap();
        assert_ne!(a, b);
        assert_eq!(p.cell(a).unwrap(), b"alpha");
        assert_eq!(p.cell(b).unwrap(), b"beta");
        p.delete_cell(a);
        assert!(p.cell(a).is_none());
        assert_eq!(p.cell(b).unwrap(), b"beta");
        // Same-size insert re-fills the tombstone.
        let c = p.insert_cell(b"gamma").unwrap();
        assert_eq!(c, a);
        assert_eq!(p.cell(c).unwrap(), b"gamma");
    }

    #[test]
    fn update_in_place_requires_same_length() {
        let mut p = Page::new(0);
        let s = p.insert_cell(&[1, 2, 3, 4]).unwrap();
        assert!(p.update_cell(s, &[9, 9, 9, 9]));
        assert_eq!(p.cell(s).unwrap(), &[9, 9, 9, 9]);
        assert!(!p.update_cell(s, &[1, 2]));
        p.delete_cell(s);
        assert!(!p.update_cell(s, &[9, 9, 9, 9]));
    }

    #[test]
    fn fills_up_and_refuses_gracefully() {
        let mut p = Page::new(1);
        let cell = [0xABu8; 16];
        let mut inserted = 0usize;
        while p.insert_cell(&cell).is_some() {
            inserted += 1;
        }
        // 4096 - 12 header bytes, 16 + 4 per cell.
        assert_eq!(inserted, (PAGE_SIZE - HEADER_SIZE) / (16 + SLOT_SIZE));
        assert!(p.free_space() < 16 + SLOT_SIZE);
    }

    #[test]
    fn seal_verify_round_trip_and_corruption_detection() {
        let mut p = Page::new(3);
        p.insert_cell(b"payload").unwrap();
        let bytes = *p.sealed();
        let reread = Page::from_bytes(bytes).unwrap();
        assert_eq!(reread.cell(0).unwrap(), b"payload");
        let mut torn = bytes;
        torn[PAGE_SIZE - 3] ^= 0x40;
        let err = Page::from_bytes(torn).unwrap_err();
        assert_eq!(err.kind, StoreErrorKind::Checksum);
    }
}
