//! Figure 11 spot benchmark: a full annotation pass (reset + annotate)
//! at two coverage levels on each backend.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use xac_bench::{backends, xmark_system};

fn bench_annotation(c: &mut Criterion) {
    let mut group = c.benchmark_group("annotation");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for coverage in [0.25, 0.7] {
        let system = xmark_system(0.005, coverage, 1);
        for mut backend in backends() {
            system.load(backend.as_mut()).expect("load");
            let label = format!("{}/cov{:.0}%", backend.name(), coverage * 100.0);
            group.bench_function(BenchmarkId::from_parameter(label), |bencher| {
                bencher.iter(|| system.full_reannotate(backend.as_mut()).expect("annotate"));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_annotation);
criterion_main!(benches);
