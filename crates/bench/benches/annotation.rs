//! Figure 11 spot benchmark: a full annotation pass (reset + annotate)
//! at two coverage levels on each backend.

use std::time::Duration;
use xac_bench::harness::BenchGroup;
use xac_bench::{backends, xmark_system};

fn main() {
    let mut group = BenchGroup::new("annotation");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for coverage in [0.25, 0.7] {
        let system = xmark_system(0.005, coverage, 1);
        for mut backend in backends() {
            system.load(backend.as_mut()).expect("load");
            let label = format!("{}/cov{:.0}%", backend.name(), coverage * 100.0);
            group.bench(&label, || {
                system.full_reannotate(backend.as_mut()).expect("annotate");
            });
        }
    }
}
