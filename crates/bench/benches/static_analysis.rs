//! Microbenchmarks of the static-analysis machinery: XPath containment,
//! policy optimization, rule expansion and Trigger planning — the
//! `O(n·h)` costs the paper pays per update before touching any store.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use xac_policy::policy::hospital_policy;
use xac_policy::DependencyGraph;
use xac_xmlgen::hospital_schema;

fn bench_static_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("static_analysis");
    group.sample_size(30).measurement_time(Duration::from_secs(2));

    let narrow = xac_xpath::parse("//patient[treatment]/name").unwrap();
    let broad = xac_xpath::parse("//patient/name").unwrap();
    group.bench_function("containment", |b| {
        b.iter(|| xac_xpath::contained_in(std::hint::black_box(&narrow), std::hint::black_box(&broad)))
    });

    let policy = hospital_policy();
    group.bench_function("redundancy_elimination", |b| {
        b.iter(|| xac_policy::redundancy_elimination(std::hint::black_box(&policy)))
    });

    let schema = hospital_schema();
    let r5 = xac_xpath::parse("//patient[.//experimental]").unwrap();
    group.bench_function("rule_expansion", |b| {
        b.iter(|| xac_xpath::expand(std::hint::black_box(&r5), Some(&schema)))
    });

    group.bench_function("dependency_graph", |b| {
        b.iter(|| DependencyGraph::build(std::hint::black_box(&policy)))
    });

    let graph = DependencyGraph::build(&policy);
    let update = xac_xpath::parse("//treatment").unwrap();
    group.bench_function("trigger", |b| {
        b.iter(|| xac_policy::trigger(&policy, &graph, std::hint::black_box(&update), Some(&schema)))
    });

    group.finish();
}

criterion_group!(benches, bench_static_analysis);
criterion_main!(benches);
