//! Microbenchmarks of the static-analysis machinery: XPath containment
//! (cold and memoized), policy optimization, rule expansion and Trigger
//! planning — the `O(n·h)` costs the paper pays per update before
//! touching any store.

use std::time::Duration;
use xac_bench::harness::BenchGroup;
use xac_policy::policy::hospital_policy;
use xac_policy::{DependencyGraph, PolicyAnalysis};
use xac_xmlgen::hospital_schema;
use xac_xpath::ContainmentOracle;

fn main() {
    let mut group = BenchGroup::new("static_analysis");
    group.sample_size(30).measurement_time(Duration::from_secs(2));

    let narrow = xac_xpath::parse("//patient[treatment]/name").unwrap();
    let broad = xac_xpath::parse("//patient/name").unwrap();
    group.bench("containment/cold", || {
        std::hint::black_box(xac_xpath::contained_in(
            std::hint::black_box(&narrow),
            std::hint::black_box(&broad),
        ));
    });

    let oracle = ContainmentOracle::new();
    group.bench("containment/memoized", || {
        std::hint::black_box(oracle.contained_in(
            std::hint::black_box(&narrow),
            std::hint::black_box(&broad),
        ));
    });

    let policy = hospital_policy();
    group.bench("redundancy_elimination", || {
        std::hint::black_box(xac_policy::redundancy_elimination(std::hint::black_box(&policy)));
    });

    let schema = hospital_schema();
    let r5 = xac_xpath::parse("//patient[.//experimental]").unwrap();
    group.bench("rule_expansion", || {
        std::hint::black_box(xac_xpath::expand(std::hint::black_box(&r5), Some(&schema)));
    });

    group.bench("dependency_graph", || {
        std::hint::black_box(DependencyGraph::build(std::hint::black_box(&policy)));
    });

    let graph = DependencyGraph::build(&policy);
    let update = xac_xpath::parse("//treatment").unwrap();
    group.bench("trigger/per_call", || {
        std::hint::black_box(xac_policy::trigger(
            &policy,
            &graph,
            std::hint::black_box(&update),
            Some(&schema),
        ));
    });

    let analysis = PolicyAnalysis::build(&policy, Some(&schema));
    group.bench("trigger/precomputed", || {
        std::hint::black_box(analysis.trigger(std::hint::black_box(&update)));
    });
}
