//! Figure 10 spot benchmark: answering the 55-query workload (average
//! response time per request) on each annotated backend.

use std::time::Duration;
use xac_bench::harness::BenchGroup;
use xac_bench::{backends, xmark_system, WORKLOAD_SIZE};
use xac_xmlgen::{query_workload, xmark_schema};

fn main() {
    let system = xmark_system(0.005, 0.5, 1);
    let queries = query_workload(&xmark_schema(), WORKLOAD_SIZE, 99);
    let mut group = BenchGroup::new("response");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for mut backend in backends() {
        system.load(backend.as_mut()).expect("load");
        system.annotate(backend.as_mut()).expect("annotate");
        group.bench(backend.name(), || {
            for q in &queries {
                let _ = system.request_path(backend.as_mut(), q).expect("request");
            }
        });
    }
}
