//! Figure 12 spot benchmark: Trigger-planned partial re-annotation vs
//! from-scratch full annotation after a delete update (both repairs are
//! idempotent, so each can be iterated on the updated store).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use xac_bench::{backends, xmark_system};

fn bench_reannotation(c: &mut Criterion) {
    let system = xmark_system(0.005, 0.5, 1);
    let update = xac_xpath::parse("//mailbox/mail").unwrap();
    let plan = system.plan_update(&update);

    let mut group = c.benchmark_group("reannotation");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for mut backend in backends() {
        system.load(backend.as_mut()).expect("load");
        system.annotate(backend.as_mut()).expect("annotate");
        backend.delete(&update).expect("delete");

        group.bench_function(
            BenchmarkId::from_parameter(format!("{}/partial", backend.name())),
            |bencher| {
                bencher.iter(|| {
                    xac_core::reannotator::apply(backend.as_mut(), &plan).expect("partial")
                });
            },
        );
        group.bench_function(
            BenchmarkId::from_parameter(format!("{}/full", backend.name())),
            |bencher| {
                bencher.iter(|| system.full_reannotate(backend.as_mut()).expect("full"));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_reannotation);
criterion_main!(benches);
