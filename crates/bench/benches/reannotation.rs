//! Figure 12 spot benchmark: Trigger-planned partial re-annotation vs
//! from-scratch full annotation after a delete update (both repairs are
//! idempotent, so each can be iterated on the updated store).

use std::time::Duration;
use xac_bench::harness::BenchGroup;
use xac_bench::{backends, xmark_system};

fn main() {
    let system = xmark_system(0.005, 0.5, 1);
    let update = xac_xpath::parse("//mailbox/mail").unwrap();
    let plan = system.plan_update(&update);

    let mut group = BenchGroup::new("reannotation");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for mut backend in backends() {
        system.load(backend.as_mut()).expect("load");
        system.annotate(backend.as_mut()).expect("annotate");
        backend.delete(&update).expect("delete");

        group.bench(&format!("{}/partial", backend.name()), || {
            xac_core::reannotator::apply(backend.as_mut(), &plan).expect("partial");
        });
        group.bench(&format!("{}/full", backend.name()), || {
            system.full_reannotate(backend.as_mut()).expect("full");
        });
    }
}
