//! Figure 9 spot benchmark: loading one prepared document into each
//! backend (native parses XML; relational engines execute the shredded
//! INSERT script).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use xac_bench::{backends, xmark_system};

fn bench_loading(c: &mut Criterion) {
    let system = xmark_system(0.005, 0.4, 1);
    let mut group = c.benchmark_group("loading");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for mut backend in backends() {
        group.bench_function(BenchmarkId::from_parameter(backend.name()), |bencher| {
            bencher.iter(|| system.load(backend.as_mut()).expect("load"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_loading);
criterion_main!(benches);
