//! Figure 9 spot benchmark: loading one prepared document into each
//! backend (native parses XML; relational engines execute the shredded
//! INSERT script).

use std::time::Duration;
use xac_bench::harness::BenchGroup;
use xac_bench::{backends, xmark_system};

fn main() {
    let system = xmark_system(0.005, 0.4, 1);
    let mut group = BenchGroup::new("loading");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for mut backend in backends() {
        group.bench(backend.name(), || {
            system.load(backend.as_mut()).expect("load");
        });
    }
}
