//! Regenerate every table and figure of the paper's evaluation (§7).
//!
//! ```text
//! cargo run --release -p xac-bench --bin figures            # all, quick factors
//! cargo run --release -p xac-bench --bin figures -- fig12   # one artifact
//! cargo run --release -p xac-bench --bin figures -- all --full
//! ```
//!
//! Each run prints paper-style tables and writes machine-readable CSV to
//! `target/figures/`.

use std::fmt::Write as _;
use std::time::Duration;
use xac_bench::{
    backend_legend, backends, fmt_bytes, fmt_duration, xmark_system, xmark_system_with_mode,
    TablePrinter, COVERAGE_LEVELS, FULL_FACTORS, QUICK_FACTORS, WORKLOAD_SIZE,
};
use xac_core::{time, Backend};
use xac_policy::policy::hospital_policy;
use xac_xmlgen::{actual_coverage, delete_updates, query_workload, xmark_schema};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let what = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str)
        .unwrap_or("all");
    let factors: &[f64] = if full { FULL_FACTORS } else { QUICK_FACTORS };

    std::fs::create_dir_all(csv_dir()).expect("create target/figures");

    match what {
        "table3" => table3(),
        "table5" => table5(factors),
        "fig9" => fig9(factors),
        "fig10" => fig10(factors),
        "fig11" => fig11(factors),
        "fig12" => {
            let data = fig12(factors);
            summary(&data);
        }
        "summary" => {
            let data = fig12(factors);
            summary(&data);
        }
        "ablations" => ablations(),
        "annotate-modes" => annotate_modes(factors),
        "serve" => serve(factors),
        "fault-recovery" => fault_recovery(factors),
        "obs" => obs(factors),
        "analyze" => analyze_bench(factors),
        "all" => {
            table3();
            table5(factors);
            fig9(factors);
            fig10(factors);
            fig11(factors);
            let data = fig12(factors);
            summary(&data);
            annotate_modes(factors);
            serve(factors);
            fault_recovery(factors);
            obs(factors);
            analyze_bench(factors);
            ablations();
        }
        other => {
            eprintln!(
                "unknown artifact `{other}`; use \
                 table3|table5|fig9|fig10|fig11|fig12|summary|ablations|annotate-modes|serve|\
                 fault-recovery|obs|analyze|all"
            );
            std::process::exit(2);
        }
    }
}

fn csv_dir() -> std::path::PathBuf {
    std::path::Path::new("target").join("figures")
}

fn write_csv(name: &str, content: &str) {
    let path = csv_dir().join(name);
    std::fs::write(&path, content).expect("write csv");
    println!("  [csv -> {}]", path.display());
}

fn banner(title: &str) {
    println!("\n==================================================================");
    println!("{title}");
    println!("==================================================================");
}

// ---------------------------------------------------------------------
// Tables 1 & 3 — policy optimization on the hospital example
// ---------------------------------------------------------------------

fn table3() {
    banner("Tables 1 & 3 — hospital policy and its redundancy-free form");
    let policy = hospital_policy();
    println!("-- Table 1 (input policy) --");
    for r in &policy.rules {
        println!("  {:<4} {:<38} {}", r.id, r.resource.to_string(), r.effect.sign());
    }
    let report = xac_core::optimizer::optimize(&policy);
    println!("-- removed as redundant: {:?} --", report.removed);
    println!("-- Table 3 (redundancy-free policy) --");
    let mut csv = String::from("rule,resource,effect\n");
    for r in &report.optimized.rules {
        println!("  {:<4} {:<38} {}", r.id, r.resource.to_string(), r.effect.sign());
        let _ = writeln!(csv, "{},{},{}", r.id, r.resource, r.effect.sign());
    }
    write_csv("table3.csv", &csv);
}

// ---------------------------------------------------------------------
// Table 5 — generated document sizes (XML vs SQL artifacts)
// ---------------------------------------------------------------------

fn table5(factors: &[f64]) {
    banner("Table 5 — documents generated with the xmlgen substitute");
    let t = TablePrinter::new(vec![10, 10, 12, 12, 12]);
    t.row(&["factor".into(), "elements".into(), "XML".into(), "SQL".into(), "SQL/XML".into()]);
    t.rule();
    let mut csv = String::from("factor,elements,xml_bytes,sql_bytes\n");
    for &f in factors {
        let system = xmark_system(f, 0.4, 1);
        let p = system.prepared();
        t.row(&[
            format!("{f}"),
            p.doc.element_count().to_string(),
            fmt_bytes(p.xml_bytes()),
            fmt_bytes(p.sql_bytes()),
            format!("{:.2}x", p.sql_bytes() as f64 / p.xml_bytes() as f64),
        ]);
        let _ = writeln!(csv, "{f},{},{},{}", p.doc.element_count(), p.xml_bytes(), p.sql_bytes());
    }
    write_csv("table5.csv", &csv);
}

// ---------------------------------------------------------------------
// Figure 9 — loading time comparison
// ---------------------------------------------------------------------

fn fig9(factors: &[f64]) {
    banner("Figure 9 — avg loading time vs document factor");
    let t = TablePrinter::new(vec![10, 18, 20, 18]);
    t.row(&[
        "factor".into(),
        "xquery (native)".into(),
        "monet-like (column)".into(),
        "pg-like (row)".into(),
    ]);
    t.rule();
    let mut csv = String::from("factor,native_s,column_s,row_s\n");
    for &f in factors {
        let system = xmark_system(f, 0.4, 1);
        let mut cells = vec![format!("{f}")];
        let mut secs = Vec::new();
        for mut b in ordered_backends() {
            let (_, d) = time(|| system.load(b.as_mut()).expect("load"));
            cells.push(fmt_duration(d));
            secs.push(d.as_secs_f64());
        }
        t.row(&cells);
        let _ = writeln!(csv, "{f},{},{},{}", secs[0], secs[1], secs[2]);
    }
    write_csv("fig9.csv", &csv);
    println!("(paper shape: native loading is over an order of magnitude faster\n than executing the INSERT script; the row store inserts faster than\n the column store)");
}

/// Backends in the fixed column order used by the figures.
fn ordered_backends() -> Vec<Box<dyn Backend>> {
    backends()
}

// ---------------------------------------------------------------------
// Figure 10 — response time comparison
// ---------------------------------------------------------------------

fn fig10(factors: &[f64]) {
    banner(&format!(
        "Figure 10 — avg response time of {WORKLOAD_SIZE} queries vs document factor"
    ));
    let queries = query_workload(&xmark_schema(), WORKLOAD_SIZE, 99);
    let t = TablePrinter::new(vec![10, 18, 20, 18]);
    t.row(&[
        "factor".into(),
        "xquery (native)".into(),
        "monet-like (column)".into(),
        "pg-like (row)".into(),
    ]);
    t.rule();
    let mut csv = String::from("factor,native_s,column_s,row_s\n");
    for &f in factors {
        let system = xmark_system(f, 0.5, 1);
        let mut cells = vec![format!("{f}")];
        let mut secs = Vec::new();
        for mut b in ordered_backends() {
            system.load(b.as_mut()).expect("load");
            system.annotate(b.as_mut()).expect("annotate");
            let (_, total) = time(|| {
                for q in &queries {
                    let _ = system.request_path(b.as_mut(), q).expect("request");
                }
            });
            let avg = total / queries.len() as u32;
            cells.push(fmt_duration(avg));
            secs.push(avg.as_secs_f64());
        }
        t.row(&cells);
        let _ = writeln!(csv, "{f},{},{},{}", secs[0], secs[1], secs[2]);
    }
    write_csv("fig10.csv", &csv);
    println!("(paper shape: response grows with document size; the native store\n answers far faster than both relational engines)");
}

// ---------------------------------------------------------------------
// Figure 11 — annotation time vs policy coverage, per system
// ---------------------------------------------------------------------

fn fig11(factors: &[f64]) {
    banner("Figure 11 — avg annotation time vs policy coverage");
    for (which, name) in [(0usize, "(a) native/XQuery"), (1, "(b) column/MonetDB-like"), (2, "(c) row/PostgreSQL-like")] {
        println!("\n-- {name} --");
        let mut header = vec!["coverage".to_string()];
        header.extend(factors.iter().map(|f| format!("f{f}")));
        let t = TablePrinter::new(vec![10; factors.len() + 1]);
        t.row(&header);
        t.rule();
        let mut csv = String::from("coverage_target,factor,actual_coverage,annotate_s\n");
        for &coverage in COVERAGE_LEVELS {
            let mut cells = vec![format!("{:.0}%", coverage * 100.0)];
            for &f in factors {
                let system = xmark_system(f, coverage, 1);
                let actual = actual_coverage(&system.prepared().doc, system.policy());
                let mut b = take_backend(which);
                system.load(b.as_mut()).expect("load");
                let (_, d) = time(|| system.annotate(b.as_mut()).expect("annotate"));
                cells.push(fmt_duration(d));
                let _ = writeln!(csv, "{coverage},{f},{actual:.4},{}", d.as_secs_f64());
            }
            t.row(&cells);
        }
        write_csv(&format!("fig11_{}.csv", ["a", "b", "c"][which]), &csv);
    }
    println!("\n(paper shape: annotation cost rises with both coverage and document\n size; the native store wins on large documents)");
}

fn take_backend(which: usize) -> Box<dyn Backend> {
    ordered_backends().into_iter().nth(which).expect("three backends")
}

// ---------------------------------------------------------------------
// Figure 12 — re-annotation vs full annotation, per system
// ---------------------------------------------------------------------

struct Fig12Row {
    backend: &'static str,
    factor: f64,
    reannot: Duration,
    fannot: Duration,
}

fn fig12(factors: &[f64]) -> Vec<Fig12Row> {
    banner("Figure 12 — re-annotation vs full annotation per update");
    let mut all_rows = Vec::new();
    for (which, name) in [(0usize, "(a) native/XQuery"), (1, "(b) column/MonetDB-like"), (2, "(c) row/PostgreSQL-like")] {
        println!("\n-- {name} --");
        let t = TablePrinter::new(vec![10, 14, 14, 10]);
        t.row(&["factor".into(), "reannot".into(), "fannot".into(), "speedup".into()]);
        t.rule();
        let mut csv = String::from("factor,reannot_s,fannot_s\n");
        for &f in factors {
            // Fewer updates at large factors keep the sweep bounded; the
            // averages stabilize quickly.
            let n_updates = if f >= 0.3 { 8 } else { 20 };
            let updates = delete_updates(&xmark_schema(), n_updates, 5);
            let system = xmark_system(f, 0.5, 1);

            // Two instances of the same backend kept in lock-step: one
            // repaired with Trigger plans, one with full re-annotation.
            let mut partial = take_backend(which);
            let mut baseline = take_backend(which);
            for b in [&mut partial, &mut baseline] {
                system.load(b.as_mut()).expect("load");
                system.annotate(b.as_mut()).expect("annotate");
            }

            let mut reannot_total = Duration::ZERO;
            let mut fannot_total = Duration::ZERO;
            for u in &updates {
                partial.delete(u).expect("delete");
                let (_, d) = time(|| {
                    let plan = system.plan_update(u);
                    xac_core::reannotator::apply(partial.as_mut(), &plan).expect("partial");
                });
                reannot_total += d;

                baseline.delete(u).expect("delete");
                let (_, d) = time(|| {
                    system.full_reannotate(baseline.as_mut()).expect("full");
                });
                fannot_total += d;
            }
            let reannot = reannot_total / updates.len() as u32;
            let fannot = fannot_total / updates.len() as u32;
            t.row(&[
                format!("{f}"),
                fmt_duration(reannot),
                fmt_duration(fannot),
                format!(
                    "{:.1}x",
                    fannot.as_secs_f64() / reannot.as_secs_f64().max(1e-12)
                ),
            ]);
            let _ = writeln!(csv, "{f},{},{}", reannot.as_secs_f64(), fannot.as_secs_f64());
            all_rows.push(Fig12Row {
                backend: ["native", "column", "row"][which],
                factor: f,
                reannot,
                fannot,
            });
        }
        write_csv(&format!("fig12_{}.csv", ["a", "b", "c"][which]), &csv);
    }
    all_rows
}

// ---------------------------------------------------------------------
// §7.2 summary — average speedups
// ---------------------------------------------------------------------

fn summary(data: &[Fig12Row]) {
    banner("§7.2 summary — average re-annotation speedup per system");
    for backend in ["native", "column", "row"] {
        let rows: Vec<&Fig12Row> = data.iter().filter(|r| r.backend == backend).collect();
        if rows.is_empty() {
            continue;
        }
        let avg_speedup: f64 = rows
            .iter()
            .map(|r| r.fannot.as_secs_f64() / r.reannot.as_secs_f64().max(1e-12))
            .sum::<f64>()
            / rows.len() as f64;
        let largest = rows
            .iter()
            .max_by(|a, b| a.factor.total_cmp(&b.factor))
            .expect("non-empty");
        println!(
            "  {:<8} avg speedup {:.1}x (at f={}: {} vs {})   [paper: {}]",
            backend,
            avg_speedup,
            largest.factor,
            fmt_duration(largest.reannot),
            fmt_duration(largest.fannot),
            match backend {
                "native" => "~5x on large documents",
                "column" => "~9x on average",
                _ => "~7x on average",
            }
        );
    }
    let _ = backend_legend("native/xml");
}

// ---------------------------------------------------------------------
// Annotation write modes — paper-faithful per-tuple UPDATEs vs batched
// ---------------------------------------------------------------------

/// Benchmark the annotation write path across all three modes:
/// `PaperFaithful` (one parsed `UPDATE … WHERE id = …` statement per
/// tuple, as the paper's Figure 6 scripts do), `Batched` (one indexed
/// bulk write per table) and `Compiled` (the `xac-vmc` bytecode VM —
/// fused scan+filter+sign-write over the columnar document index,
/// skipping per-document XPath interpretation entirely). The native
/// store is reported under interpreted (`none`) and `compiled` rows.
/// Emits `BENCH_annotation_modes.json` so the perf trajectory is
/// tracked across revisions.
fn annotate_modes(factors: &[f64]) {
    use xac_core::{AnnotateMode, NativeXmlBackend, RelationalBackend};
    use xac_reldb::StorageKind;

    banner("Annotation write modes — per-tuple UPDATE vs batched sign writes");
    let t = TablePrinter::new(vec![10, 10, 16, 12, 12, 12, 10]);
    t.row(&[
        "factor".into(),
        "backend".into(),
        "mode".into(),
        "annotate".into(),
        "signwrite".into(),
        "writes".into(),
        "speedup".into(),
    ]);
    t.rule();

    let mut csv =
        String::from("factor,backend,mode,annotate_s,sign_write_s,writes,accessible\n");
    let mut json = String::from("[\n");
    let mut first = true;
    let mut record = |factor: f64,
                      backend: &str,
                      mode: &str,
                      annotate_s: f64,
                      write_s: Option<f64>,
                      writes: usize,
                      accessible: usize| {
        let w = write_s.map_or("".into(), |s| s.to_string());
        let _ = writeln!(csv, "{factor},{backend},{mode},{annotate_s},{w},{writes},{accessible}");
        if !first {
            json.push_str(",\n");
        }
        first = false;
        let w = write_s.map_or("null".into(), |s| s.to_string());
        let _ = write!(
            json,
            "  {{\"factor\": {factor}, \"backend\": \"{backend}\", \"mode\": \"{mode}\", \
             \"annotate_s\": {annotate_s}, \"sign_write_s\": {w}, \
             \"writes\": {writes}, \"accessible\": {accessible}}}"
        );
    };

    // Median-of-N re-writes of the accessible set, isolating the sign
    // write path from (mode-independent) annotation-query evaluation.
    let write_path = |b: &mut RelationalBackend| -> Duration {
        let ids = b.accessible_ids().expect("ids");
        let mut samples: Vec<Duration> = (0..5)
            .map(|_| time(|| b.write_signs(&ids, '+').expect("write")).1)
            .collect();
        samples.sort();
        samples[samples.len() / 2]
    };

    for &f in factors {
        let system = xmark_system(f, 0.5, 1);

        // Native store: interpreted reference row, then the VM row.
        // No SQL layer, so there is no sign-write sub-measurement.
        let mut native = NativeXmlBackend::new();
        system.load(&mut native).expect("load");
        let (writes, d) = time(|| system.annotate(&mut native).expect("annotate"));
        let accessible = native.accessible_count().expect("count");
        t.row(&[
            format!("{f}"),
            "native".into(),
            "—".into(),
            fmt_duration(d),
            String::new(),
            writes.to_string(),
            String::new(),
        ]);
        record(f, "native", "none", d.as_secs_f64(), None, writes, accessible);

        let mut native_vm = NativeXmlBackend::with_mode(AnnotateMode::Compiled);
        system.load(&mut native_vm).expect("load");
        let (vm_writes, vm_d) =
            time(|| system.annotate(&mut native_vm).expect("annotate"));
        let vm_accessible = native_vm.accessible_count().expect("count");
        assert_eq!(writes, vm_writes, "native write counts diverge");
        assert_eq!(accessible, vm_accessible, "native accessible sets diverge");
        t.row(&[
            format!("{f}"),
            "native".into(),
            "compiled".into(),
            fmt_duration(vm_d),
            String::new(),
            vm_writes.to_string(),
            format!("{:.1}x", d.as_secs_f64() / vm_d.as_secs_f64().max(1e-12)),
        ]);
        record(
            f,
            "native",
            "compiled",
            vm_d.as_secs_f64(),
            None,
            vm_writes,
            vm_accessible,
        );

        for (kind, name) in [(StorageKind::Column, "column"), (StorageKind::Row, "row")] {
            let mut per_mode = Vec::new();
            for (mode, label) in [
                (AnnotateMode::PaperFaithful, "paper-faithful"),
                (AnnotateMode::Batched, "batched"),
                (AnnotateMode::Compiled, "compiled"),
            ] {
                let mut b = RelationalBackend::with_mode(kind, mode);
                system.load(&mut b).expect("load");
                let (writes, d) = time(|| system.annotate(&mut b).expect("annotate"));
                let wd = write_path(&mut b);
                let accessible = b.accessible_count().expect("count");
                record(f, name, label, d.as_secs_f64(), Some(wd.as_secs_f64()), writes, accessible);
                per_mode.push((label, d, wd, writes, accessible));
            }
            // All modes must write the same signs — same tuples touched,
            // same accessible set afterwards.
            for m in &per_mode[1..] {
                assert_eq!(per_mode[0].3, m.3, "write counts diverge on {name} ({})", m.0);
                assert_eq!(per_mode[0].4, m.4, "accessible sets diverge on {name} ({})", m.0);
            }
            let paper_wd = per_mode[0].2;
            let batched_d = per_mode[1].1;
            for &(label, d, wd, writes, _) in &per_mode {
                t.row(&[
                    format!("{f}"),
                    name.into(),
                    label.into(),
                    fmt_duration(d),
                    fmt_duration(wd),
                    writes.to_string(),
                    match label {
                        // sign-write path speedup vs per-tuple SQL
                        "batched" => format!(
                            "{:.1}x",
                            paper_wd.as_secs_f64() / wd.as_secs_f64().max(1e-12)
                        ),
                        // end-to-end annotate speedup vs batched
                        "compiled" => format!(
                            "{:.1}x",
                            batched_d.as_secs_f64() / d.as_secs_f64().max(1e-12)
                        ),
                        _ => String::new(),
                    },
                ]);
            }
        }
    }
    json.push_str("\n]\n");
    write_csv("annotate_modes.csv", &csv);
    std::fs::write("BENCH_annotation_modes.json", &json).expect("write json");
    println!("  [json -> BENCH_annotation_modes.json]");
    println!(
        "(the `batched` speedup cell compares the sign-write path alone\n \
         against per-tuple SQL; the `compiled` cell compares END-TO-END\n \
         annotate time against batched — the VM fuses annotation-query\n \
         evaluation and sign writes over the columnar document index, so\n \
         the per-document XPath interpretation that dominates the other\n \
         modes disappears; final database state is identical in all\n \
         modes, as asserted above)"
    );
}

// ---------------------------------------------------------------------
// Ablations — measuring the design choices called out in DESIGN.md
// ---------------------------------------------------------------------

fn ablations() {
    ablation_optimizer();
    ablation_name_index();
    ablation_trigger_schema();
    ablation_prefix_scope();
    ablation_cam();
}

/// Ablation 1: policy optimization. Annotating with Table 1 (8 rules),
/// Table 3 (5 rules, the paper's optimizer) and the §8 schema-aware
/// optimizer (4 rules) — identical semantics, shrinking query cost.
fn ablation_optimizer() {
    banner("Ablation 1 — redundancy elimination (Table 1 vs Table 3 vs §8)");
    use xac_xmlgen::{hospital_document, hospital_schema};
    let doc = hospital_document(4, 400, 7);
    let policy = hospital_policy();
    let blind = xac_core::System::builder(hospital_schema(), policy.clone(), doc.clone()).build()
        .expect("system");
    let aware = xac_core::System::builder(hospital_schema(), policy.clone(), doc).schema_aware(true).build()
        .expect("system");
    let unopt_query = xac_policy::AnnotationQuery::from_policy(&policy);

    let t = TablePrinter::new(vec![22, 8, 14, 12]);
    t.row(&["variant".into(), "rules".into(), "annotate".into(), "writes".into()]);
    t.rule();
    for mut b in backends() {
        // Unoptimized: the raw Table 1 query.
        blind.load(b.as_mut()).expect("load");
        let (w, d) = time(|| b.annotate(&unopt_query).expect("annotate"));
        t.row(&[
            format!("{} raw", b.name()),
            policy.len().to_string(),
            fmt_duration(d),
            w.to_string(),
        ]);
        let acc_raw = b.accessible_count().expect("count");

        // Paper optimizer.
        blind.load(b.as_mut()).expect("load");
        let (w, d) = time(|| blind.annotate(b.as_mut()).expect("annotate"));
        t.row(&[
            format!("{} fig4", b.name()),
            blind.policy().len().to_string(),
            fmt_duration(d),
            w.to_string(),
        ]);
        assert_eq!(b.accessible_count().expect("count"), acc_raw, "semantics preserved");

        // Schema-aware optimizer.
        aware.load(b.as_mut()).expect("load");
        let (w, d) = time(|| aware.annotate(b.as_mut()).expect("annotate"));
        t.row(&[
            format!("{} schema-aware", b.name()),
            aware.policy().len().to_string(),
            fmt_duration(d),
            w.to_string(),
        ]);
        assert_eq!(b.accessible_count().expect("count"), acc_raw, "semantics preserved");
    }
}

/// Ablation 2: the native store's element-name index. Indexed evaluation
/// vs a full-tree sweep for the 55-query workload.
fn ablation_name_index() {
    banner("Ablation 2 — element-name index in the native store");
    let queries = query_workload(&xmark_schema(), WORKLOAD_SIZE, 99);
    let t = TablePrinter::new(vec![10, 14, 14, 10]);
    t.row(&["factor".into(), "indexed".into(), "sweep".into(), "speedup".into()]);
    t.rule();
    for &f in QUICK_FACTORS {
        let system = xmark_system(f, 0.5, 1);
        let sdoc = xac_xmlstore::StoredDocument::new(system.prepared().doc.clone());
        let (_, indexed) = time(|| {
            for q in &queries {
                std::hint::black_box(sdoc.eval(q));
            }
        });
        let (_, sweep) = time(|| {
            for q in &queries {
                std::hint::black_box(xac_xpath::eval(sdoc.doc(), q));
            }
        });
        t.row(&[
            format!("{f}"),
            fmt_duration(indexed / queries.len() as u32),
            fmt_duration(sweep / queries.len() as u32),
            format!("{:.1}x", sweep.as_secs_f64() / indexed.as_secs_f64().max(1e-12)),
        ]);
    }
}

/// Ablation 3: the schema-guided rewrite inside Trigger. Without it,
/// rules testing descendants inside predicates can silently fail to fire.
fn ablation_trigger_schema() {
    banner("Ablation 3 — schema rewrite in Trigger (missed rules without it)");
    // A policy whose predicates test *descendants* — the case §5.3's
    // second example is about.
    let policy = xac_policy::Policy::parse(
        "default deny\nconflict deny-overrides\n\
         P1 allow //person\n\
         P2 deny //person[.//watch]\n\
         P3 allow //item\n\
         P4 deny //item[.//text]\n\
         P5 allow //open_auction\n\
         P6 deny //open_auction[.//increase]\n",
    )
    .expect("policy parses");
    let schema = xmark_schema();
    let graph = xac_policy::DependencyGraph::build(&policy);
    let updates = delete_updates(&schema, WORKLOAD_SIZE, 5);
    let mut with_total = 0usize;
    let mut without_total = 0usize;
    let mut missed_updates = 0usize;
    for u in &updates {
        let with = xac_policy::trigger(&policy, &graph, u, Some(&schema)).len();
        let without = xac_policy::trigger(&policy, &graph, u, None).len();
        with_total += with;
        without_total += without;
        if without < with {
            missed_updates += 1;
        }
    }
    println!(
        "  {} updates: triggered rule instances with schema = {}, without = {}",
        updates.len(),
        with_total,
        without_total
    );
    println!(
        "  updates where the schema-less Trigger misses rules: {missed_updates}/{}",
        updates.len()
    );
    // The hospital §5.3 example, explicitly:
    let hsys = xac_core::System::builder(
        xac_xmlgen::hospital_schema(),
        hospital_policy(),
        xac_xmlgen::figure2_document(),
    ).build()
    .expect("system");
    let hgraph = xac_policy::DependencyGraph::build(hsys.policy());
    let u = xac_xpath::parse("//treatment").expect("parse");
    let r5 = hsys.policy().rule("R5").expect("R5").resource.clone();
    let hit = |schema: Option<&xac_xml::Schema>| {
        xac_xpath::expand(&r5, schema)
            .iter()
            .any(|x| xac_xpath::contained_in(x, &u) || xac_xpath::contained_in(&u, x))
    };
    let _ = &hgraph;
    println!(
        "  hospital §5.3 check: R5 fires directly with schema = {}, without = {}",
        hit(Some(hsys.schema())),
        hit(None)
    );
}

/// Ablation 4: resetting raw rule resources (the paper's literal reading)
/// vs the predicate-free expansion scopes used here. The raw-resource
/// variant leaves stale signs whenever an update removes the node that a
/// predicate tested.
fn ablation_prefix_scope() {
    banner("Ablation 4 — re-annotation reset scope (raw resources vs expansions)");
    // Positive rules *with predicates* are the fragile case: when the
    // update deletes the predicate's witness, the rule's scope no longer
    // reaches the node carrying the stale `+`.
    let policy = xac_policy::Policy::parse(
        "default deny\nconflict deny-overrides\n\
         P1 allow //person[address]\n\
         P2 allow //item[mailbox]\n\
         P3 allow //open_auction[bidder]\n\
         P4 allow //category\n\
         P5 deny //category[description]\n",
    )
    .expect("policy parses");
    let doc = xac_xmlgen::xmark_document(xac_xmlgen::XmarkConfig::with_factor(0.01));
    let system =
        xac_core::System::builder(xmark_schema(), policy, doc).build().expect("system assembles");
    let updates = delete_updates(&xmark_schema(), 30, 9);
    let mut backend = xac_core::NativeXmlBackend::new();
    let mut stale_raw = 0usize;
    let mut stale_expanded = 0usize;
    for u in &updates {
        let full = {
            system.load(&mut backend).expect("load");
            system.annotate(&mut backend).expect("annotate");
            backend.delete(u).expect("delete");
            system.full_reannotate(&mut backend).expect("full");
            backend.accessible_count().expect("count")
        };

        // Expansion scopes (this repo's implementation).
        system.load(&mut backend).expect("load");
        system.annotate(&mut backend).expect("annotate");
        system.apply_update(&mut backend, u).expect("update");
        if backend.accessible_count().expect("count") != full {
            stale_expanded += 1;
        }

        // Raw-resource scopes (paper-literal variant, reconstructed).
        system.load(&mut backend).expect("load");
        system.annotate(&mut backend).expect("annotate");
        let mut plan = system.plan_update(u);
        plan.scope = plan.triggered.iter().map(|r| r.resource.clone()).collect();
        backend.delete(u).expect("delete");
        xac_core::reannotator::apply(&mut backend, &plan).expect("partial");
        if backend.accessible_count().expect("count") != full {
            stale_raw += 1;
        }
    }
    println!(
        "  {} updates: inconsistent documents with raw-resource scopes = {}, \
         with expansion scopes = {}",
        updates.len(),
        stale_raw,
        stale_expanded
    );
    assert_eq!(stale_expanded, 0, "expansion scopes must always converge");
}

/// Ablation 5: materialized signs vs a compressed accessibility map
/// (related work \[26\]). Type-scattered coverage policies favour explicit
/// signs; region-shaped policies favour the CAM.
fn ablation_cam() {
    banner("Ablation 5 — sign annotations vs compressed accessibility map");
    let doc = xac_xmlgen::xmark_document(xac_xmlgen::XmarkConfig::with_factor(0.02));
    let t = TablePrinter::new(vec![26, 12, 12, 12]);
    t.row(&["policy".into(), "accessible".into(), "signs".into(), "CAM".into()]);
    t.rule();

    let measure = |label: &str, policy: xac_policy::Policy| {
        let system = xac_core::System::builder(xmark_schema(), policy, doc.clone()).build()
            .expect("system assembles");
        let mut b = xac_core::NativeXmlBackend::new();
        system.load(&mut b).expect("load");
        let signs = system.annotate(&mut b).expect("annotate");
        let sdoc = b.stored().expect("loaded");
        let cam = sdoc.to_cam(false);
        let accessible = cam.to_accessible_set(sdoc.doc()).len();
        t.row(&[
            label.to_string(),
            accessible.to_string(),
            signs.to_string(),
            cam.len().to_string(),
        ]);
    };

    // Type-scattered: the §7.1 coverage dataset (accessible nodes spread
    // across element types; boundaries everywhere).
    measure(
        "coverage 50% (scattered)",
        xac_xmlgen::coverage_policy(&doc, 0.5, 1),
    );
    // Region-shaped: whole subtrees granted (CAM's best case).
    measure(
        "subtree grants (regions)",
        xac_policy::Policy::parse(
            "default deny\nconflict deny-overrides\n\
             S1 allow //person\nS2 allow //person/*\nS3 allow //address/*\n\
             S4 allow //profile/*\nS5 allow //watches/*\nS6 allow //category\n\
             S7 allow //category/*\n",
        )
        .expect("policy parses"),
    );
    println!("(signs = the paper's materialized annotation writes; CAM = boundary\n entries of the compressed map — smaller only when accessibility is\n region-shaped)");
}

/// Serving-engine throughput: concurrent readers over epoch snapshots
/// while a writer applies guarded deletes, per backend × annotate mode
/// (the deployment shape the paper's evaluation implies). The compiled
/// mode additionally reports a single-threaded decide-path micro-sweep —
/// per-request latency of the interpreted snapshot walk vs the bytecode
/// VM (`query_compiled`) over the same published snapshot. Emits
/// `BENCH_serve.json` so the serving perf trajectory is tracked across
/// revisions.
fn serve(factors: &[f64]) {
    use std::sync::Arc;
    use xac_core::AnnotateMode;
    use xac_serve::{BackendKind, ServeEngine};

    banner("Serving engine — concurrent epoch-snapshot reads under guarded updates");
    const READERS: usize = 4;
    const READS_PER_READER: usize = 400;
    const UPDATES: usize = 12;
    const MICRO_REPS: usize = 3;

    let t = TablePrinter::new(vec![8, 12, 9, 10, 12, 10, 10, 9, 9, 8, 9, 9]);
    t.row(&[
        "factor".into(),
        "backend".into(),
        "mode".into(),
        "reads/s".into(),
        "mean µs".into(),
        "p50 µs".into(),
        "p99 µs".into(),
        "applied".into(),
        "denied".into(),
        "epochs".into(),
        "dec-i µs".into(),
        "dec-vm µs".into(),
    ]);
    t.rule();

    let queries = query_workload(&xmark_schema(), WORKLOAD_SIZE, 99);
    let updates = delete_updates(&xmark_schema(), UPDATES, 5);
    let mut csv = String::from(
        "factor,backend,mode,readers,reads,reads_per_s,read_mean_us,read_p50_us,read_p99_us,\
         updates_applied,updates_denied,epochs_published,full_fallbacks,\
         decide_interp_us,decide_compiled_us\n",
    );
    let mut json = String::from("[\n");
    let mut first = true;

    for &f in factors {
        for (mode, mode_label) in [
            (AnnotateMode::Batched, "batched"),
            (AnnotateMode::Compiled, "compiled"),
        ] {
            let system = Arc::new(xmark_system_with_mode(f, 0.5, 1, mode));
            for kind in BackendKind::ALL {
                let engine =
                    Arc::new(ServeEngine::for_kind(Arc::clone(&system), kind).expect("engine"));
                let (_, wall) = time(|| {
                    std::thread::scope(|scope| {
                        for reader in 0..READERS {
                            let engine = Arc::clone(&engine);
                            let queries = &queries;
                            scope.spawn(move || {
                                for i in 0..READS_PER_READER {
                                    engine.query(&queries[(i + reader) % queries.len()]);
                                }
                            });
                        }
                        for u in &updates {
                            engine.guarded_delete(u).expect("guarded delete");
                        }
                    });
                });
                // Decide-path micro-sweep (compiled-mode rows only): both
                // entry points run against the same published snapshot, so
                // the delta is pure dispatch — interpreted document walk
                // vs bytecode VM over the cached columnar index.
                let micro = (mode == AnnotateMode::Compiled).then(|| {
                    let snap = engine.snapshot();
                    let measure = |compiled: bool| -> f64 {
                        let (_, d) = time(|| {
                            for _ in 0..MICRO_REPS {
                                for q in &queries {
                                    if compiled {
                                        std::hint::black_box(snap.query_compiled(q));
                                    } else {
                                        std::hint::black_box(snap.query(q));
                                    }
                                }
                            }
                        });
                        d.as_secs_f64() * 1e6 / (MICRO_REPS * queries.len()) as f64
                    };
                    (measure(false), measure(true))
                });
                let m = engine.metrics();
                let reads_per_s = m.reads_issued() as f64 / wall.as_secs_f64().max(1e-9);
                let name = engine.backend_name();
                t.row(&[
                    format!("{f}"),
                    name.into(),
                    mode_label.into(),
                    format!("{reads_per_s:.0}"),
                    format!("{:.1}", m.read_latency.mean_us()),
                    m.read_latency.quantile_us(0.5).to_string(),
                    m.read_latency.quantile_us(0.99).to_string(),
                    m.updates_applied.to_string(),
                    m.updates_denied.to_string(),
                    m.epochs_published.to_string(),
                    micro.map_or(String::new(), |(i, _)| format!("{i:.1}")),
                    micro.map_or(String::new(), |(_, c)| format!("{c:.1}")),
                ]);
                let (mi_csv, mc_csv) = micro.map_or((String::new(), String::new()), |(i, c)| {
                    (i.to_string(), c.to_string())
                });
                let _ = writeln!(
                    csv,
                    "{f},{name},{mode_label},{READERS},{},{reads_per_s},{},{},{},{},{},{},{},\
                     {mi_csv},{mc_csv}",
                    m.reads_issued(),
                    m.read_latency.mean_us(),
                    m.read_latency.quantile_us(0.5),
                    m.read_latency.quantile_us(0.99),
                    m.updates_applied,
                    m.updates_denied,
                    m.epochs_published,
                    m.full_fallbacks,
                );
                if !first {
                    json.push_str(",\n");
                }
                first = false;
                let (mi_json, mc_json) =
                    micro.map_or(("null".into(), "null".into()), |(i, c)| {
                        (i.to_string(), c.to_string())
                    });
                let _ = write!(
                    json,
                    "  {{\"factor\": {f}, \"backend\": \"{name}\", \"mode\": \"{mode_label}\", \
                     \"readers\": {READERS}, \
                     \"reads\": {}, \"reads_per_s\": {reads_per_s}, \
                     \"read_mean_us\": {}, \"read_p50_us\": {}, \"read_p99_us\": {}, \
                     \"updates_applied\": {}, \"updates_denied\": {}, \
                     \"epochs_published\": {}, \"full_fallbacks\": {}, \
                     \"decide_interp_us\": {mi_json}, \"decide_compiled_us\": {mc_json}}}",
                    m.reads_issued(),
                    m.read_latency.mean_us(),
                    m.read_latency.quantile_us(0.5),
                    m.read_latency.quantile_us(0.99),
                    m.updates_applied,
                    m.updates_denied,
                    m.epochs_published,
                    m.full_fallbacks,
                );
            }
        }
    }
    json.push_str("\n]\n");
    write_csv("serve.csv", &csv);
    std::fs::write("BENCH_serve.json", &json).expect("write json");
    println!("  [json -> BENCH_serve.json]");
    println!(
        "(reads run lock-free against the published epoch snapshot while the\n \
         writer re-annotates; applied+denied reflects which of the {UPDATES} guarded\n \
         deletes the access check allowed; epochs = snapshots published;\n \
         dec-i/dec-vm = single-threaded per-request decide latency of the\n \
         interpreted snapshot walk vs the bytecode VM on the same snapshot —\n \
         paths outside the compilable fragment fall back to the interpreter,\n \
         so dec-vm bounds above the true VM-only latency)"
    );
}

/// Fault-recovery cost: checkpoint capture/restore vs document size, and
/// the latency of each degradation-ladder rung (full re-annotation
/// fallback, checkpoint rollback, quarantine entry) measured by arming
/// the corresponding injection plan against the serving engine. Emits
/// `BENCH_fault_recovery.json` so recovery perf is tracked across
/// revisions.
fn fault_recovery(factors: &[f64]) {
    use std::sync::Arc;
    use xac_core::FaultPlan;
    use xac_serve::{BackendKind, ServeEngine};

    banner("Fault recovery — checkpoint cost and degradation-ladder latency");
    const UPDATES: usize = 12;
    // Each rung of the ladder, provoked by the plan that defeats every
    // rung below it. `+1` skips spare the construction-time arrival.
    // Threshold 0 on `mid_reannotate` fires on the first mid-phase
    // arrival even when the triggered scope writes no signs — small
    // documents often apply updates whose re-annotation is that cheap.
    const RUNGS: [(&str, &str); 3] = [
        ("recover_full_fallback", "mid_reannotate:error"),
        ("recover_rollback", "mid_reannotate:error,before_annotate:error+1"),
        ("recover_quarantine", "after_delete:error,before_restore:error"),
    ];

    let t = TablePrinter::new(vec![8, 12, 10, 24, 14]);
    t.row(&[
        "factor".into(),
        "backend".into(),
        "elements".into(),
        "metric".into(),
        "latency".into(),
    ]);
    t.rule();

    let updates = delete_updates(&xmark_schema(), UPDATES, 5);
    let mut csv = String::from("factor,backend,elements,metric,seconds\n");
    let mut json = String::from("[\n");
    let mut first = true;
    let mut record = |factor: f64,
                      backend: &str,
                      elements: usize,
                      metric: &'static str,
                      d: Option<Duration>,
                      csv: &mut String,
                      json: &mut String| {
        let secs = d.map(|d| d.as_secs_f64());
        let cell = d.map_or("—".to_string(), fmt_duration);
        t.row(&[
            format!("{factor}"),
            backend.into(),
            elements.to_string(),
            metric.into(),
            cell,
        ]);
        let s = secs.map_or(String::new(), |s| s.to_string());
        let _ = writeln!(csv, "{factor},{backend},{elements},{metric},{s}");
        if !first {
            json.push_str(",\n");
        }
        first = false;
        let s = secs.map_or("null".into(), |s| s.to_string());
        let _ = write!(
            json,
            "  {{\"factor\": {factor}, \"backend\": \"{backend}\", \
             \"elements\": {elements}, \"metric\": \"{metric}\", \"seconds\": {s}}}"
        );
    };

    for &f in factors {
        let system = Arc::new(xmark_system(f, 0.5, 1));
        let elements = system.prepared().doc.element_count();
        for kind in BackendKind::ALL {
            let name = kind.cli_name();

            // Checkpoint capture and restore on a loaded, annotated
            // backend: the fixed costs rung 3 pays per rollback.
            let mut b = kind.make(system.annotate_mode());
            system.load(b.as_mut()).expect("load");
            system.annotate(b.as_mut()).expect("annotate");
            let (cp, cp_d) = time(|| b.checkpoint().expect("checkpoint"));
            let (_, rs_d) = time(|| b.restore(&cp).expect("restore"));
            record(f, name, elements, "checkpoint", Some(cp_d), &mut csv, &mut json);
            record(f, name, elements, "restore", Some(rs_d), &mut csv, &mut json);

            // The durable engine's counterpart: committing one guarded
            // update through the WAL (op record + sign diff + fsync +
            // dirty-page writeback) replaces the clone checkpoint
            // entirely. O(diff) work, not O(document) — flat where the
            // clone rows above grow with the element count.
            let ddir = std::env::temp_dir()
                .join(format!("xac_bench_wal_{}_{f}_{name}", std::process::id()));
            let _ = std::fs::remove_dir_all(&ddir);
            std::fs::create_dir_all(&ddir).expect("bench data dir");
            let mut dur = xac_serve::Durability::fresh(
                &xac_serve::DurabilityConfig::new(&ddir),
                FaultPlan::new(),
                b.name(),
                system.annotate_mode().name(),
                &b.sign_state().expect("signs"),
                b.epoch(),
            )
            .expect("durability");
            let mut committed = None;
            for u in &updates {
                let g = system.guarded_delete(b.as_mut(), u).expect("guarded delete");
                if !g.applied() {
                    continue;
                }
                let op = xac_serve::LoggedOp::Delete { path: u.to_string() };
                let signs = b.sign_state().expect("signs");
                let epoch = b.epoch();
                let (_, d) = time(|| dur.log_txn(&op, &signs, epoch).expect("log txn"));
                committed = Some(d);
                break;
            }
            assert!(committed.is_some(), "{name}: no update applied for the wal row");
            record(f, name, elements, "checkpoint_wal", committed, &mut csv, &mut json);
            drop(dur);
            let _ = std::fs::remove_dir_all(&ddir);

            // Ladder rung latency: the wall time of the guarded update
            // during which the armed fault fires (recovery included).
            for (metric, plan) in RUNGS {
                let engine = ServeEngine::for_kind_with_faults(
                    Arc::clone(&system),
                    kind,
                    FaultPlan::parse(plan).expect("plan"),
                )
                .expect("engine");
                let mut recovery = None;
                for u in &updates {
                    let before = engine.metrics().faults_injected;
                    let (result, d) = time(|| engine.guarded_delete(u));
                    let fired = engine.metrics().faults_injected > before;
                    if result.is_err() && !engine.quarantined() {
                        // One-shot plan: the rolled-back op must succeed
                        // on retry.
                        engine.guarded_delete(u).expect("retry after rollback");
                    }
                    if fired {
                        recovery = Some(d);
                        break;
                    }
                }
                let m = engine.metrics();
                match metric {
                    "recover_full_fallback" => assert!(m.full_fallbacks >= 1, "{name}"),
                    "recover_rollback" => assert!(m.rollbacks >= 1, "{name}"),
                    _ => assert_eq!(m.quarantines, 1, "{name}"),
                }
                record(f, name, elements, metric, recovery, &mut csv, &mut json);
            }
        }
    }
    json.push_str("\n]\n");
    write_csv("fault_recovery.csv", &csv);
    std::fs::write("BENCH_fault_recovery.json", &json).expect("write json");
    println!("  [json -> BENCH_fault_recovery.json]");
    println!(
        "(checkpoint/restore = the fixed per-rollback costs of the clone\n \
         image, growing with document size; checkpoint_wal = the durable\n \
         engine's per-update commit — O(sign diff), flat across sizes;\n \
         recover_* rows time the guarded update on which the armed fault\n \
         fired — the full-fallback rung re-annotates in place, the\n \
         rollback rung additionally restores the checkpoint and\n \
         re-publishes, the quarantine rung is the terminal read-only fall\n \
         back when the restore itself fails)"
    );
}

// ---------------------------------------------------------------------
// Observability — per-phase span breakdown, oracle hit rate, overhead
// ---------------------------------------------------------------------

/// Per-phase time breakdown of Trigger-based re-annotation vs full
/// re-annotation (captured through `xac-obs` spans) plus the containment
/// oracle's hit rate, swept across document sizes. Also micro-benchmarks
/// a disabled span so the "tracing off is free" budget (< 2% of an
/// annotation pass) is enforced by the artifact itself. Emits
/// `BENCH_obs.json`.
fn obs(factors: &[f64]) {
    banner("Observability — per-phase spans, oracle hit rate, tracing overhead");
    const N_UPDATES: usize = 12;

    fn push_row(json: &mut String, first: &mut bool, row: &str) {
        if !*first {
            json.push_str(",\n");
        }
        *first = false;
        json.push_str("  ");
        json.push_str(row);
    }

    let t = TablePrinter::new(vec![8, 12, 22, 8, 12]);
    t.row(&[
        "factor".into(),
        "mode".into(),
        "span".into(),
        "count".into(),
        "total".into(),
    ]);
    t.rule();

    let mut json = String::from("[\n");
    let mut first = true;
    let mut csv = String::from("factor,mode,span,count,total_s\n");
    let mut last_system = None;

    for &f in factors {
        let system = xmark_system(f, 0.5, 1);
        let updates = delete_updates(&xmark_schema(), N_UPDATES, 5);

        // Trigger-based repair pass, traced span-by-span.
        let mut partial = take_backend(0);
        system.load(partial.as_mut()).expect("load");
        system.annotate(partial.as_mut()).expect("annotate");
        xac_obs::trace::reset();
        xac_obs::trace::set_enabled(true);
        for u in &updates {
            partial.delete(u).expect("delete");
            let plan = system.plan_update(u);
            xac_core::reannotator::apply(partial.as_mut(), &plan).expect("partial");
        }
        xac_obs::trace::set_enabled(false);
        let reannot_stats = xac_obs::span_stats();

        // Full re-annotation on a lock-step copy of the same backend.
        let mut baseline = take_backend(0);
        system.load(baseline.as_mut()).expect("load");
        system.annotate(baseline.as_mut()).expect("annotate");
        xac_obs::trace::reset();
        xac_obs::trace::set_enabled(true);
        for u in &updates {
            baseline.delete(u).expect("delete");
            system.full_reannotate(baseline.as_mut()).expect("full");
        }
        xac_obs::trace::set_enabled(false);
        let full_stats = xac_obs::span_stats();

        for (mode, stats) in [("reannotate", &reannot_stats), ("full", &full_stats)] {
            for s in stats {
                let total_s = s.total_ns as f64 / 1e9;
                t.row(&[
                    format!("{f}"),
                    mode.into(),
                    s.name.to_string(),
                    s.count.to_string(),
                    fmt_duration(Duration::from_nanos(s.total_ns)),
                ]);
                let _ = writeln!(csv, "{f},{mode},{},{},{total_s}", s.name, s.count);
                push_row(
                    &mut json,
                    &mut first,
                    &format!(
                        "{{\"kind\": \"span\", \"factor\": {f}, \"mode\": \"{mode}\", \
                         \"span\": \"{}\", \"count\": {}, \"total_s\": {total_s}}}",
                        s.name, s.count
                    ),
                );
            }
        }

        // Oracle traffic accumulated by this system's static analysis.
        let o = system.analysis().oracle_stats();
        push_row(
            &mut json,
            &mut first,
            &format!(
                "{{\"kind\": \"oracle\", \"factor\": {f}, \"hits\": {}, \"misses\": {}, \
                 \"evictions\": {}, \"hit_rate\": {:.4}}}",
                o.hits,
                o.misses,
                o.evictions,
                o.hit_rate()
            ),
        );
        println!(
            "  factor {f}: oracle {} hits / {} misses (hit rate {:.1}%)",
            o.hits,
            o.misses,
            100.0 * o.hit_rate()
        );

        last_system = Some((system, baseline, updates));
    }

    // Tracing-off overhead: cost of a disarmed span vs an annotation pass.
    let (system, mut backend, updates) = last_system.expect("at least one factor");
    assert!(!xac_obs::trace::enabled());
    const PROBES: u64 = 2_000_000;
    let (_, probe_wall) = time(|| {
        for _ in 0..PROBES {
            let g = xac_obs::span("obs.overhead.probe");
            std::hint::black_box(&g);
        }
    });
    let per_span_ns = probe_wall.as_nanos() as f64 / PROBES as f64;

    // How many spans one traced repair pass emits, and how long the same
    // pass takes untraced (median of 5).
    xac_obs::trace::reset();
    xac_obs::trace::set_enabled(true);
    for u in &updates {
        let plan = system.plan_update(u);
        xac_core::reannotator::apply(backend.as_mut(), &plan).expect("traced pass");
    }
    xac_obs::trace::set_enabled(false);
    let spans_per_pass: u64 = xac_obs::span_stats().iter().map(|s| s.count).sum();
    let mut samples = Vec::new();
    for _ in 0..5 {
        let (_, d) = time(|| {
            for u in &updates {
                let plan = system.plan_update(u);
                xac_core::reannotator::apply(backend.as_mut(), &plan).expect("untraced pass");
            }
        });
        samples.push(d);
    }
    samples.sort();
    let pass = samples[samples.len() / 2];
    let overhead = spans_per_pass as f64 * per_span_ns / 1e9 / pass.as_secs_f64().max(1e-9);
    println!(
        "  disabled span: {per_span_ns:.1} ns; {spans_per_pass} spans per repair pass \
         of {}; tracing-off overhead {:.4}%",
        fmt_duration(pass),
        100.0 * overhead
    );
    assert!(
        overhead < 0.02,
        "tracing-off overhead {:.4} exceeds the 2% budget",
        overhead
    );
    push_row(
        &mut json,
        &mut first,
        &format!(
            "{{\"kind\": \"overhead\", \"per_span_ns\": {per_span_ns:.2}, \
             \"spans_per_pass\": {spans_per_pass}, \"pass_s\": {}, \
             \"overhead_frac\": {overhead:.6}}}",
            pass.as_secs_f64()
        ),
    );

    // -----------------------------------------------------------------
    // Wire propagation overhead: the same loopback request stream with
    // trace contexts on (a fresh 128-bit context minted and carried as
    // the v2 frame's 24-byte trailer on every request) vs off (bare
    // v1-shaped frames). Rounds interleave the two arms so clock drift
    // and cache warmth hit both equally; the medians must stay within a
    // 3% budget — end-to-end tracing is meant to be always-on.
    {
        use std::sync::Arc;
        use xac_net::{NetClient, NetServer, ServerConfig};
        use xac_serve::{BackendKind, Request, Role, ServeEngine};

        const ROUNDS: usize = 11;
        const REQS_PER_ROUND: usize = 400;
        const BUDGET_FRAC: f64 = 0.03;
        const ATTEMPTS: usize = 3;

        let system = Arc::new(
            xac_core::System::builder(
                xac_xmlgen::hospital_schema(),
                hospital_policy(),
                xac_xmlgen::figure2_document(),
            )
            .build()
            .expect("hospital system"),
        );
        let engine =
            Arc::new(ServeEngine::for_kind(system, BackendKind::Native).expect("engine"));
        let server = NetServer::start(engine, ServerConfig::default()).expect("server");
        let mut client =
            NetClient::connect(server.local_addr(), Role::Reader).expect("client");
        let req = Request::query("//patient/name");

        // Each request is timed individually and the round is summarized
        // by its *median*: loopback request times sit in a tight mode
        // with occasional scheduler spikes orders of magnitude above it,
        // and a mean would smear those spikes into the sub-percent
        // signal under measurement. The per-request `Instant` pair costs
        // both arms identically.
        let run_arm = |client: &mut NetClient, propagate: bool| {
            client.set_propagation(propagate);
            let mut us: Vec<f64> = (0..REQS_PER_ROUND)
                .map(|_| {
                    let (_, wall) = time(|| {
                        client.request(&req).expect("loopback request");
                    });
                    wall.as_secs_f64() * 1e6
                })
                .collect();
            us.sort_by(|a, b| a.total_cmp(b));
            us[us.len() / 2]
        };

        // Warmup both arms, then interleave the measured rounds.
        run_arm(&mut client, false);
        run_arm(&mut client, true);
        let measure = |client: &mut NetClient| {
            let mut off_us = Vec::with_capacity(ROUNDS);
            let mut on_us = Vec::with_capacity(ROUNDS);
            for round in 0..ROUNDS {
                // Alternate which arm goes first inside a round.
                if round % 2 == 0 {
                    off_us.push(run_arm(client, false));
                    on_us.push(run_arm(client, true));
                } else {
                    on_us.push(run_arm(client, true));
                    off_us.push(run_arm(client, false));
                }
            }
            // The two arms of a round run back-to-back, so scheduler
            // and cache drift hit both near-equally; the *paired*
            // per-round delta cancels that common mode, and its median
            // is robust to the occasional preempted round. The baseline
            // is the fastest off-round — the intrinsic cost floor the
            // 24-byte trailer is measured against.
            let mut deltas: Vec<f64> =
                on_us.iter().zip(&off_us).map(|(on, off)| on - off).collect();
            deltas.sort_by(|a, b| a.total_cmp(b));
            let delta_med = deltas[deltas.len() / 2];
            let off_med = off_us.iter().copied().fold(f64::INFINITY, f64::min);
            (off_med, off_med + delta_med, delta_med / off_med)
        };
        // Interference (a neighbouring build, a noisy co-tenant) can
        // only *inflate* the measured delta, never shrink the true
        // cost, so across a few attempts the minimum overhead is the
        // best estimator. Stop early once an attempt lands comfortably
        // inside the budget.
        let (mut off_med, mut on_med, mut prop_overhead) = measure(&mut client);
        for _ in 1..ATTEMPTS {
            if prop_overhead < BUDGET_FRAC / 2.0 {
                break;
            }
            let (off2, on2, over2) = measure(&mut client);
            if over2 < prop_overhead {
                (off_med, on_med, prop_overhead) = (off2, on2, over2);
            }
        }
        println!(
            "  wire propagation: off {off_med:.1} µs/req, on {on_med:.1} µs/req \
             (overhead {:+.2}%)",
            100.0 * prop_overhead
        );
        assert!(
            prop_overhead < BUDGET_FRAC,
            "trace propagation overhead {:.4} exceeds the {:.0}% budget \
             (off {off_med:.1} µs, on {on_med:.1} µs)",
            prop_overhead,
            100.0 * BUDGET_FRAC
        );
        for (mode, med) in [("off", off_med), ("on", on_med)] {
            push_row(
                &mut json,
                &mut first,
                &format!(
                    "{{\"kind\": \"wire_propagation\", \"mode\": \"{mode}\", \
                     \"rounds\": {ROUNDS}, \"requests_per_round\": {REQS_PER_ROUND}, \
                     \"median_us_per_req\": {med:.3}}}"
                ),
            );
        }
        push_row(
            &mut json,
            &mut first,
            &format!(
                "{{\"kind\": \"wire_propagation_overhead\", \
                 \"overhead_frac\": {prop_overhead:.6}, \"budget_frac\": {BUDGET_FRAC}}}"
            ),
        );

        // Per-phase wire breakdown: trace a short propagated burst and
        // report where a request's wall time goes on each side of the
        // socket (client send, server decode, admission wait, engine
        // read).
        client.set_propagation(true);
        xac_obs::trace::reset();
        xac_obs::trace::set_enabled(true);
        for _ in 0..50 {
            client.request(&req).expect("traced request");
        }
        xac_obs::trace::set_enabled(false);
        const WIRE_SPANS: [&str; 4] =
            ["net.client_send", "net.server_decode", "net.queue_wait", "serve.read"];
        for s in xac_obs::span_stats() {
            if !WIRE_SPANS.contains(&s.name) {
                continue;
            }
            let total_s = s.total_ns as f64 / 1e9;
            println!(
                "  wire phase {:<18} count {:>4} total {}",
                s.name,
                s.count,
                fmt_duration(Duration::from_nanos(s.total_ns))
            );
            push_row(
                &mut json,
                &mut first,
                &format!(
                    "{{\"kind\": \"wire_phase\", \"span\": \"{}\", \"count\": {}, \
                     \"total_s\": {total_s}}}",
                    s.name, s.count
                ),
            );
        }
        xac_obs::trace::reset();
        client.close();
        server.shutdown();
    }

    json.push_str("\n]\n");
    write_csv("obs.csv", &csv);
    std::fs::write("BENCH_obs.json", &json).expect("write json");
    println!("  [json -> BENCH_obs.json]");
    println!(
        "(spans captured by xac-obs while repairing N deletes with Trigger\n \
         plans vs re-annotating from scratch; the oracle row is the\n \
         containment cache traffic from compiling this system's policy;\n \
         the overhead row certifies disabled tracing costs < 2% of a pass)"
    );
}

// ---------------------------------------------------------------------
// Static policy verification — analysis time vs policy size, D5 precision
// ---------------------------------------------------------------------

/// Scaling profile of the `xac-analyze` verifier. Sweeps generated
/// coverage policies of growing rule count over the XMark schema and
/// times a full schema-aware D1–D5 pass (static audit included), then
/// runs the dynamic trigger-soundness audit on the hospital instance to
/// report the trigger's over-approximation factor
/// (precision = |selected| / |affected|, 1.0 = exact). Emits
/// `BENCH_analyze.json`.
fn analyze_bench(factors: &[f64]) {
    banner("Static policy verification — analysis time vs policy size, D5 precision");

    fn push_row(json: &mut String, first: &mut bool, row: &str) {
        if !*first {
            json.push_str(",\n");
        }
        *first = false;
        json.push_str("  ");
        json.push_str(row);
    }

    let t = TablePrinter::new(vec![8, 8, 10, 8, 8, 8, 12]);
    t.row(&[
        "factor".into(),
        "target".into(),
        "rules".into(),
        "errors".into(),
        "warns".into(),
        "infos".into(),
        "analysis".into(),
    ]);
    t.rule();

    let mut json = String::from("[\n");
    let mut first = true;
    let mut csv = String::from("factor,target,rules,errors,warnings,infos,analysis_s\n");
    let schema = xmark_schema();

    // `(rules, speedup)` of the incremental re-analysis at the largest
    // ladder size — the gate below asserts it beats 5x.
    let mut largest: (usize, f64) = (0, 0.0);

    for &f in factors {
        let doc = xac_xmlgen::xmark_document(xac_xmlgen::XmarkConfig::with_factor(f));
        for &target in COVERAGE_LEVELS {
            let policy = xac_xmlgen::coverage_policy(&doc, target, 1);
            let rules = policy.len();
            let (report, wall) = time(|| {
                xac_analyze::Analyzer::new(&policy).with_schema(&schema).run()
            });
            let (errors, warns, infos) = (
                report.count(xac_analyze::Severity::Error),
                report.count(xac_analyze::Severity::Warning),
                report.count(xac_analyze::Severity::Info),
            );
            t.row(&[
                format!("{f}"),
                format!("{target}"),
                rules.to_string(),
                errors.to_string(),
                warns.to_string(),
                infos.to_string(),
                fmt_duration(wall),
            ]);
            let secs = wall.as_secs_f64();
            let _ = writeln!(csv, "{f},{target},{rules},{errors},{warns},{infos},{secs}");
            push_row(
                &mut json,
                &mut first,
                &format!(
                    "{{\"kind\": \"scaling\", \"factor\": {f}, \"target\": {target}, \
                     \"rules\": {rules}, \"errors\": {errors}, \"warnings\": {warns}, \
                     \"infos\": {infos}, \"analysis_s\": {secs}}}"
                ),
            );

            // Incremental re-analysis after a single-rule edit: warm
            // the engine on the base policy, flip one mid-policy rule's
            // effect, and compare a full from-scratch pass against the
            // fingerprint-cached one (which must render the same
            // report).
            let mut engine =
                xac_analyze::IncrementalAnalyzer::new(policy.clone(), Some(&schema))
                    .named("ladder.pol", None);
            let _ = engine.analyze();
            let edited = flip_mid_rule(&policy);
            let (full_report, full_wall) = time(|| {
                xac_analyze::Analyzer::new(&edited)
                    .with_schema(&schema)
                    .named("ladder.pol", None)
                    .run()
            });
            engine.set_policy(edited.clone());
            let (incr_report, incr_wall) = time(|| engine.analyze());
            assert_eq!(
                incr_report.to_json(),
                full_report.to_json(),
                "incremental report must match the full pass (factor {f}, target {target})"
            );
            let (hits, reruns) = engine.last_cache_traffic();
            let full_s = full_wall.as_secs_f64();
            let incremental_s = incr_wall.as_secs_f64();
            let speedup = full_s / incremental_s.max(1e-9);
            if rules >= largest.0 {
                largest = (rules, speedup);
            }
            println!(
                "  incremental: 1-rule edit over {rules} rules re-analyzed in {} \
                 (full pass {}, speedup {speedup:.1}x, cache {hits} hits / {reruns} reruns)",
                fmt_duration(incr_wall),
                fmt_duration(full_wall),
            );
            push_row(
                &mut json,
                &mut first,
                &format!(
                    "{{\"kind\": \"incremental\", \"factor\": {f}, \"target\": {target}, \
                     \"rules\": {rules}, \"full_s\": {full_s}, \
                     \"incremental_s\": {incremental_s}, \"speedup\": {speedup}, \
                     \"hits\": {hits}, \"reruns\": {reruns}}}"
                ),
            );
        }
    }

    // Dedicated incremental ladder: the coverage policies top out at a
    // few dozen rules, where fixed costs mask the cache win. These
    // mixed-effect policies over the XMark element graph grow until the
    // full pass's O(rules^2) containment work dominates — the regime
    // the incremental engine is built for.
    for &n in &[32usize, 64, 128, 256] {
        let policy = incremental_ladder_policy(&schema, n);
        let mut engine = xac_analyze::IncrementalAnalyzer::new(policy.clone(), Some(&schema))
            .named("ladder.pol", None);
        let _ = engine.analyze();
        let edited = flip_mid_rule(&policy);
        let (full_report, full_wall) = time(|| {
            xac_analyze::Analyzer::new(&edited)
                .with_schema(&schema)
                .named("ladder.pol", None)
                .run()
        });
        engine.set_policy(edited.clone());
        let (incr_report, incr_wall) = time(|| engine.analyze());
        assert_eq!(
            incr_report.to_json(),
            full_report.to_json(),
            "incremental report must match the full pass at {n} rules"
        );
        let (hits, reruns) = engine.last_cache_traffic();
        let full_s = full_wall.as_secs_f64();
        let incremental_s = incr_wall.as_secs_f64();
        let speedup = full_s / incremental_s.max(1e-9);
        if n >= largest.0 {
            largest = (n, speedup);
        }
        println!(
            "  incremental: 1-rule edit over {n} rules re-analyzed in {} \
             (full pass {}, speedup {speedup:.1}x, cache {hits} hits / {reruns} reruns)",
            fmt_duration(incr_wall),
            fmt_duration(full_wall),
        );
        push_row(
            &mut json,
            &mut first,
            &format!(
                "{{\"kind\": \"incremental\", \"factor\": 0, \"target\": 0, \
                 \"rules\": {n}, \"full_s\": {full_s}, \
                 \"incremental_s\": {incremental_s}, \"speedup\": {speedup}, \
                 \"hits\": {hits}, \"reruns\": {reruns}}}"
            ),
        );
    }

    assert!(
        largest.1 >= 5.0,
        "incremental re-analysis must be at least 5x faster than a full pass \
         at the largest policy size ({} rules), got {:.1}x",
        largest.0,
        largest.1
    );

    // Dynamic D5 audit on the paper's hospital instance: replays every
    // update through partial vs full re-annotation on all three backends
    // and compares sign states, so `missed == 0` here is the soundness
    // certificate the CI gate consumes.
    let h_schema = xac_xmlgen::hospital_schema();
    let h_policy = hospital_policy();
    let h_doc = xac_xmlgen::figure2_document();
    let (report, wall) = time(|| {
        xac_analyze::Analyzer::new(&h_policy)
            .with_schema(&h_schema)
            .named("hospital.pol", Some("hospital.dtd".into()))
            .run_with_document(&h_doc)
    });
    let audit = report.audit.expect("dynamic audit ran");
    assert!(audit.sound(), "trigger audit must be sound on the hospital instance");
    println!(
        "  D5 dynamic audit (hospital): {} updates, selected {} / affected {}, \
         precision {:.2}, missed {}, backends {:?}, {}",
        audit.updates,
        audit.selected_total,
        audit.affected_total,
        audit.precision(),
        audit.missed,
        audit.backends,
        fmt_duration(wall),
    );
    push_row(
        &mut json,
        &mut first,
        &format!(
            "{{\"kind\": \"audit\", \"updates\": {}, \"selected\": {}, \"affected\": {}, \
             \"precision\": {:.4}, \"missed\": {}, \"divergences\": {}, \
             \"sign_mismatches\": {}, \"sound\": {}, \"audit_s\": {}}}",
            audit.updates,
            audit.selected_total,
            audit.affected_total,
            audit.precision(),
            audit.missed,
            audit.divergences,
            audit.sign_mismatches,
            audit.sound(),
            wall.as_secs_f64(),
        ),
    );

    // Verified repair synthesis on the intentionally flawed fixture:
    // every accepted edit re-analyzes incrementally and differentially
    // annotates on all three backends before it is kept, and the
    // repaired policy must come out gating-clean.
    let flawed_src = include_str!("../../../../examples/policies/flawed_all5.pol");
    let flawed = xac_policy::Policy::parse(flawed_src).expect("fixture parses");
    let mut engine = xac_analyze::IncrementalAnalyzer::new(flawed, Some(&h_schema))
        .named("flawed_all5.pol", Some("hospital.dtd".into()));
    let cfg = xac_analyze::RepairConfig { deny_warnings: true, fix_infos: false };
    let (outcome, repair_wall) = time(|| {
        xac_analyze::synthesize(&mut engine, flawed_src, "flawed_all5.pol", Some(&h_doc), &cfg)
    });
    assert_eq!(
        outcome.report.exit_code(true),
        0,
        "repaired fixture must re-analyze clean:\n{}",
        outcome.report.to_text()
    );
    println!(
        "  repair synthesis (flawed_all5.pol): {} verified repair(s) in {}, \
         repaired exit code 0",
        outcome.repairs.len(),
        fmt_duration(repair_wall),
    );
    for repair in &outcome.repairs {
        println!("    [{}] {}", repair.kind.label(), repair.description);
        push_row(
            &mut json,
            &mut first,
            &format!(
                "{{\"kind\": \"repair\", \"repair\": \"{}\", \"code\": \"{}\", \
                 \"rule\": \"{}\"}}",
                repair.kind.label(),
                repair.code.as_str(),
                repair.rule.as_deref().unwrap_or(""),
            ),
        );
    }
    push_row(
        &mut json,
        &mut first,
        &format!(
            "{{\"kind\": \"repair_summary\", \"repairs\": {}, \"exit_code\": {}, \
             \"repair_s\": {}}}",
            outcome.repairs.len(),
            outcome.report.exit_code(true),
            repair_wall.as_secs_f64(),
        ),
    );

    json.push_str("\n]\n");
    write_csv("analyze.csv", &csv);
    std::fs::write("BENCH_analyze.json", &json).expect("write json");
    println!("  [json -> BENCH_analyze.json]");
    println!(
        "(analysis_s = one schema-aware D1-D5 pass over a generated policy;\n \
         incremental rows re-analyze a 1-rule edit through the fingerprint\n \
         cache — the figures binary asserts >= 5x over a full pass at the\n \
         largest size; the audit row replays deletes through partial vs full\n \
         re-annotation on native/row/column backends — precision is the\n \
         Fig. 8 trigger's over-approximation factor |selected|/|affected|;\n \
         repair rows are the verified edits that fix flawed_all5.pol)"
    );
}

/// A deterministic mixed-effect policy with `n` rules over the schema's
/// element graph: cycles through `//t`, `//p/c` and `//p[c]` shapes with
/// alternating signs, so the D2/D3 passes have real opposite-effect
/// overlap work at every size.
fn incremental_ladder_policy(schema: &xac_xml::Schema, n: usize) -> xac_policy::Policy {
    let types: Vec<&str> = schema.reachable_types().into_iter().collect();
    let mut edges: Vec<(&str, &str)> = Vec::new();
    for t in &types {
        for c in schema.child_types(t) {
            edges.push((t, c));
        }
    }
    let mut src = String::from("default deny\nconflict deny-overrides\n");
    for i in 0..n {
        let effect = if i % 2 == 0 { "allow" } else { "deny" };
        let resource = match i % 3 {
            0 => format!("//{}", types[i % types.len()]),
            1 => {
                let (p, c) = edges[i % edges.len()];
                format!("//{p}/{c}")
            }
            _ => {
                let (p, c) = edges[(i * 7) % edges.len()];
                format!("//{p}[{c}]")
            }
        };
        let _ = writeln!(src, "L{i} {effect} {resource}");
    }
    xac_policy::Policy::parse(&src).expect("ladder policy parses")
}

/// Flip the effect of the middle rule — the canonical single-rule edit
/// the incremental sweep measures.
fn flip_mid_rule(policy: &xac_policy::Policy) -> xac_policy::Policy {
    let mid = &policy.rules[policy.rules.len() / 2];
    let to = match mid.effect {
        xac_policy::Effect::Allow => xac_policy::Effect::Deny,
        xac_policy::Effect::Deny => xac_policy::Effect::Allow,
    };
    let replacement = xac_policy::Rule::parse(mid.id.clone(), &mid.resource.to_string(), to)
        .expect("flipped rule parses");
    policy.with_rule_replaced(&mid.id, replacement).expect("replace keeps ids unique")
}
