//! Minimal in-repo timing harness for the spot benchmarks.
//!
//! The bench targets (`cargo bench`) used to run under criterion; this
//! module replaces it with ~60 lines of `std::time` so the workspace
//! builds with zero external crates. Reported numbers are the median,
//! minimum and mean of wall-clock samples after one warm-up call —
//! enough fidelity for the order-of-magnitude comparisons the paper's
//! figures make, without criterion's statistical machinery.
//!
//! When cargo runs a `harness = false` bench target under `cargo test`
//! it passes `--test`; the harness detects that and collapses to one
//! sample per benchmark so the tier-1 suite stays fast while still
//! smoke-testing every bench body.

use crate::fmt_duration;
use std::time::{Duration, Instant};

/// A named group of benchmarks sharing sampling parameters.
pub struct BenchGroup {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    smoke: bool,
}

impl BenchGroup {
    /// New group with default sampling (20 samples, 2 s budget).
    pub fn new(name: &str) -> BenchGroup {
        let smoke = std::env::args().any(|a| a == "--test");
        BenchGroup {
            name: name.to_string(),
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            smoke,
        }
    }

    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut BenchGroup {
        self.sample_size = n.max(1);
        self
    }

    /// Set the wall-clock budget per benchmark; sampling stops early
    /// once it is exhausted.
    pub fn measurement_time(&mut self, d: Duration) -> &mut BenchGroup {
        self.measurement_time = d;
        self
    }

    /// Time one closure and print a summary line.
    pub fn bench<F: FnMut()>(&self, label: &str, mut f: F) {
        f(); // warm-up, untimed
        let samples = if self.smoke { 1 } else { self.sample_size };
        let mut times = Vec::with_capacity(samples);
        let budget = Instant::now();
        for _ in 0..samples {
            let t = Instant::now();
            f();
            times.push(t.elapsed());
            if !self.smoke && budget.elapsed() > self.measurement_time {
                break;
            }
        }
        times.sort();
        let median = times[times.len() / 2];
        let mean = times.iter().sum::<Duration>() / times.len() as u32;
        println!(
            "{}/{:<34} median {:>10}  min {:>10}  mean {:>10}  ({} samples)",
            self.name,
            label,
            fmt_duration(median),
            fmt_duration(times[0]),
            fmt_duration(mean),
            times.len()
        );
    }
}

/// Median wall-clock duration of `samples` runs of `f` (one untimed
/// warm-up first). Shared by the `figures` binary's timing loops.
pub fn median_time<F: FnMut()>(samples: usize, mut f: F) -> Duration {
    f();
    let mut times: Vec<Duration> = (0..samples.max(1))
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed()
        })
        .collect();
    times.sort();
    times[times.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_time_measures_something() {
        let d = median_time(3, || std::thread::sleep(Duration::from_millis(2)));
        assert!(d >= Duration::from_millis(1));
    }

    #[test]
    fn bench_group_runs_closure() {
        let mut calls = 0;
        let mut g = BenchGroup::new("t");
        g.sample_size(3).measurement_time(Duration::from_secs(1));
        g.bench("count", || calls += 1);
        assert!(calls >= 2, "warm-up plus at least one sample");
    }
}
