//! End-to-end tests of the `xmlac` command-line interface against the
//! checked-in hospital data files.

use std::process::{Command, Output};

fn data(file: &str) -> String {
    format!("{}/../../data/{file}", env!("CARGO_MANIFEST_DIR"))
}

fn xmlac(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_xmlac"))
        .args(args)
        .output()
        .expect("xmlac runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn check_validates_document() {
    let out = xmlac(&["check", "--schema", &data("hospital.dtd"), "--doc", &data("figure2.xml")]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("21 elements"), "{text}");
    assert!(text.contains("<hospital>"), "{text}");
}

#[test]
fn optimize_prints_reduced_policy() {
    let out = xmlac(&["optimize", "--policy", &data("hospital.pol")]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    // Blind optimization: Table 3.
    assert!(text.contains("R1 allow //patient"), "{text}");
    assert!(!text.contains("R4"), "{text}");
    assert!(text.contains("R5"), "blind optimizer keeps R5: {text}");
    assert!(stderr(&out).contains("R4, R7, R8"), "{}", stderr(&out));

    // Schema-aware optimization removes R5 too.
    let out = xmlac(&[
        "optimize",
        "--policy",
        &data("hospital.pol"),
        "--schema",
        &data("hospital.dtd"),
    ]);
    assert!(out.status.success());
    assert!(!stdout(&out).contains("R5"), "{}", stdout(&out));
}

#[test]
fn query_reports_decisions_on_all_backends() {
    for backend in ["native", "row", "column"] {
        let out = xmlac(&[
            "query",
            "--schema",
            &data("hospital.dtd"),
            "--policy",
            &data("hospital.pol"),
            "--doc",
            &data("figure2.xml"),
            "--backend",
            backend,
            "--query",
            "//patient/name",
            "--query",
            "//patient",
        ]);
        assert!(out.status.success(), "{backend}: {}", stderr(&out));
        let text = stdout(&out);
        assert!(text.contains("GRANTED //patient/name (3 nodes)"), "{backend}: {text}");
        assert!(text.contains("DENIED  //patient (3 nodes)"), "{backend}: {text}");
    }
}

#[test]
fn update_deletes_and_requeries() {
    let out = xmlac(&[
        "update",
        "--schema",
        &data("hospital.dtd"),
        "--policy",
        &data("hospital.pol"),
        "--doc",
        &data("figure2.xml"),
        "--delete",
        "//treatment",
        "--query",
        "//patient",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("deleted 8 elements"), "{text}");
    assert!(text.contains("R3"), "{text}");
    assert!(text.contains("GRANTED //patient (3 nodes)"), "{text}");
}

#[test]
fn update_insert_flow() {
    let out = xmlac(&[
        "update",
        "--schema",
        &data("hospital.dtd"),
        "--policy",
        &data("hospital.pol"),
        "--doc",
        &data("figure2.xml"),
        "--insert",
        "//patient[psn = \"099\"]:treatment",
        "--query",
        "//patient[psn = \"099\"]",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("inserted 1 <treatment>"), "{text}");
    assert!(text.contains("DENIED  //patient[psn = \"099\"]"), "{text}");
}

#[test]
fn shred_emits_ddl_and_inserts() {
    let out = xmlac(&["shred", "--schema", &data("hospital.dtd"), "--doc", &data("figure2.xml")]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("CREATE TABLE patient"), "{text}");
    assert_eq!(text.matches("INSERT INTO").count(), 21, "one insert per element");
}

#[test]
fn audit_reports_rule_statistics() {
    let out = xmlac(&[
        "audit",
        "--schema",
        &data("hospital.dtd"),
        "--policy",
        &data("hospital.pol"),
        "--doc",
        &data("figure2.xml"),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("R1"), "{text}");
    assert!(text.contains("5 accessible"), "{text}");
    assert!(text.contains("2 conflicted"), "{text}");
    assert!(text.contains("dead on this document: R7, R8"), "{text}");
}

#[test]
fn view_prints_security_view() {
    let out = xmlac(&[
        "view",
        "--schema",
        &data("hospital.dtd"),
        "--policy",
        &data("hospital.pol"),
        "--doc",
        &data("figure2.xml"),
        "--mode",
        "promote",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("joy smith"), "{text}");
    assert!(!text.contains("psn"), "denied data must not leak: {text}");
    assert!(!text.contains("enoxaparin"), "{text}");

    // Prune mode hides everything below the denied dept.
    let out = xmlac(&[
        "view",
        "--schema",
        &data("hospital.dtd"),
        "--policy",
        &data("hospital.pol"),
        "--doc",
        &data("figure2.xml"),
        "--mode",
        "prune",
    ]);
    assert!(out.status.success());
    assert_eq!(stdout(&out).trim(), "<hospital/>");
}

fn serve_bench_args(extra: &[&str]) -> Vec<String> {
    let mut args: Vec<String> = [
        "serve-bench",
        "--schema",
        &data("hospital.dtd"),
        "--policy",
        &data("hospital.pol"),
        "--doc",
        &data("figure2.xml"),
        "--query",
        "//patient/name",
        "--readers",
        "2",
        "--reads",
        "20",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    args.extend(extra.iter().map(|s| s.to_string()));
    args
}

#[test]
fn serve_bench_fault_plan_recovers_with_rollback() {
    // One-shot fault on the delete: the engine rolls back, the command
    // classifies the lost write with exit code 4, and the metrics show
    // the ladder at work.
    let args = serve_bench_args(&[
        "--delete",
        "//patient[psn = \"042\"]/name",
        "--fault-plan",
        "after_delete:error",
    ]);
    let out = xmlac(&args.iter().map(String::as_str).collect::<Vec<_>>());
    assert_eq!(out.status.code(), Some(4), "{}", stderr(&out));
    assert!(stderr(&out).contains("fault injected at `after_delete`"), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("1 faults injected"), "{text}");
    assert!(text.contains("1 rollbacks"), "{text}");
    assert!(text.contains("0 quarantines"), "{text}");
}

#[test]
fn serve_bench_quarantine_exits_3() {
    // The rollback itself is sabotaged: the engine must end read-only.
    let args = serve_bench_args(&[
        "--delete",
        "//patient[psn = \"042\"]/name",
        "--fault-plan",
        "after_delete:panic,before_restore:error",
    ]);
    let out = xmlac(&args.iter().map(String::as_str).collect::<Vec<_>>());
    assert_eq!(out.status.code(), Some(3), "{}", stderr(&out));
    assert!(stderr(&out).contains("quarantined"), "{}", stderr(&out));
    assert!(stdout(&out).contains("1 quarantines"), "{}", stdout(&out));
}

#[test]
fn serve_bench_seeded_plan_and_bad_specs() {
    // A seed with zero faults is a no-op plan: clean exit.
    let args = serve_bench_args(&["--fault-plan", "seed:7x0"]);
    let out = xmlac(&args.iter().map(String::as_str).collect::<Vec<_>>());
    assert!(out.status.success(), "{}", stderr(&out));

    let args = serve_bench_args(&["--fault-plan", "no_such_point:error"]);
    let out = xmlac(&args.iter().map(String::as_str).collect::<Vec<_>>());
    assert_eq!(out.status.code(), Some(2), "{}", stderr(&out));
    assert!(stderr(&out).contains("--fault-plan"), "{}", stderr(&out));
}

fn example(file: &str) -> String {
    format!("{}/../../examples/policies/{file}", env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn analyze_flawed_fixture_exits_5_with_all_codes() {
    let out = xmlac(&[
        "analyze",
        "--policy",
        &example("flawed_all5.pol"),
        "--schema",
        &data("hospital.dtd"),
        "--deny",
        "warn",
    ]);
    assert_eq!(out.status.code(), Some(5), "{}", stderr(&out));
    let text = stdout(&out);
    for code in ["XA001", "XA002", "XA003", "XA004", "XA005"] {
        assert!(text.contains(code), "missing {code}: {text}");
    }
    assert!(text.contains("error[XA001]"), "{text}");
    assert!(text.contains("warning[XA002]"), "{text}");
    assert!(stderr(&out).contains("1 error(s)"), "{}", stderr(&out));
}

#[test]
fn analyze_clean_policies_exit_0_under_deny_warn() {
    for policy in [data("hospital.pol"), example("clean_staff.pol")] {
        let out = xmlac(&[
            "analyze",
            "--policy",
            &policy,
            "--schema",
            &data("hospital.dtd"),
            "--deny",
            "warn",
        ]);
        assert!(out.status.success(), "{policy}: {}\n{}", stderr(&out), stdout(&out));
    }
}

#[test]
fn analyze_json_output_with_dynamic_audit() {
    let out = xmlac(&[
        "analyze",
        "--policy",
        &data("hospital.pol"),
        "--schema",
        &data("hospital.dtd"),
        "--doc",
        &data("figure2.xml"),
        "--format",
        "json",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let json = stdout(&out);
    assert!(json.contains("\"audit\""), "{json}");
    assert!(json.contains("\"dynamic\": true"), "{json}");
    assert!(json.contains("\"missed\": 0"), "{json}");
    assert!(json.contains("\"sound\": true"), "{json}");
}

#[test]
fn analyze_usage_errors_exit_2() {
    // --doc without --schema: the dynamic audit has no schema to drive.
    let out = xmlac(&[
        "analyze",
        "--policy",
        &data("hospital.pol"),
        "--doc",
        &data("figure2.xml"),
    ]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr(&out));
    assert!(stderr(&out).contains("--schema"), "{}", stderr(&out));

    let out = xmlac(&[
        "analyze",
        "--policy",
        &data("hospital.pol"),
        "--deny",
        "everything",
    ]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr(&out));

    let out = xmlac(&[
        "analyze",
        "--policy",
        &data("hospital.pol"),
        "--format",
        "yaml",
    ]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr(&out));
}

#[test]
fn vm_dump_matches_golden_listing() {
    let out = xmlac(&["vm", "dump", "--policy", &data("hospital.pol"), "--schema", &data("hospital.dtd")]);
    assert!(out.status.success(), "{}", stderr(&out));
    let golden_path =
        format!("{}/../../tests/golden/vm_dump_hospital.txt", env!("CARGO_MANIFEST_DIR"));
    let golden = std::fs::read_to_string(&golden_path).expect("golden listing checked in");
    assert_eq!(stdout(&out), golden, "disassembly drifted from {golden_path}");
}

#[test]
fn vm_dump_writes_out_file_and_rejects_bad_verbs() {
    let dir = std::env::temp_dir().join("xmlac_vm_dump_test");
    std::fs::create_dir_all(&dir).unwrap();
    let out_file = dir.join("listing.txt");
    let out_path = out_file.to_str().unwrap();
    let out = xmlac(&[
        "vm",
        "dump",
        "--policy",
        &data("hospital.pol"),
        "--schema",
        &data("hospital.dtd"),
        "--out",
        out_path,
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let listing = std::fs::read_to_string(&out_file).unwrap();
    assert!(listing.contains(";; xac-vmc program"), "{listing}");
    assert!(listing.contains("== element type `patient` =="), "{listing}");
    assert!(listing.contains("sign.write"), "{listing}");

    let out = xmlac(&["vm", "disasm", "--policy", &data("hospital.pol")]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr(&out));
    assert!(stderr(&out).contains("unknown vm verb"), "{}", stderr(&out));
}

#[test]
fn annotate_mode_compiled_accepted_and_unknown_rejected() {
    for backend in ["native", "row", "column"] {
        let out = xmlac(&[
            "query",
            "--schema",
            &data("hospital.dtd"),
            "--policy",
            &data("hospital.pol"),
            "--doc",
            &data("figure2.xml"),
            "--backend",
            backend,
            "--annotate-mode",
            "compiled",
            "--query",
            "//patient/name",
            "--query",
            "//patient",
        ]);
        assert!(out.status.success(), "{backend}: {}", stderr(&out));
        let text = stdout(&out);
        assert!(text.contains("GRANTED //patient/name (3 nodes)"), "{backend}: {text}");
        assert!(text.contains("DENIED  //patient (3 nodes)"), "{backend}: {text}");
    }
    let out = xmlac(&[
        "query",
        "--schema",
        &data("hospital.dtd"),
        "--policy",
        &data("hospital.pol"),
        "--doc",
        &data("figure2.xml"),
        "--annotate-mode",
        "vectorised",
        "--query",
        "//patient",
    ]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(err.contains("unknown annotate mode `vectorised`"), "{err}");
    assert!(err.contains("paper, batched, compiled"), "{err}");
}

#[test]
fn errors_are_reported_with_nonzero_exit() {
    let out = xmlac(&["bogus-command"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unknown command"));

    let out = xmlac(&["check", "--schema", "/nonexistent.dtd", "--doc", &data("figure2.xml")]);
    assert!(!out.status.success());

    let out = xmlac(&["query", "--schema", &data("hospital.dtd"), "--policy", &data("hospital.pol"), "--doc", &data("figure2.xml")]);
    assert!(!out.status.success(), "query without --query must fail");
}
