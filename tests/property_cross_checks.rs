//! Property-based cross-checks over the static-analysis core: containment
//! soundness against evaluation, parser round-trips, index-accelerated
//! evaluation, and the XPath→SQL translation — all on randomized inputs.
//!
//! Randomness comes from the seeded in-repo [`xac_xmlgen::SplitMix64`]
//! stream, so every run explores the same cases and failures reproduce.

use xac_xml::Document;
use xac_xmlgen::SplitMix64;
use xac_xpath::{contained_in, eval, parse, Axis, NodeTest, Path, Qualifier, Step};

// ---------------------------------------------------------------------
// Random trees over a small alphabet
// ---------------------------------------------------------------------

const LABELS: &[&str] = &["a", "b", "c", "d"];
const VALUES: &[&str] = &["1", "2", "x"];

fn label(rng: &mut SplitMix64) -> &'static str {
    LABELS[rng.gen_range(0..LABELS.len())]
}

fn value(rng: &mut SplitMix64) -> &'static str {
    VALUES[rng.gen_range(0..VALUES.len())]
}

fn attach_random(doc: &mut Document, parent: xac_xml::NodeId, rng: &mut SplitMix64, depth: usize) {
    let n = doc.add_element(parent, label(rng));
    if depth == 0 || rng.gen_bool(0.4) {
        if rng.gen_bool(0.5) {
            doc.add_text(n, value(rng));
        }
    } else {
        for _ in 0..rng.gen_range(0..4usize) {
            attach_random(doc, n, rng, depth - 1);
        }
    }
}

fn random_document(rng: &mut SplitMix64) -> Document {
    let mut doc = Document::new(label(rng));
    let root = doc.root();
    for _ in 0..rng.gen_range(0..4usize) {
        attach_random(&mut doc, root, rng, 2);
    }
    doc
}

// ---------------------------------------------------------------------
// Random paths in the fragment
// ---------------------------------------------------------------------

fn random_qualifier(rng: &mut SplitMix64) -> Qualifier {
    if rng.gen_bool(0.5) {
        Qualifier::Exists(Path::relative(vec![Step::child(label(rng))]))
    } else {
        Qualifier::Cmp(
            Path::relative(vec![Step::child(label(rng))]),
            xac_xpath::CmpOp::Eq,
            value(rng).to_string(),
        )
    }
}

fn random_step(rng: &mut SplitMix64) -> Step {
    let axis = if rng.gen_bool(0.5) { Axis::Child } else { Axis::Descendant };
    let test = if rng.gen_bool(0.75) {
        NodeTest::Name(label(rng).to_string())
    } else {
        NodeTest::Wildcard
    };
    let predicates = (0..rng.gen_range(0..2usize)).map(|_| random_qualifier(rng)).collect();
    Step { axis, test, predicates }
}

fn random_path(rng: &mut SplitMix64) -> Path {
    let steps = (0..rng.gen_range(1..4usize)).map(|_| random_step(rng)).collect();
    Path::absolute(steps)
}

/// Drop every predicate (a strict generalization of the path).
fn strip_predicates(p: &Path) -> Path {
    Path::absolute(
        p.steps
            .iter()
            .map(|s| Step::new(s.axis, s.test.clone()))
            .collect(),
    )
}

/// Turn every child axis into descendant (another generalization).
fn loosen_axes(p: &Path) -> Path {
    Path::absolute(
        p.steps
            .iter()
            .map(|s| Step {
                axis: Axis::Descendant,
                test: s.test.clone(),
                predicates: s.predicates.clone(),
            })
            .collect(),
    )
}

fn is_subset(a: &[xac_xml::NodeId], b: &[xac_xml::NodeId]) -> bool {
    let set: std::collections::BTreeSet<_> = b.iter().collect();
    a.iter().all(|n| set.contains(n))
}

/// Soundness: whenever the homomorphism test claims `p ⊑ q`, the
/// result sets obey it on arbitrary trees.
#[test]
fn containment_claim_implies_subset() {
    let mut rng = SplitMix64::seed_from_u64(0x11);
    for _ in 0..96 {
        let p = random_path(&mut rng);
        let q = random_path(&mut rng);
        if contained_in(&p, &q) {
            let doc = random_document(&mut rng);
            assert!(
                is_subset(&eval(&doc, &p), &eval(&doc, &q)),
                "checker claimed {p} ⊑ {q} but results differ"
            );
        }
    }
}

/// Derived generalizations must be recognized as containing the
/// original (a completeness check on the subclass that matters).
#[test]
fn derived_generalizations_contain() {
    let mut rng = SplitMix64::seed_from_u64(0x12);
    for _ in 0..96 {
        let p = random_path(&mut rng);
        assert!(contained_in(&p, &p), "reflexivity on {p}");
        assert!(contained_in(&p, &strip_predicates(&p)), "{p} vs stripped");
        assert!(contained_in(&p, &loosen_axes(&p)), "{p} vs loosened");
    }
}

/// Display output re-parses to the identical AST.
#[test]
fn display_parse_round_trip() {
    let mut rng = SplitMix64::seed_from_u64(0x13);
    for _ in 0..96 {
        let p = random_path(&mut rng);
        let printed = p.to_string();
        let reparsed = parse(&printed).unwrap_or_else(|e| panic!("{printed}: {e}"));
        assert_eq!(p, reparsed);
    }
}

/// Evaluation returns deduplicated, document-ordered results, and
/// generalizations select supersets on real trees.
#[test]
fn eval_invariants() {
    let mut rng = SplitMix64::seed_from_u64(0x14);
    for _ in 0..96 {
        let p = random_path(&mut rng);
        let doc = random_document(&mut rng);
        let r = eval(&doc, &p);
        assert!(r.windows(2).all(|w| w[0] < w[1]), "sorted + unique for {p}");
        let stripped = eval(&doc, &strip_predicates(&p));
        assert!(is_subset(&r, &stripped), "{p} vs stripped");
        let loosened = eval(&doc, &loosen_axes(&p));
        assert!(is_subset(&r, &loosened), "{p} vs loosened");
    }
}

/// The name-indexed evaluation of the native store agrees with the
/// reference evaluation.
#[test]
fn indexed_eval_matches_reference() {
    let mut rng = SplitMix64::seed_from_u64(0x15);
    for _ in 0..96 {
        let p = random_path(&mut rng);
        let doc = random_document(&mut rng);
        let sdoc = xac_xmlstore::StoredDocument::new(doc.clone());
        assert_eq!(sdoc.eval(&p), eval(&doc, &p), "indexed eval differs for {p}");
    }
}

/// XPath→SQL translation agrees with tree evaluation on generated
/// hospital documents, for workload queries drawn from the schema.
#[test]
fn sql_translation_matches_eval() {
    let mut rng = SplitMix64::seed_from_u64(0x16);
    for _ in 0..24 {
        let seed = rng.gen_range(0..500u64);
        let qseed = rng.gen_range(0..500u64);
        let schema = xac_xmlgen::hospital_schema();
        let doc = xac_xmlgen::hospital_document(1, 12, seed);
        let mapping = xac_shrex::Mapping::derive(&schema).unwrap();
        let shredded = xac_shrex::shred_document(&doc, &mapping, '-').unwrap();
        let sql_text = xac_shrex::shred_to_sql(&doc, &mapping, '-').unwrap();
        let mut db = xac_reldb::Database::new(xac_reldb::StorageKind::Row);
        db.execute_script(&mapping.ddl()).unwrap();
        db.execute_script(&sql_text).unwrap();

        for q in xac_xmlgen::query_workload(&schema, 6, qseed) {
            let expected: std::collections::BTreeSet<i64> = eval(&doc, &q)
                .into_iter()
                .map(|n| shredded.id_of(n).unwrap())
                .collect();
            let sql = xac_shrex::translate(&q, &schema).unwrap();
            let got = db.query(&sql).unwrap().column_as_int_set(0);
            assert_eq!(got, expected, "mismatch for {q} (seed {seed})");
        }
    }
}
