//! Property-based cross-checks over the static-analysis core: containment
//! soundness against evaluation, parser round-trips, index-accelerated
//! evaluation, and the XPath→SQL translation — all on randomized inputs.

use proptest::prelude::*;
use xac_xml::Document;
use xac_xpath::{contained_in, eval, parse, Axis, NodeTest, Path, Qualifier, Step};

// ---------------------------------------------------------------------
// Random trees over a small alphabet
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Tree {
    Leaf(&'static str, Option<&'static str>),
    Node(&'static str, Vec<Tree>),
}

fn arb_label() -> impl Strategy<Value = &'static str> {
    prop_oneof![Just("a"), Just("b"), Just("c"), Just("d")]
}

fn arb_value() -> impl Strategy<Value = &'static str> {
    prop_oneof![Just("1"), Just("2"), Just("x")]
}

fn arb_tree() -> impl Strategy<Value = Tree> {
    let leaf = (arb_label(), proptest::option::of(arb_value()))
        .prop_map(|(l, v)| Tree::Leaf(l, v));
    leaf.prop_recursive(3, 24, 4, |inner| {
        (arb_label(), proptest::collection::vec(inner, 0..4))
            .prop_map(|(l, kids)| Tree::Node(l, kids))
    })
}

fn to_document(tree: &Tree) -> Document {
    fn attach(doc: &mut Document, parent: xac_xml::NodeId, t: &Tree) {
        match t {
            Tree::Leaf(l, v) => {
                let n = doc.add_element(parent, *l);
                if let Some(v) = v {
                    doc.add_text(n, *v);
                }
            }
            Tree::Node(l, kids) => {
                let n = doc.add_element(parent, *l);
                for k in kids {
                    attach(doc, n, k);
                }
            }
        }
    }
    let (label, kids) = match tree {
        Tree::Leaf(l, _) => (*l, Vec::new()),
        Tree::Node(l, kids) => (*l, kids.clone()),
    };
    let mut doc = Document::new(label);
    let root = doc.root();
    for k in &kids {
        attach(&mut doc, root, k);
    }
    doc
}

// ---------------------------------------------------------------------
// Random paths in the fragment
// ---------------------------------------------------------------------

fn arb_qualifier() -> impl Strategy<Value = Qualifier> {
    prop_oneof![
        arb_label().prop_map(|l| Qualifier::Exists(Path::relative(vec![Step::child(l)]))),
        (arb_label(), arb_value()).prop_map(|(l, v)| Qualifier::Cmp(
            Path::relative(vec![Step::child(l)]),
            xac_xpath::CmpOp::Eq,
            v.to_string(),
        )),
    ]
}

fn arb_step() -> impl Strategy<Value = Step> {
    (
        prop_oneof![Just(Axis::Child), Just(Axis::Descendant)],
        prop_oneof![
            arb_label().prop_map(|l| NodeTest::Name(l.to_string())),
            Just(NodeTest::Wildcard),
        ],
        proptest::collection::vec(arb_qualifier(), 0..2),
    )
        .prop_map(|(axis, test, predicates)| Step { axis, test, predicates })
}

fn arb_path() -> impl Strategy<Value = Path> {
    proptest::collection::vec(arb_step(), 1..4).prop_map(Path::absolute)
}

/// Drop every predicate (a strict generalization of the path).
fn strip_predicates(p: &Path) -> Path {
    Path::absolute(
        p.steps
            .iter()
            .map(|s| Step::new(s.axis, s.test.clone()))
            .collect(),
    )
}

/// Turn every child axis into descendant (another generalization).
fn loosen_axes(p: &Path) -> Path {
    Path::absolute(
        p.steps
            .iter()
            .map(|s| Step {
                axis: Axis::Descendant,
                test: s.test.clone(),
                predicates: s.predicates.clone(),
            })
            .collect(),
    )
}

fn is_subset(a: &[xac_xml::NodeId], b: &[xac_xml::NodeId]) -> bool {
    let set: std::collections::BTreeSet<_> = b.iter().collect();
    a.iter().all(|n| set.contains(n))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Soundness: whenever the homomorphism test claims `p ⊑ q`, the
    /// result sets obey it on arbitrary trees.
    #[test]
    fn containment_claim_implies_subset(p in arb_path(), q in arb_path(), t in arb_tree()) {
        if contained_in(&p, &q) {
            let doc = to_document(&t);
            prop_assert!(
                is_subset(&eval(&doc, &p), &eval(&doc, &q)),
                "checker claimed {p} ⊑ {q} but results differ"
            );
        }
    }

    /// Derived generalizations must be recognized as containing the
    /// original (a completeness check on the subclass that matters).
    #[test]
    fn derived_generalizations_contain(p in arb_path()) {
        prop_assert!(contained_in(&p, &p), "reflexivity on {p}");
        prop_assert!(contained_in(&p, &strip_predicates(&p)), "{p} vs stripped");
        prop_assert!(contained_in(&p, &loosen_axes(&p)), "{p} vs loosened");
    }

    /// Display output re-parses to the identical AST.
    #[test]
    fn display_parse_round_trip(p in arb_path()) {
        let printed = p.to_string();
        let reparsed = parse(&printed).unwrap_or_else(|e| panic!("{printed}: {e}"));
        prop_assert_eq!(p, reparsed);
    }

    /// Evaluation returns deduplicated, document-ordered results, and
    /// generalizations select supersets on real trees.
    #[test]
    fn eval_invariants(p in arb_path(), t in arb_tree()) {
        let doc = to_document(&t);
        let r = eval(&doc, &p);
        prop_assert!(r.windows(2).all(|w| w[0] < w[1]), "sorted + unique");
        let stripped = eval(&doc, &strip_predicates(&p));
        prop_assert!(is_subset(&r, &stripped));
        let loosened = eval(&doc, &loosen_axes(&p));
        prop_assert!(is_subset(&r, &loosened));
    }

    /// The name-indexed evaluation of the native store agrees with the
    /// reference evaluation.
    #[test]
    fn indexed_eval_matches_reference(p in arb_path(), t in arb_tree()) {
        let doc = to_document(&t);
        let sdoc = xac_xmlstore::StoredDocument::new(doc.clone());
        prop_assert_eq!(sdoc.eval(&p), eval(&doc, &p), "indexed eval differs for {}", p);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// XPath→SQL translation agrees with tree evaluation on generated
    /// hospital documents, for workload queries drawn from the schema.
    #[test]
    fn sql_translation_matches_eval(seed in 0u64..500, qseed in 0u64..500) {
        let schema = xac_xmlgen::hospital_schema();
        let doc = xac_xmlgen::hospital_document(1, 12, seed);
        let mapping = xac_shrex::Mapping::derive(&schema).unwrap();
        let shredded = xac_shrex::shred_document(&doc, &mapping, '-').unwrap();
        let sql_text = xac_shrex::shred_to_sql(&doc, &mapping, '-').unwrap();
        let mut db = xac_reldb::Database::new(xac_reldb::StorageKind::Row);
        db.execute_script(&mapping.ddl()).unwrap();
        db.execute_script(&sql_text).unwrap();

        for q in xac_xmlgen::query_workload(&schema, 6, qseed) {
            let expected: std::collections::BTreeSet<i64> = eval(&doc, &q)
                .into_iter()
                .map(|n| shredded.id_of(n).unwrap())
                .collect();
            let sql = xac_shrex::translate(&q, &schema).unwrap();
            let got = db.query(&sql).unwrap().column_as_int_set(0);
            prop_assert_eq!(got, expected, "mismatch for {} (seed {})", q, seed);
        }
    }
}
