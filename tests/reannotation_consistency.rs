//! The central correctness property of the re-annotation optimization:
//! after any delete update, Trigger-planned partial re-annotation must
//! leave every backend in exactly the state a full from-scratch
//! annotation would produce.

use std::collections::BTreeSet;
use xac_core::{Backend, NativeXmlBackend, RelationalBackend, System};
use xac_xmlgen::{
    coverage_policy, delete_updates, hospital_document, hospital_schema, xmark_document,
    xmark_schema, XmarkConfig,
};

fn backends() -> Vec<Box<dyn Backend>> {
    vec![
        Box::new(RelationalBackend::row()),
        Box::new(RelationalBackend::column()),
        Box::new(NativeXmlBackend::new()),
    ]
}

/// For one system and one update, check partial == full on a backend.
fn check_update(s: &System, b: &mut dyn Backend, u: &xac_xpath::Path) {
    // Partial path.
    s.load(b).unwrap();
    s.annotate(b).unwrap();
    s.apply_update(b, u).unwrap();
    let partial = b.accessible_count().unwrap();

    // Full re-annotation baseline on an identically-updated copy.
    s.load(b).unwrap();
    s.annotate(b).unwrap();
    b.delete(u).unwrap();
    s.full_reannotate(b).unwrap();
    let full = b.accessible_count().unwrap();

    assert_eq!(partial, full, "{}: partial != full after `{u}`", b.name());
}

#[test]
fn hospital_updates_converge_on_all_backends() {
    let doc = hospital_document(2, 60, 11);
    let s = System::builder(hospital_schema(), xac_policy::policy::hospital_policy(), doc).build().unwrap();
    let updates = [
        "//patient/treatment",
        "//treatment",
        "//treatment[experimental]",
        "//regular",
        "//experimental",
        "//patient[treatment]",
        "//regular/med",
        "//staffinfo/staff",
    ];
    for u in updates {
        let path = xac_xpath::parse(u).unwrap();
        for mut b in backends() {
            check_update(&s, b.as_mut(), &path);
        }
    }
}

#[test]
fn xmark_generated_updates_converge_natively() {
    // The native backend is cheap enough to sweep a larger update corpus.
    let doc = xmark_document(XmarkConfig::with_factor(0.004));
    let policy = coverage_policy(&doc, 0.5, 23);
    let s = System::builder(xmark_schema(), policy, doc).build().unwrap();
    let mut b = NativeXmlBackend::new();
    for u in delete_updates(&xmark_schema(), 30, 31) {
        check_update(&s, &mut b, &u);
    }
}

#[test]
fn xmark_generated_updates_converge_relationally() {
    let doc = xmark_document(XmarkConfig::with_factor(0.002));
    let policy = coverage_policy(&doc, 0.4, 29);
    let s = System::builder(xmark_schema(), policy, doc).build().unwrap();
    for mut b in backends() {
        for u in delete_updates(&xmark_schema(), 8, 37) {
            check_update(&s, b.as_mut(), &u);
        }
    }
}

/// Set-level (not just count-level) convergence on the relational store.
#[test]
fn partial_and_full_accessible_sets_identical() {
    let doc = hospital_document(2, 40, 19);
    let s = System::builder(hospital_schema(), xac_policy::policy::hospital_policy(), doc).build().unwrap();
    let u = xac_xpath::parse("//treatment[experimental]").unwrap();

    let mut b = RelationalBackend::column();
    s.load(&mut b).unwrap();
    s.annotate(&mut b).unwrap();
    s.apply_update(&mut b, &u).unwrap();
    let partial: BTreeSet<i64> = b.accessible_ids().unwrap();

    s.load(&mut b).unwrap();
    s.annotate(&mut b).unwrap();
    b.delete(&u).unwrap();
    s.full_reannotate(&mut b).unwrap();
    let full: BTreeSet<i64> = b.accessible_ids().unwrap();

    assert_eq!(partial, full);
}

/// Sequential updates: consistency must hold when updates accumulate
/// without reloading in between.
#[test]
fn sequential_updates_stay_consistent() {
    let doc = hospital_document(2, 50, 3);
    let s = System::builder(hospital_schema(), xac_policy::policy::hospital_policy(), doc).build().unwrap();
    let sequence = ["//experimental", "//regular/bill", "//treatment"];

    let mut partial = NativeXmlBackend::new();
    s.load(&mut partial).unwrap();
    s.annotate(&mut partial).unwrap();

    let mut baseline = NativeXmlBackend::new();
    s.load(&mut baseline).unwrap();
    s.annotate(&mut baseline).unwrap();

    for u in sequence {
        let path = xac_xpath::parse(u).unwrap();
        s.apply_update(&mut partial, &path).unwrap();
        baseline.delete(&path).unwrap();
        s.full_reannotate(&mut baseline).unwrap();
        assert_eq!(
            partial.accessible_count().unwrap(),
            baseline.accessible_count().unwrap(),
            "diverged after `{u}`"
        );
    }
}

/// The repair must converge under *all four* `(ds, cr)` semantics, not
/// just the common deny/deny-overrides case the paper benchmarks.
#[test]
fn all_four_semantics_converge() {
    let doc = hospital_document(1, 40, 47);
    let rules = "R1 allow //patient\nR3 deny //patient[treatment]\n\
                 R6 allow //regular\nR5 deny //patient[.//experimental]\n";
    let updates = ["//patient/treatment", "//experimental", "//regular/med"];
    for ds in ["deny", "allow"] {
        for cr in ["deny-overrides", "allow-overrides"] {
            let policy = xac_policy::Policy::parse(&format!(
                "default {ds}\nconflict {cr}\n{rules}"
            ))
            .unwrap();
            let s = System::builder(hospital_schema(), policy, doc.clone()).build().unwrap();
            let mut b = NativeXmlBackend::new();
            for u in updates {
                let path = xac_xpath::parse(u).unwrap();
                s.load(&mut b).unwrap();
                s.annotate(&mut b).unwrap();
                s.apply_update(&mut b, &path).unwrap();
                let partial = b.accessible_count().unwrap();

                s.load(&mut b).unwrap();
                s.annotate(&mut b).unwrap();
                b.delete(&path).unwrap();
                s.full_reannotate(&mut b).unwrap();
                let full = b.accessible_count().unwrap();
                assert_eq!(partial, full, "ds={ds} cr={cr} update={u}");
            }
        }
    }
}

/// The optimization must actually be an optimization: partial writes far
/// fewer signs than a full pass for a localized update.
#[test]
fn partial_writes_fewer_signs() {
    let doc = xmark_document(XmarkConfig::with_factor(0.01));
    let policy = coverage_policy(&doc, 0.6, 41);
    let s = System::builder(xmark_schema(), policy, doc).build().unwrap();
    let mut b = NativeXmlBackend::new();

    // A localized update: delete mail threads.
    let u = xac_xpath::parse("//mailbox/mail").unwrap();
    s.load(&mut b).unwrap();
    let full_writes = s.annotate(&mut b).unwrap();
    let outcome = s.apply_update(&mut b, &u).unwrap();
    if !outcome.plan.is_empty() {
        assert!(
            outcome.sign_writes < full_writes,
            "partial {} !< full {full_writes}",
            outcome.sign_writes
        );
    }
}
