//! Differential equivalence suite for the bytecode VM (`xac-vmc`).
//!
//! The compiled annotate mode is only admissible because it is
//! *observationally identical* to the interpreted paths it replaces.
//! This harness generates documents, policies, query workloads and
//! update sequences from the in-repo generators (`xac-xmlgen`, seeded
//! SplitMix64 — fully deterministic) and holds, for every backend:
//!
//! 1. `sign_state()` after compiled annotation is byte-identical to the
//!    interpreted (batched) annotation of the same system;
//! 2. every request `decide()`s the same under both modes, live and
//!    against published snapshots (the compiled read path);
//! 3. the equality survives structural updates + partial re-annotation;
//! 4. under a seeded fault plan the compiled engine walks the same
//!    degradation ladder: rollback restores a byte-identical state and
//!    reads keep being served.

use std::collections::BTreeMap;
use xac_core::{AnnotateMode, Backend, FaultPlan, System};
use xac_policy::Policy;
use xac_serve::{BackendKind, ServeEngine};
use xac_xml::{Document, Schema};
use xac_xmlgen::{
    coverage_policy, delete_updates, hospital_document, hospital_schema, query_workload,
    xmark_document, xmark_schema, XmarkConfig,
};

/// One generated scenario: a (schema, policy, document) triple plus the
/// seed that produced it (for failure messages).
struct Scenario {
    label: String,
    schema: Schema,
    policy: Policy,
    doc: Document,
    seed: u64,
}

fn scenarios() -> Vec<Scenario> {
    let mut out = Vec::new();
    for seed in [11u64, 29, 47, 83] {
        let doc = hospital_document(2 + (seed as usize % 3), 3 + (seed as usize % 4), seed);
        let coverage = 0.25 + (seed % 5) as f64 * 0.1;
        let policy = coverage_policy(&doc, coverage, seed);
        out.push(Scenario {
            label: format!("hospital(seed={seed}, coverage={coverage:.2})"),
            schema: hospital_schema(),
            policy,
            doc,
            seed,
        });
    }
    for (factor, seed) in [(0.002, 5u64), (0.008, 17)] {
        let doc = xmark_document(XmarkConfig::with_factor(factor));
        let policy = coverage_policy(&doc, 0.4, seed);
        out.push(Scenario {
            label: format!("xmark(factor={factor}, seed={seed})"),
            schema: xmark_schema(),
            policy,
            doc,
            seed,
        });
    }
    out
}

fn build(s: &Scenario, mode: AnnotateMode) -> System {
    System::builder(s.schema.clone(), s.policy.clone(), s.doc.clone())
        .annotate_mode(mode)
        .build()
        .expect("generated system assembles")
}

fn signs(b: &mut (dyn Backend + '_)) -> BTreeMap<i64, char> {
    b.sign_state().expect("sign state readable")
}

/// Invariants 1–3: per-backend compiled vs interpreted lockstep over
/// annotate → queries → update + re-annotate → queries.
#[test]
fn compiled_matches_interpreted_on_generated_workloads() {
    for sc in scenarios() {
        let system = build(&sc, AnnotateMode::Batched);
        let queries = query_workload(&sc.schema, 12, sc.seed);
        let updates = delete_updates(&sc.schema, 2, sc.seed ^ 0xdead_beef);
        for kind in BackendKind::ALL {
            let mut interp = kind.make(AnnotateMode::Batched);
            let mut comp = kind.make(AnnotateMode::Compiled);
            for b in [&mut interp, &mut comp] {
                system.load(b.as_mut()).unwrap();
            }
            let wi = system.annotate(interp.as_mut()).unwrap();
            let wc = system.annotate(comp.as_mut()).unwrap();
            assert_eq!(wi, wc, "{}/{kind:?}: annotate write counts", sc.label);
            assert_eq!(
                signs(interp.as_mut()),
                signs(comp.as_mut()),
                "{}/{kind:?}: sign state after annotate",
                sc.label
            );
            for q in &queries {
                let di = system.request_path(interp.as_mut(), q).unwrap();
                let dc = system.request_path(comp.as_mut(), q).unwrap();
                assert_eq!(di, dc, "{}/{kind:?}: decide({q})", sc.label);
            }
            for u in &updates {
                let oi = system.apply_update(interp.as_mut(), u).unwrap();
                let oc = system.apply_update(comp.as_mut(), u).unwrap();
                assert_eq!(
                    oi.removed_elements, oc.removed_elements,
                    "{}/{kind:?}: delete({u})",
                    sc.label
                );
                assert_eq!(
                    signs(interp.as_mut()),
                    signs(comp.as_mut()),
                    "{}/{kind:?}: sign state after update {u} + reannotate",
                    sc.label
                );
            }
            for q in &queries {
                let di = system.request_path(interp.as_mut(), q).unwrap();
                let dc = system.request_path(comp.as_mut(), q).unwrap();
                assert_eq!(di, dc, "{}/{kind:?}: decide({q}) after updates", sc.label);
            }
        }
    }
}

/// Invariant 2 on the serving read path: a compiled-mode engine answers
/// every workload query exactly like an interpreted-mode engine at the
/// same epoch, and its snapshot's compiled and interpreted entry points
/// agree with each other.
#[test]
fn compiled_serve_reads_match_interpreted_engine() {
    for sc in scenarios().into_iter().take(3) {
        let interp_system = std::sync::Arc::new(build(&sc, AnnotateMode::Batched));
        let comp_system = std::sync::Arc::new(build(&sc, AnnotateMode::Compiled));
        let queries = query_workload(&sc.schema, 16, sc.seed.wrapping_mul(3));
        for kind in BackendKind::ALL {
            let ie = ServeEngine::for_kind(interp_system.clone(), kind).unwrap();
            let ce = ServeEngine::for_kind(comp_system.clone(), kind).unwrap();
            assert_eq!(
                ie.accessible_count(),
                ce.accessible_count(),
                "{}/{kind:?}",
                sc.label
            );
            let snap = ce.snapshot();
            for q in &queries {
                assert_eq!(ie.query(q), ce.query(q), "{}/{kind:?}: serve({q})", sc.label);
                assert_eq!(
                    snap.query(q),
                    snap.query_compiled(q),
                    "{}/{kind:?}: snapshot({q})",
                    sc.label
                );
            }
        }
    }
}

/// Invariant 4: the compiled mode sits under the PR 3 degradation
/// ladder exactly like the interpreted modes. A one-shot injected fault
/// on the delete makes the engine roll back to the last-good
/// checkpoint; the retried sequence then converges to a state
/// byte-identical to a no-fault interpreted run, with reads served
/// throughout and no quarantine.
#[test]
fn compiled_engine_recovers_from_seeded_faults() {
    let sc = &scenarios()[0];
    // The guard only reaches the faultable delete when every designated
    // node is accessible, so pick the first generated update a live
    // annotated backend would actually grant (and that selects nodes).
    let system = build(sc, AnnotateMode::Batched);
    let mut probe_backend = BackendKind::Native.make(AnnotateMode::Batched);
    system.load(probe_backend.as_mut()).unwrap();
    system.annotate(probe_backend.as_mut()).unwrap();
    let update = delete_updates(&sc.schema, 24, sc.seed)
        .into_iter()
        .find(|u| {
            let d = system.request_path(probe_backend.as_mut(), u).unwrap();
            d.granted() && d.node_count() > 0
        })
        .expect("some generated delete is grantable");
    let update = &update;
    let probe = &query_workload(&sc.schema, 1, sc.seed)[0];
    for kind in BackendKind::ALL {
        // Reference: interpreted engine, no faults.
        let ref_engine =
            ServeEngine::for_kind(std::sync::Arc::new(build(sc, AnnotateMode::Batched)), kind)
                .unwrap();
        let ref_outcome = ref_engine.guarded_delete(update).unwrap();
        let ref_signs = ref_engine.with_writer(|b| b.sign_state().unwrap()).unwrap();

        // Compiled engine with a one-shot fault armed on the delete.
        let engine = ServeEngine::for_kind_with_faults(
            std::sync::Arc::new(build(sc, AnnotateMode::Compiled)),
            kind,
            FaultPlan::parse("after_delete:error").unwrap(),
        )
        .unwrap();
        let first = engine.guarded_delete(update);
        assert!(first.is_err(), "{kind:?}: armed fault must surface");
        assert!(!engine.quarantined(), "{kind:?}: rollback, not quarantine");
        // Reads survive the faulted write (the ladder's whole point),
        // on the compiled read path.
        let _ = engine.query(probe);
        // Retry converges to the reference state.
        let retried = engine.guarded_delete(update).unwrap();
        assert_eq!(
            retried.applied(),
            ref_outcome.applied(),
            "{kind:?}: retried outcome"
        );
        let got = engine.with_writer(|b| b.sign_state().unwrap()).unwrap();
        assert_eq!(got, ref_signs, "{kind:?}: byte-identical state after recovery");
        assert_eq!(
            engine.accessible_count(),
            ref_engine.accessible_count(),
            "{kind:?}: published snapshots agree"
        );
    }
}

/// The VM program cache is shared engine state: repeated annotation of
/// the same (policy, schema) pair across backends must hit, and the
/// hit-rate gauge publishes. (Counters are process-global, so only
/// deltas are asserted.)
#[test]
fn program_cache_hits_across_backends() {
    let sc = &scenarios()[0];
    let system = build(sc, AnnotateMode::Compiled);
    let before = xac_vmc::cache_stats();
    for kind in BackendKind::ALL {
        let mut b = kind.make(AnnotateMode::Compiled);
        system.load(b.as_mut()).unwrap();
        system.annotate(b.as_mut()).unwrap();
    }
    let after = xac_vmc::cache_stats();
    let hits = after.hits - before.hits;
    let misses = after.misses - before.misses;
    assert!(hits + misses >= 3, "three annotations consulted the cache");
    assert!(
        misses <= 1,
        "at most the first annotation compiles; the rest hit ({hits} hits, {misses} misses)"
    );
}
