//! End-to-end trace differential: one trace id must link both ends of
//! the wire.
//!
//! A client minting a [`TraceContext`](xac_obs::TraceContext) sends it
//! as the v2 frame's trailing field; the server re-enters it before
//! serving. For a single guarded update over a real TCP loopback, the
//! *same* 128-bit trace id must appear on the client's `net.client_send`
//! span, the server's `net.server_decode` and `net.queue_wait` spans,
//! the engine's `serve.update` span, and the storage layer's
//! `wal.commit` fsync span — on all three backends. The flight recorder
//! must expose the same id over the wire via `Request::Tail`, and
//! turning propagation off must degrade cleanly to untraced (id 0)
//! service.
//!
//! The trace buffer and flight recorder are process-global, so every
//! test here serializes on one mutex and drains the buffer before
//! acting.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use xac_core::System;
use xac_net::{NetClient, NetServer, ServerConfig};
use xac_policy::policy::hospital_policy;
use xac_serve::{BackendKind, DurabilityConfig, Request, Response, Role, ServeEngine};
use xac_xmlgen::{figure2_document, hospital_schema};

/// Serializes tests: they share the global trace buffer and flight
/// recorder, and a concurrent drain would eat another test's events.
static TRACE_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn system() -> System {
    System::builder(hospital_schema(), hospital_policy(), figure2_document())
        .build()
        .unwrap()
}

/// Fresh scratch dir per scenario (durable engines need one for the
/// WAL whose commit span the differential asserts on).
fn data_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xac_net_tracing_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn durable_server(kind: BackendKind, name: &str) -> (NetServer, PathBuf) {
    let dir = data_dir(name);
    let config = DurabilityConfig::new(&dir);
    let engine =
        Arc::new(ServeEngine::durable(Arc::new(system()), kind, &config).unwrap());
    let server = NetServer::start(engine, ServerConfig::default()).unwrap();
    (server, dir)
}

/// Span names that must all carry the request's trace id for one
/// guarded update: client send, server decode, admission wait, engine
/// execute, and the WAL fsync.
const LINKED_SPANS: [&str; 5] =
    ["net.client_send", "net.server_decode", "net.queue_wait", "serve.update", "wal.commit"];

#[test]
fn one_trace_id_links_client_and_server_spans_on_all_backends() {
    let _guard = lock();
    xac_obs::trace::set_enabled(true);
    for kind in BackendKind::ALL {
        let (server, dir) = durable_server(kind, kind.cli_name());
        let mut client = NetClient::connect(server.local_addr(), Role::Writer).unwrap();
        xac_obs::trace::take_events(); // start from a clean buffer

        let resp = client.request(&Request::delete("//regular")).unwrap();
        assert!(
            matches!(resp, Response::Update { applied: true, .. }),
            "{}: update must apply, got {resp:?}",
            kind.cli_name()
        );
        let trace_id = client.last_trace().expect("propagation is on by default").trace_id;
        assert_ne!(trace_id, 0, "minted trace ids are never zero");

        let events = xac_obs::trace::take_events();
        let linked: BTreeSet<&str> = events
            .iter()
            .filter(|e| e.trace_id == trace_id)
            .map(|e| e.name.as_str())
            .collect();
        for span in LINKED_SPANS {
            assert!(
                linked.contains(span),
                "{}: span `{span}` missing from trace {trace_id:#x}; linked spans: {linked:?}",
                kind.cli_name()
            );
        }

        client.close();
        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
    xac_obs::trace::set_enabled(false);
}

#[test]
fn flight_recorder_tail_over_the_wire_carries_the_same_trace_id() {
    let _guard = lock();
    let (server, dir) = durable_server(BackendKind::Native, "tail");
    let mut client = NetClient::connect(server.local_addr(), Role::Admin).unwrap();

    let resp = client.request(&Request::delete("//regular")).unwrap();
    assert!(matches!(resp, Response::Update { applied: true, .. }));
    let trace_id = client.last_trace().unwrap().trace_id;

    match client.tail(16).unwrap() {
        Response::Tail { records } => {
            let rec = records
                .iter()
                .find(|r| r.trace_id == trace_id)
                .unwrap_or_else(|| panic!("no flight record for trace {trace_id:#x}"));
            assert_eq!(rec.verb, "delete");
            assert_eq!(rec.outcome, "applied");
            assert!(rec.total_us >= rec.execute_us, "phases must sum into the total");
        }
        other => panic!("expected tail records, got {other:?}"),
    }

    client.close();
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn propagation_off_serves_identically_with_a_zero_trace_id() {
    let _guard = lock();
    xac_obs::trace::set_enabled(true);
    let (server, dir) = durable_server(BackendKind::Native, "off");
    let mut client = NetClient::connect(server.local_addr(), Role::Writer).unwrap();
    client.set_propagation(false);
    xac_obs::trace::take_events();

    let resp = client.request(&Request::delete("//regular")).unwrap();
    assert!(matches!(resp, Response::Update { applied: true, .. }));
    assert!(client.last_trace().is_none(), "no context is minted with propagation off");

    // The server still serves and still records its phase spans — they
    // just carry no trace id (0 = untraced).
    let events = xac_obs::trace::take_events();
    let decode = events
        .iter()
        .find(|e| e.name == "net.server_decode")
        .expect("decode span is recorded even for untraced requests");
    assert_eq!(decode.trace_id, 0);
    let send = events
        .iter()
        .find(|e| e.name == "net.client_send")
        .expect("the send span is still measured with propagation off");
    assert_eq!(send.trace_id, 0, "no minted context means an untraced send");

    client.close();
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    xac_obs::trace::set_enabled(false);
}
