//! End-to-end verification of every concrete artifact the paper derives
//! from its motivating example: Table 1, Table 3, the Figure 2
//! annotations, the §5.2 SQL translations, the annotation query, and the
//! §5.3 trigger walkthroughs.

use xac_core::{Backend, NativeXmlBackend, RelationalBackend, System};
use xac_policy::policy::hospital_policy;
use xac_policy::Effect;
use xac_xmlgen::{figure2_document, hospital_schema};

fn system() -> System {
    System::builder(hospital_schema(), hospital_policy(), figure2_document()).build().unwrap()
}

#[test]
fn table1_policy_parses_with_signs() {
    let p = hospital_policy();
    let expect = [
        ("R1", "//patient", Effect::Allow),
        ("R2", "//patient/name", Effect::Allow),
        ("R3", "//patient[treatment]", Effect::Deny),
        ("R4", "//patient[treatment]/name", Effect::Allow),
        ("R5", "//patient[.//experimental]", Effect::Deny),
        ("R6", "//regular", Effect::Allow),
        ("R7", "//regular[med = \"celecoxib\"]", Effect::Allow),
        ("R8", "//regular[bill > 1000]", Effect::Allow),
    ];
    assert_eq!(p.len(), expect.len());
    for (id, resource, effect) in expect {
        let r = p.rule(id).unwrap_or_else(|| panic!("{id} missing"));
        assert_eq!(r.resource.to_string(), resource);
        assert_eq!(r.effect, effect);
    }
}

#[test]
fn table3_redundancy_free_policy() {
    let s = system();
    let ids: Vec<&str> = s.policy().rules.iter().map(|r| r.id.as_str()).collect();
    assert_eq!(ids, vec!["R1", "R2", "R3", "R5", "R6"]);
}

/// Figure 2's annotation labels, node by node.
#[test]
fn figure2_annotations_match_paper() {
    let s = system();
    let mut b = NativeXmlBackend::new();
    s.load(&mut b).unwrap();
    s.annotate(&mut b).unwrap();

    let sdoc = b.stored().unwrap();
    let doc = sdoc.doc();
    let sign = |q: &str| -> Vec<Option<char>> {
        xac_xpath::eval(doc, &xac_xpath::parse(q).unwrap())
            .into_iter()
            .map(|n| sdoc.sign_of(n))
            .collect()
    };

    // patients: (−)(−)(+) — only signs differing from the deny default
    // are materialized, so "−" appears as no annotation.
    assert_eq!(sign("//patient"), vec![None, None, Some('+')]);
    // names: all (+).
    assert_eq!(sign("//patient/name"), vec![Some('+'); 3]);
    // psn / treatment / med / test / experimental: (−).
    for denied in ["//psn", "//treatment", "//med", "//test", "//experimental"] {
        assert!(sign(denied).iter().all(Option::is_none), "{denied} must be denied");
    }
    // regular: (+) by R6.
    assert_eq!(sign("//regular"), vec![Some('+')]);
}

/// §5.2: the SQL the paper prints for rules R1 and R7.
#[test]
fn paper_sql_translations() {
    let schema = hospital_schema();
    // Q1 is a scan/join on patients→patient; the paper keeps the
    // patients context (ours elides it because the patient table already
    // contains exactly the patient nodes — same result set).
    let q1 = xac_shrex::translate(&xac_xpath::parse("//patient").unwrap(), &schema).unwrap();
    assert_eq!(q1, "SELECT patient1.id FROM patient patient1");

    let q7 = xac_shrex::translate(
        &xac_xpath::parse("//regular[med = \"celecoxib\"]").unwrap(),
        &schema,
    )
    .unwrap();
    assert!(q7.contains("med"), "{q7}");
    assert!(q7.contains(".pid = "), "{q7}");
    assert!(q7.contains("= 'celecoxib'"), "{q7}");
}

/// The annotation query of §5.2:
/// `(Q1 UNION Q2 UNION Q6) EXCEPT (Q3 UNION Q5)`.
#[test]
fn annotation_query_matches_paper() {
    let s = system();
    let q = xac_core::annotator::annotation_query(s.policy());
    assert_eq!(
        q.describe(),
        "(//patient UNION //patient/name UNION //regular) \
         EXCEPT (//patient[treatment] UNION //patient[.//experimental])"
    );
    let mut rel = RelationalBackend::row();
    s.load(&mut rel).unwrap();
    let sql = rel.render_annotation_sql(&q).unwrap();
    assert!(sql.contains(") EXCEPT ("), "{sql}");
}

/// §5.3 walkthrough 1: deleting `//patient/treatment` triggers R3 whose
/// dependency pulls in R1.
#[test]
fn trigger_walkthrough_treatment_child() {
    let s = system();
    let plan = s.plan_update(&xac_xpath::parse("//patient/treatment").unwrap());
    let ids = plan.triggered_ids();
    assert!(ids.contains(&"R1"), "{ids:?}");
    assert!(ids.contains(&"R3"), "{ids:?}");
}

/// §5.3 walkthrough 2: deleting `//treatment` reaches R5 only through
/// the schema-guided expansion of its `.//experimental` predicate.
#[test]
fn trigger_walkthrough_all_treatments() {
    let s = system();
    let plan = s.plan_update(&xac_xpath::parse("//treatment").unwrap());
    let ids = plan.triggered_ids();
    assert!(ids.contains(&"R5"), "{ids:?}");
    assert!(ids.contains(&"R1"), "dependency closure pulls R1: {ids:?}");
    // Without the schema, R5's own expansion keeps the descendant axis
    // (`//patient//experimental`) and is containment-unrelated to the
    // update — the rule only fires directly thanks to the rewrite. (In
    // the full policy it would still be dragged in transitively through
    // the R1–R3–R5 dependency component.)
    let u = xac_xpath::parse("//treatment").unwrap();
    let r5 = s.policy().rule("R5").unwrap();
    let direct_hit = |schema: Option<&xac_xml::Schema>| {
        xac_xpath::expand(&r5.resource, schema)
            .iter()
            .any(|x| x.contained_in(&u) || u.contained_in(x))
    };
    assert!(!direct_hit(None), "schema-less expansion must miss R5");
    assert!(direct_hit(Some(s.schema())), "schema expansion must hit R5");
}

/// The full §5.3 story on every backend: delete all treatments and the
/// previously-denied patients become accessible.
#[test]
fn update_makes_patients_accessible_everywhere() {
    let s = system();
    let u = xac_xpath::parse("//treatment").unwrap();
    let mut backends: Vec<Box<dyn Backend>> = vec![
        Box::new(RelationalBackend::row()),
        Box::new(RelationalBackend::column()),
        Box::new(NativeXmlBackend::new()),
    ];
    for b in backends.iter_mut() {
        s.load(b.as_mut()).unwrap();
        s.annotate(b.as_mut()).unwrap();
        assert!(!s.request(b.as_mut(), "//patient").unwrap().granted());
        s.apply_update(b.as_mut(), &u).unwrap();
        assert!(
            s.request(b.as_mut(), "//patient").unwrap().granted(),
            "{}: patients must be accessible once no treatment exists",
            b.name()
        );
    }
}

/// All-or-nothing answering on the annotated Figure 2 document.
#[test]
fn requester_decisions() {
    let s = system();
    let mut b = NativeXmlBackend::new();
    s.load(&mut b).unwrap();
    s.annotate(&mut b).unwrap();
    for (query, granted) in [
        ("//patient/name", true),
        ("//name", true),
        ("//patient", false),
        ("//patient[treatment]", false),
        ("//regular", true),
        ("//experimental", false),
        ("//regular/med", false),
        ("//hospital", false),
        ("//absent", true), // vacuous
    ] {
        let d = s.request(&mut b, query).unwrap();
        assert_eq!(d.granted(), granted, "{query}");
    }
}
