//! Non-flaky, count-based checks that the experimental *shapes* reported
//! in §7 hold in this reproduction (timing-based shape checks live in the
//! benchmark harness, where release builds make them meaningful).

use xac_core::{Backend, NativeXmlBackend, RelationalBackend, System};
use xac_xmlgen::{
    actual_coverage, coverage_policy, coverage_policy_dataset, delete_updates, xmark_document,
    xmark_schema, XmarkConfig,
};

/// Table 5 shape: the SQL artifact is larger than the XML artifact at
/// small factors and document size grows monotonically with the factor.
#[test]
fn table5_artifact_sizes() {
    // Factors below ~0.003 all hit the generator's minimum-count floors
    // (a handful of items/people), so start the growth check above them.
    let mut last_xml = 0usize;
    for factor in [0.005, 0.02, 0.08] {
        let doc = xmark_document(XmarkConfig::with_factor(factor));
        let policy = coverage_policy(&doc, 0.3, 1);
        let s = System::builder(xmark_schema(), policy, doc).build().unwrap();
        let xml = s.prepared().xml_bytes();
        let sql = s.prepared().sql_bytes();
        assert!(xml > last_xml, "XML size must grow with factor");
        assert!(sql > xml, "INSERT text is bulkier than XML at factor {factor}");
        last_xml = xml;
    }
}

/// Figure 11 shape: annotation work (sign writes) grows with policy
/// coverage on every backend.
#[test]
fn annotation_work_grows_with_coverage() {
    let doc = xmark_document(XmarkConfig::with_factor(0.005));
    let dataset = coverage_policy_dataset(&doc, &[0.25, 0.45, 0.65], 2);
    let mut backends: Vec<Box<dyn Backend>> = vec![
        Box::new(RelationalBackend::row()),
        Box::new(RelationalBackend::column()),
        Box::new(NativeXmlBackend::new()),
    ];
    for b in backends.iter_mut() {
        let mut last = 0usize;
        for (target, policy) in &dataset {
            let s = System::builder(xmark_schema(), policy.clone(), doc.clone()).build().unwrap();
            s.load(b.as_mut()).unwrap();
            let writes = s.annotate(b.as_mut()).unwrap();
            assert!(
                writes >= last,
                "{}: writes decreased at coverage {target}",
                b.name()
            );
            last = writes;
        }
        assert!(last > 0);
    }
}

/// Coverage targets are realized: the dataset spans the paper's ~25–70%
/// band.
#[test]
fn coverage_dataset_spans_band() {
    let doc = xmark_document(XmarkConfig::with_factor(0.005));
    let low = coverage_policy(&doc, 0.25, 3);
    let high = coverage_policy(&doc, 0.7, 3);
    let low_cov = actual_coverage(&doc, &low);
    let high_cov = actual_coverage(&doc, &high);
    assert!((0.15..=0.45).contains(&low_cov), "low {low_cov:.2}");
    assert!(high_cov >= 0.6, "high {high_cov:.2}");
    assert!(high_cov > low_cov + 0.2);
}

/// Figure 12 shape, in operation counts: across an update workload, the
/// Trigger-planned partial pass writes far fewer signs than from-scratch
/// annotation — the mechanism behind the paper's 5–9× speedups.
#[test]
fn partial_reannotation_writes_fraction_of_full() {
    let doc = xmark_document(XmarkConfig::with_factor(0.01));
    let policy = coverage_policy(&doc, 0.5, 7);
    let s = System::builder(xmark_schema(), policy, doc).build().unwrap();
    let mut b = NativeXmlBackend::new();

    let mut partial_writes = 0usize;
    let mut full_writes = 0usize;
    for u in delete_updates(&xmark_schema(), 12, 9) {
        s.load(&mut b).unwrap();
        s.annotate(&mut b).unwrap();
        let outcome = s.apply_update(&mut b, &u).unwrap();
        partial_writes += outcome.sign_writes;

        s.load(&mut b).unwrap();
        s.annotate(&mut b).unwrap();
        b.delete(&u).unwrap();
        full_writes += s.full_reannotate(&mut b).unwrap();
    }
    assert!(
        (partial_writes as f64) < 0.5 * full_writes as f64,
        "partial {partial_writes} vs full {full_writes}"
    );
}

/// Loading artifact shape behind Figure 9: the relational stores execute
/// one INSERT statement per element while the native store parses once;
/// statement count equals element count.
#[test]
fn relational_load_is_statement_per_element() {
    let doc = xmark_document(XmarkConfig::with_factor(0.002));
    let policy = coverage_policy(&doc, 0.3, 5);
    let s = System::builder(xmark_schema(), policy, doc).build().unwrap();
    let statements = s.prepared().sql_text.lines().count();
    assert_eq!(statements, s.prepared().doc.element_count());
}

/// The §7.2 response-time observation is structural: every request costs
/// the relational store a per-table sweep, while the native store walks
/// the tree index. Check both return identical decisions on a workload
/// (the timing factor itself is measured in the bench harness).
#[test]
fn response_decisions_stable_under_updates() {
    let doc = xmark_document(XmarkConfig::with_factor(0.002));
    let policy = coverage_policy(&doc, 0.5, 13);
    let s = System::builder(xmark_schema(), policy, doc).build().unwrap();
    let u = xac_xpath::parse("//mailbox/mail").unwrap();

    let mut native = NativeXmlBackend::new();
    let mut rel = RelationalBackend::column();
    for b in [&mut native as &mut dyn Backend, &mut rel as &mut dyn Backend] {
        s.load(b).unwrap();
        s.annotate(b).unwrap();
        s.apply_update(b, &u).unwrap();
    }
    for q in xac_xmlgen::query_workload(&xmark_schema(), 25, 15) {
        let dn = s.request_path(&mut native, &q).unwrap();
        let dr = s.request_path(&mut rel, &q).unwrap();
        assert_eq!(dn.granted(), dr.granted(), "{q}");
        assert_eq!(dn.node_count(), dr.node_count(), "{q}");
    }
}
