//! Loopback differential suite: the wire path must be a pure codec.
//!
//! Two engines are built from identical systems; one is fronted by a
//! real TCP server, the other driven in process through
//! `ServeEngine::serve_as`. The same scenario — queries, an applied
//! delete, a guard-denied delete, an insert, a denied-role attempt,
//! status — runs on both, and every wire [`Response`] must equal the
//! in-process one (`Response` is `Eq`, and the codec round-trips
//! bit-exactly, so equal values *are* equal bytes). Afterwards the two
//! engines' full sign states must be byte-identical, on all three
//! backends. A second leg repeats the exercise with a network fault
//! plan armed on the client — requests the faults eat never reach
//! either engine, and the surviving ones still match.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;
use xac_core::{FaultPlan, System};
use xac_net::{split_net_plan, NetClient, NetServer, ServerConfig, WireError};
use xac_policy::policy::hospital_policy;
use xac_serve::{BackendKind, ErrorKind, Request, Response, Role, ServeEngine};
use xac_xmlgen::{figure2_document, hospital_schema};

fn system() -> System {
    System::builder(hospital_schema(), hospital_policy(), figure2_document())
        .build()
        .unwrap()
}

fn engine(kind: BackendKind) -> Arc<ServeEngine> {
    Arc::new(ServeEngine::for_kind(Arc::new(system()), kind).unwrap())
}

fn sign_state(engine: &ServeEngine) -> BTreeMap<i64, char> {
    engine.with_writer(|b| b.sign_state().unwrap()).unwrap()
}

/// The differential scenario: (role, request) steps covering every
/// request kind, applied and denied updates, and a role refusal.
fn scenario() -> Vec<(Role, Request)> {
    vec![
        (Role::Reader, Request::query("//patient/name")),
        (Role::Reader, Request::query("//med")),
        (Role::Reader, Request::Status),
        // Role refusal: answered before the engine, identically on both
        // paths.
        (Role::Reader, Request::delete("//regular")),
        // Guard-denied delete: reaches the engine, is refused by the
        // write-access check.
        (Role::Writer, Request::delete("//med")),
        // Applied update: re-annotates and publishes a new epoch.
        (Role::Writer, Request::delete("//regular")),
        (Role::Reader, Request::query("//regular")),
        (Role::Writer, Request::insert("//patient[psn = \"099\"]", "treatment", None)),
        // Malformed query: typed parse error, engine untouched.
        (Role::Reader, Request::query("//[broken")),
        (Role::Reader, Request::Status),
    ]
}

fn differential(kind: BackendKind) {
    let wire_engine = engine(kind);
    let ref_engine = engine(kind);
    let server = NetServer::start(Arc::clone(&wire_engine), ServerConfig::default()).unwrap();
    let addr = server.local_addr();

    // One session per role, as a real deployment would hold them.
    let mut sessions: BTreeMap<&'static str, NetClient> = BTreeMap::new();
    for (i, (role, req)) in scenario().into_iter().enumerate() {
        let session = sessions.entry(role.name()).or_insert_with(|| {
            NetClient::connect(addr, role).unwrap_or_else(|e| {
                panic!("{}: cannot connect as {role}: {e}", kind.cli_name())
            })
        });
        let over_wire = session
            .request(&req)
            .unwrap_or_else(|e| panic!("{}: step {i} broke the wire: {e}", kind.cli_name()));
        let in_process = ref_engine.serve_as(role, &req);
        assert_eq!(
            over_wire,
            in_process,
            "{}: step {i} ({role} {}) diverged between wire and in-process",
            kind.cli_name(),
            req.verb()
        );
    }
    for (_, session) in sessions {
        session.close();
    }
    server.shutdown();

    assert_eq!(
        sign_state(&wire_engine),
        sign_state(&ref_engine),
        "{}: sign state diverged after the scenario",
        kind.cli_name()
    );
    assert_eq!(wire_engine.epoch(), ref_engine.epoch(), "{}", kind.cli_name());

    // The engines did identical work, so their metrics agree on every
    // request-outcome counter (the role refusal never reached either).
    let (wm, rm) = (wire_engine.metrics(), ref_engine.metrics());
    assert_eq!(wm.reads_issued(), rm.reads_issued(), "{}", kind.cli_name());
    assert_eq!(wm.updates_applied, rm.updates_applied, "{}", kind.cli_name());
    assert_eq!(wm.updates_denied, rm.updates_denied, "{}", kind.cli_name());
    assert_eq!(wm.read_errors, rm.read_errors, "{}", kind.cli_name());
}

#[test]
fn wire_equals_in_process_native() {
    differential(BackendKind::Native);
}

#[test]
fn wire_equals_in_process_row() {
    differential(BackendKind::Row);
}

#[test]
fn wire_equals_in_process_column() {
    differential(BackendKind::Column);
}

/// The same differential discipline under a network fault plan: the
/// oversized frame and the mid-frame disconnect each eat one request
/// before it reaches the engine, the slow client within the timeout is
/// served normally, and everything that *was* served matches the
/// in-process reference — including the final sign state.
fn differential_with_net_faults(kind: BackendKind) {
    let wire_engine = engine(kind);
    let ref_engine = engine(kind);
    let server = NetServer::start(
        Arc::clone(&wire_engine),
        ServerConfig { read_timeout: Duration::from_secs(2), ..ServerConfig::default() },
    )
    .unwrap();
    let addr = server.local_addr();

    // Mixed plan, as `--fault-plan` would carry it: the net half arms
    // the client, the backend half (empty here) the engine.
    let mixed =
        FaultPlan::parse("net_oversized_frame,net_mid_frame_disconnect,net_slow_client")
            .unwrap();
    let (backend_half, net_half) = split_net_plan(&mixed);
    assert!(backend_half.is_exhausted(), "no backend points in this plan");
    assert_eq!(net_half.specs().len(), 3);

    // Each fault kills (or spends) its session, so each leg arms a
    // fresh connection with its own single-point slice of the plan.
    let leg = |point: &str| {
        NetClient::connect_with(
            addr,
            Role::Writer,
            FaultPlan::parse(point).unwrap(),
            // Stalls inside the server's patience: the slow leg must
            // still be served.
            Duration::from_millis(50),
        )
        .unwrap()
    };

    // Leg 1 — oversized frame eats the query before it is ever sent:
    // typed protocol error, engine untouched on both sides.
    let mut session = leg("net_oversized_frame");
    match session.query("//patient/name").unwrap() {
        Response::Error { kind: ErrorKind::Protocol, .. } => {}
        other => panic!("{}: expected protocol error, got {other:?}", kind.cli_name()),
    }
    assert!(session.is_dead());

    // Leg 2 — mid-frame disconnect tears the delete; it must NOT have
    // reached the engine (no half-applied update, no epoch bump).
    session = leg("net_mid_frame_disconnect");
    let epoch_before = wire_engine.epoch();
    assert_eq!(session.delete("//regular"), Err(WireError::Closed));
    assert_eq!(wire_engine.epoch(), epoch_before, "{}", kind.cli_name());

    // Leg 3 — slow client inside the timeout: served normally.
    session = leg("net_slow_client");
    let over_wire = session.query("//patient/name").unwrap();
    assert_eq!(
        over_wire,
        ref_engine.serve_as(Role::Reader, &Request::query("//patient/name")),
        "{}",
        kind.cli_name()
    );

    // The plan is spent; the delete now goes through on both engines.
    let wire_delete = session.delete("//regular").unwrap();
    let ref_delete = ref_engine.serve_as(Role::Writer, &Request::delete("//regular"));
    assert_eq!(wire_delete, ref_delete, "{}", kind.cli_name());
    assert!(matches!(wire_delete, Response::Update { applied: true, .. }));

    session.close();
    server.shutdown();

    assert_eq!(
        sign_state(&wire_engine),
        sign_state(&ref_engine),
        "{}: sign state diverged under the net fault plan",
        kind.cli_name()
    );
    // The engine never saw the eaten requests: reads match the
    // reference exactly (fault handling is transport-level).
    assert_eq!(
        wire_engine.metrics().reads_issued(),
        ref_engine.metrics().reads_issued(),
        "{}",
        kind.cli_name()
    );
}

#[test]
fn net_faults_differential_native() {
    differential_with_net_faults(BackendKind::Native);
}

#[test]
fn net_faults_differential_row() {
    differential_with_net_faults(BackendKind::Row);
}

#[test]
fn net_faults_differential_column() {
    differential_with_net_faults(BackendKind::Column);
}

/// `split_net_plan` partitions a mixed plan faithfully: order, actions
/// and counts survive, and nothing is lost or duplicated.
#[test]
fn split_net_plan_partitions_mixed_plans() {
    let mixed = FaultPlan::parse(
        "after_delete:panic,net_slow_client,mid_reannotate@3:error*2,net_oversized_frame+1",
    )
    .unwrap();
    let (backend, net) = split_net_plan(&mixed);
    assert_eq!(backend.to_string(), "after_delete:panic,mid_reannotate@3:error*2");
    assert_eq!(net.to_string(), "net_slow_client:error,net_oversized_frame:error+1");
    assert_eq!(backend.specs().len() + net.specs().len(), mixed.specs().len());
}
