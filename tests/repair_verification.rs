//! Property suite for the incremental analysis engine and the repair
//! synthesizer, over SplitMix64-seeded random policies against the
//! hospital (§1.1) and XMark-like (§7) schemas.
//!
//! Two properties, each checked on every mutation step:
//!
//! 1. **Incremental fidelity** — the cache-backed
//!    [`IncrementalAnalyzer`] renders byte-identical reports (text and
//!    JSON) to a from-scratch [`Analyzer`] run, for every policy in a
//!    random mutation walk.
//! 2. **Repair soundness** — every synthesis run over a mutant ends
//!    with a gating-clean policy (dead and shadowed rules are always
//!    repairable), and the repaired policy annotates **byte-identically
//!    to the original on all three backends** for every node whose
//!    element type no accepted repair could have touched.

use std::collections::{BTreeMap, BTreeSet};
use xac_analyze::{synthesize, Analyzer, IncrementalAnalyzer, RepairConfig};
use xac_core::{Backend, NativeXmlBackend, RelationalBackend, System};
use xac_policy::Policy;
use xac_xml::{Document, Schema};
use xac_xmlgen::{
    figure2_document, hospital_schema, xmark_document, xmark_schema, SplitMix64, XmarkConfig,
};
use xac_xpath::{schema_variants, NodeTest, Path};

fn backends() -> Vec<Box<dyn Backend>> {
    vec![
        Box::new(NativeXmlBackend::new()),
        Box::new(RelationalBackend::row()),
        Box::new(RelationalBackend::column()),
    ]
}

/// A random but always-parseable policy source over `schema`'s types.
struct PolicyGen {
    types: Vec<String>,
    /// `(parent, child)` pairs of the element graph, for `//p/c` rules
    /// and `[c]` qualifiers.
    edges: Vec<(String, String)>,
    next_id: usize,
}

impl PolicyGen {
    fn new(schema: &Schema) -> PolicyGen {
        let types: Vec<String> =
            schema.reachable_types().into_iter().map(str::to_string).collect();
        let mut edges = Vec::new();
        for t in &types {
            for c in schema.child_types(t) {
                edges.push((t.clone(), c.to_string()));
            }
        }
        PolicyGen { types, edges, next_id: 1 }
    }

    fn rule_line(&mut self, rng: &mut SplitMix64) -> String {
        let id = format!("R{}", self.next_id);
        self.next_id += 1;
        let effect = if rng.gen_bool(0.5) { "allow" } else { "deny" };
        let resource = match rng.gen_range(0..3u32) {
            0 => {
                let t = &self.types[rng.gen_range(0..self.types.len())];
                format!("//{t}")
            }
            1 if !self.edges.is_empty() => {
                let (p, c) = &self.edges[rng.gen_range(0..self.edges.len())];
                format!("//{p}/{c}")
            }
            _ if !self.edges.is_empty() => {
                let (p, c) = &self.edges[rng.gen_range(0..self.edges.len())];
                format!("//{p}[{c}]")
            }
            _ => {
                let t = &self.types[rng.gen_range(0..self.types.len())];
                format!("//{t}")
            }
        };
        format!("{id} {effect} {resource}")
    }

    fn source(&self, conflict: &str, rules: &[String]) -> String {
        let mut out = format!("default deny\nconflict {conflict}\n");
        for r in rules {
            out.push_str(r);
            out.push('\n');
        }
        out
    }
}

/// One random mutation of the rule list (always leaves a parseable
/// policy with at least one rule).
fn mutate(gen: &mut PolicyGen, rng: &mut SplitMix64, rules: &mut Vec<String>) {
    match rng.gen_range(0..4u32) {
        0 if rules.len() > 1 => {
            let i = rng.gen_range(0..rules.len());
            rules.remove(i);
        }
        1 => {
            // Flip one rule's effect in place.
            let i = rng.gen_range(0..rules.len());
            let flipped = if rules[i].contains(" allow ") {
                rules[i].replacen(" allow ", " deny ", 1)
            } else {
                rules[i].replacen(" deny ", " allow ", 1)
            };
            rules[i] = flipped;
        }
        _ => {
            let line = gen.rule_line(rng);
            rules.push(line);
        }
    }
}

/// The end label of a specialized path; `None` for wildcard ends.
fn end_label(p: &Path) -> Option<String> {
    match &p.steps.last()?.test {
        NodeTest::Name(n) => Some(n.clone()),
        NodeTest::Wildcard => None,
    }
}

/// Element types a rule can sign under `schema`; `None` when unbounded.
fn rule_labels(resource: &Path, schema: &Schema) -> Option<BTreeSet<String>> {
    schema_variants(resource, schema).iter().map(end_label).collect()
}

fn sign_map(schema: &Schema, doc: &Document, policy: &Policy) -> Vec<BTreeMap<i64, char>> {
    let system = System::builder(schema.clone(), policy.clone(), doc.clone())
        .build()
        .expect("system builds");
    backends()
        .into_iter()
        .map(|mut b| {
            system.load(b.as_mut()).expect("load");
            system.annotate(b.as_mut()).expect("annotate");
            b.sign_state().expect("sign state")
        })
        .collect()
}

/// Property 1: the incremental engine is indistinguishable from the
/// from-scratch analyzer across a random mutation walk.
fn incremental_matches_full(schema: &Schema, seed: u64, steps: usize) {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut gen = PolicyGen::new(schema);
    let mut rules: Vec<String> = (0..6).map(|_| gen.rule_line(&mut rng)).collect();
    let conflict = "deny-overrides";
    let src = gen.source(conflict, &rules);
    let policy = Policy::parse(&src).expect("seed policy parses");
    let mut engine =
        IncrementalAnalyzer::new(policy, Some(schema)).named("p.pol", None);
    for step in 0..steps {
        mutate(&mut gen, &mut rng, &mut rules);
        let src = gen.source(conflict, &rules);
        let policy = Policy::parse(&src).expect("mutant parses");
        engine.set_policy(policy.clone());
        let fast = engine.analyze();
        let full = Analyzer::new(&policy)
            .with_schema(schema)
            .named("p.pol", None)
            .run();
        assert_eq!(
            fast.to_json(),
            full.to_json(),
            "incremental and full reports diverge at seed {seed} step {step}\n{src}"
        );
        assert_eq!(fast.to_text(), full.to_text(), "seed {seed} step {step}");
    }
}

/// Property 2: synthesis over a mutant clears every gating finding and
/// leaves sign state untouched outside the repaired element types.
fn repairs_verify(schema: &Schema, doc: &Document, seed: u64) {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut gen = PolicyGen::new(schema);
    let mut rules: Vec<String> = (0..5).map(|_| gen.rule_line(&mut rng)).collect();
    for _ in 0..4 {
        mutate(&mut gen, &mut rng, &mut rules);
    }
    let src = gen.source("deny-overrides", &rules);
    let original = Policy::parse(&src).expect("mutant parses");
    let mut engine =
        IncrementalAnalyzer::new(original.clone(), Some(schema)).named("p.pol", None);
    let cfg = RepairConfig { deny_warnings: true, fix_infos: false };
    let outcome = synthesize(&mut engine, &src, "p.pol", Some(doc), &cfg);

    // Dead and shadowed rules are always repairable (delete is a
    // verified fallback), so the walk must end gating-clean.
    assert_eq!(
        outcome.report.exit_code(true),
        0,
        "seed {seed} left gating findings:\n{}\npolicy:\n{src}",
        outcome.report.to_text()
    );
    if outcome.repairs.is_empty() {
        assert!(outcome.diff.is_empty(), "no repairs but a diff at seed {seed}");
        return;
    }

    // Collect the element types any accepted repair could touch: the
    // labels of every rule named by a repair (in the original and the
    // repaired policy) plus every appended rule. A wildcard-ended rule
    // makes the footprint unbounded — nothing is provably untouched.
    let mut affected: BTreeSet<String> = BTreeSet::new();
    let mut bounded = true;
    let original_ids: BTreeSet<&str> =
        original.rules.iter().map(|r| r.id.as_str()).collect();
    for repair in &outcome.repairs {
        let Some(id) = &repair.rule else { continue };
        for policy in [&original, &outcome.policy] {
            if let Some(rule) = policy.rule(id) {
                match rule_labels(&rule.resource, schema) {
                    Some(labels) => affected.extend(labels),
                    None => bounded = false,
                }
            }
        }
    }
    for rule in &outcome.policy.rules {
        if !original_ids.contains(rule.id.as_str()) {
            match rule_labels(&rule.resource, schema) {
                Some(labels) => affected.extend(labels),
                None => bounded = false,
            }
        }
    }
    if !bounded {
        return;
    }

    let before = sign_map(schema, doc, &original);
    let after = sign_map(schema, doc, &outcome.policy);
    let names: BTreeMap<i64, String> = doc
        .all_elements()
        .map(|n| (n.index() as i64, doc.name(n).unwrap_or("").to_string()))
        .collect();
    for (b, (old, new)) in before.iter().zip(after.iter()).enumerate() {
        let ids: BTreeSet<&i64> = old.keys().chain(new.keys()).collect();
        for id in ids {
            let name = names.get(id).map(String::as_str).unwrap_or("");
            if affected.contains(name) {
                continue;
            }
            assert_eq!(
                old.get(id),
                new.get(id),
                "backend #{b} sign changed on unaffected `{name}` (node {id}) \
                 at seed {seed}\nrepairs: {:?}\npolicy:\n{src}",
                outcome.repairs
            );
        }
    }
}

#[test]
fn incremental_analysis_matches_full_reports_on_hospital_mutations() {
    let schema = hospital_schema();
    for seed in [1u64, 2, 3, 4] {
        incremental_matches_full(&schema, seed, 8);
    }
}

#[test]
fn incremental_analysis_matches_full_reports_on_xmark_mutations() {
    let schema = xmark_schema();
    for seed in [11u64, 12] {
        incremental_matches_full(&schema, seed, 5);
    }
}

#[test]
fn repairs_clear_findings_and_preserve_unaffected_signs_on_hospital() {
    let schema = hospital_schema();
    let doc = figure2_document();
    for seed in [21u64, 22, 23, 24, 25] {
        repairs_verify(&schema, &doc, seed);
    }
}

#[test]
fn repairs_clear_findings_and_preserve_unaffected_signs_on_xmark() {
    let schema = xmark_schema();
    let doc = xmark_document(XmarkConfig::with_factor(0.01));
    for seed in [31u64, 32] {
        repairs_verify(&schema, &doc, seed);
    }
}
