//! End-to-end tests for the `xac-analyze` static policy verifier: the
//! flawed fixture must surface all five diagnostic codes with the
//! documented severities, the checked-in example policies must come out
//! clean, and the D5 audit must prove trigger soundness across all
//! three backends.

use xac_analyze::{Analyzer, Code, Report, Severity};
use xac_policy::Policy;
use xac_xml::{parse_dtd, Document, Schema};

fn data(name: &str) -> String {
    let path = format!("{}/../../data/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

fn example_policy(name: &str) -> String {
    let path = format!("{}/../../examples/policies/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

fn hospital_schema() -> Schema {
    parse_dtd(&data("hospital.dtd")).unwrap()
}

fn analyze_flawed() -> (String, Report) {
    let src = example_policy("flawed_all5.pol");
    let policy = Policy::parse(&src).unwrap();
    let schema = hospital_schema();
    let report = Analyzer::new(&policy)
        .with_schema(&schema)
        .with_source(&src)
        .named("flawed_all5.pol", Some("hospital.dtd".into()))
        .run();
    (src, report)
}

#[test]
fn flawed_fixture_reports_all_five_codes() {
    let (_, report) = analyze_flawed();
    assert_eq!(
        report.codes(),
        vec!["XA001", "XA002", "XA003", "XA004", "XA005"],
        "{}",
        report.to_text()
    );
}

#[test]
fn flawed_fixture_severities_match_the_catalog() {
    let (_, report) = analyze_flawed();
    let severity_of = |code: Code| -> Vec<Severity> {
        report.diagnostics.iter().filter(|d| d.code == code).map(|d| d.severity).collect()
    };
    assert_eq!(severity_of(Code::DeadRule), vec![Severity::Error]);
    assert_eq!(severity_of(Code::ShadowedRule), vec![Severity::Warning]);
    assert!(severity_of(Code::Conflict).iter().all(|s| *s == Severity::Info));
    assert!(!severity_of(Code::Conflict).is_empty());
    assert_eq!(severity_of(Code::CoverageGap), vec![Severity::Info]);
    assert_eq!(severity_of(Code::TriggerAudit), vec![Severity::Info], "audit is sound");
}

#[test]
fn flawed_fixture_findings_carry_rule_spans() {
    let (src, report) = analyze_flawed();
    let dead = report.diagnostics.iter().find(|d| d.code == Code::DeadRule).unwrap();
    assert_eq!(dead.rule.as_deref(), Some("F3"));
    let line = dead.line.expect("dead rule carries a line span");
    assert!(
        src.lines().nth(line - 1).unwrap().starts_with("F3"),
        "line {line} should hold F3"
    );
    let shadowed =
        report.diagnostics.iter().find(|d| d.code == Code::ShadowedRule).unwrap();
    assert_eq!(shadowed.rule.as_deref(), Some("F4"));
    assert!(shadowed.message.contains("F2"), "{}", shadowed.message);
}

#[test]
fn flawed_fixture_gates_the_exit_code() {
    let (_, report) = analyze_flawed();
    assert_eq!(report.exit_code(false), 5, "errors always gate");
    assert_eq!(report.exit_code(true), 5, "errors dominate denied warnings");
}

#[test]
fn flawed_fixture_renders_to_text_and_valid_json() {
    let (_, report) = analyze_flawed();
    let text = report.to_text();
    for code in ["XA001", "XA002", "XA003", "XA004", "XA005"] {
        assert!(text.contains(code), "text output missing {code}:\n{text}");
    }
    assert!(text.contains("error[XA001] flawed_all5.pol:"), "{text}");
    let json = report.to_json();
    xac_obs::validate_json(&json).expect("report JSON validates");
    for code in ["XA001", "XA002", "XA003", "XA004", "XA005"] {
        assert!(json.contains(code), "JSON output missing {code}:\n{json}");
    }
    assert!(json.contains("\"severity\": \"error\""), "{json}");
    assert!(json.contains("\"audit\""), "{json}");
}

#[test]
fn checked_in_policies_are_clean_under_deny_warn() {
    let schema = hospital_schema();
    for (name, src) in [
        ("data/hospital.pol", data("hospital.pol")),
        ("examples/policies/clean_staff.pol", example_policy("clean_staff.pol")),
    ] {
        let policy = Policy::parse(&src).unwrap();
        let report = Analyzer::new(&policy)
            .with_schema(&schema)
            .with_source(&src)
            .named(name, Some("hospital.dtd".into()))
            .run();
        assert_eq!(
            report.exit_code(true),
            0,
            "{name} must pass --deny warn:\n{}",
            report.to_text()
        );
    }
}

#[test]
fn d5_dynamic_audit_is_sound_on_figure2_across_backends() {
    let schema = hospital_schema();
    let policy = Policy::parse(&data("hospital.pol")).unwrap();
    let doc = Document::parse_str(&data("figure2.xml")).unwrap();
    let report = Analyzer::new(&policy)
        .with_schema(&schema)
        .named("hospital.pol", Some("hospital.dtd".into()))
        .run_with_document(&doc);
    let audit = report.audit.as_ref().expect("audit ran");
    assert!(audit.dynamic);
    assert_eq!(audit.missed, 0, "zero missed rules:\n{}", report.to_text());
    assert_eq!(audit.divergences, 0, "{}", report.to_text());
    assert_eq!(audit.sign_mismatches, 0, "{}", report.to_text());
    assert_eq!(audit.backends.len(), 3, "all three backends: {:?}", audit.backends);
    assert!(audit.precision() >= 1.0);
    assert!(audit.affected_total > 0, "corpus must exercise real scope changes");
}

#[test]
fn analyzer_publishes_oracle_stats_into_the_registry() {
    let (_, _report) = analyze_flawed();
    let snapshot = xac_obs::prometheus_global();
    for gauge in [
        "xac_analyze_oracle_hits",
        "xac_analyze_oracle_misses",
        "xac_analyze_oracle_hit_rate_permille",
    ] {
        assert!(snapshot.contains(gauge), "registry snapshot missing {gauge}");
    }
}

#[test]
fn schema_free_analysis_still_lints_shadowing_and_conflicts() {
    let src = example_policy("flawed_all5.pol");
    let policy = Policy::parse(&src).unwrap();
    let report = Analyzer::new(&policy).with_source(&src).run();
    // No schema: D1/D4/D5 are out of reach, but the blind containment
    // passes still catch the shadowed rule and the conflicts.
    let codes = report.codes();
    assert!(codes.contains(&"XA002"), "{codes:?}");
    assert!(codes.contains(&"XA003"), "{codes:?}");
    assert!(!codes.contains(&"XA001"), "{codes:?}");
    assert!(!codes.contains(&"XA005"), "{codes:?}");
}
