//! Allocation regression guard for the tracing fast path.
//!
//! The whole premise of the always-on instrumentation is that a span
//! site in cold code costs *nothing* while tracing is disabled: one
//! relaxed atomic load, a disarmed guard, no heap traffic. This test
//! installs a counting [`global_allocator`] and proves it — a disabled
//! [`span`](xac_obs::span) performs **zero** allocations end to end
//! (construction and drop), and so does a disabled
//! [`instant`](xac_obs::trace::instant) and
//! [`record_span`](xac_obs::trace::record_span). If someone adds a
//! `String`/`Vec` to the disarmed path, this fails loudly.
//!
//! This file is its own test binary (see `crates/obs/Cargo.toml`) so
//! the counting allocator wraps only these tests.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// System allocator with a global allocation counter.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

/// Allocations performed by `f`, measured on this thread with no other
/// instrumented work in flight. The counter is global, so the tests
/// below serialize through a lock to keep cross-test noise out.
fn allocs_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    f();
    ALLOCS.load(Ordering::Relaxed) - before
}

static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[test]
fn disabled_span_performs_zero_allocations() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    xac_obs::trace::set_enabled(false);
    // Warm thread-locals (thread id, depth cell) outside the window.
    drop(xac_obs::span("warmup"));
    let n = allocs_during(|| {
        for _ in 0..1000 {
            let _span = xac_obs::span("noalloc.probe");
        }
    });
    assert_eq!(n, 0, "a disabled span must not touch the heap ({n} allocations in 1000 spans)");
}

#[test]
fn disabled_instant_and_record_span_perform_zero_allocations() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    xac_obs::trace::set_enabled(false);
    drop(xac_obs::span("warmup"));
    let n = allocs_during(|| {
        for _ in 0..1000 {
            xac_obs::trace::instant("noalloc.instant");
            xac_obs::trace::record_span("noalloc.backfill", Duration::from_micros(1));
        }
    });
    assert_eq!(n, 0, "disabled instants/backfills must not touch the heap ({n} allocations)");
}

#[test]
fn enabled_span_is_observed_by_the_same_counter() {
    // Sanity check that the counter actually sees the armed path — an
    // enabled span heap-allocates its event — so the zero assertions
    // above cannot be vacuous.
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    xac_obs::trace::set_enabled(true);
    let n = allocs_during(|| {
        let _span = xac_obs::span("noalloc.armed");
    });
    xac_obs::trace::set_enabled(false);
    xac_obs::trace::take_events();
    assert!(n > 0, "the armed path allocates; a zero here means the counter is broken");
}
