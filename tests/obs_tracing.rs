//! Acceptance tests for the `xac-obs` tracing layer under the serving
//! engine:
//!
//! 1. spans emitted by four racing readers and a concurrent writer nest
//!    correctly *per thread* — within one thread spans either disjoint
//!    or strictly contain each other (stack discipline), and a contained
//!    span always carries a greater depth;
//! 2. fault-injection events show up in the trace as instants named
//!    after the fired fault point;
//! 3. the bounded ring buffer drops oldest-first without reordering the
//!    survivors.
//!
//! The trace buffer and the enabled flag are process-global, so every
//! test that touches them holds `TRACE_LOCK` and resets the state first.

use std::sync::{Arc, Barrier, Mutex};
use xac_core::{FaultPlan, System};
use xac_obs::trace;
use xac_obs::{TraceBuffer, TraceEvent, TraceKind};
use xac_policy::policy::hospital_policy;
use xac_serve::{BackendKind, ServeEngine};
use xac_xmlgen::{figure2_document, hospital_schema};

static TRACE_LOCK: Mutex<()> = Mutex::new(());

fn system() -> Arc<System> {
    Arc::new(
        System::builder(hospital_schema(), hospital_policy(), figure2_document())
            .build()
            .unwrap(),
    )
}

fn lock() -> std::sync::MutexGuard<'static, ()> {
    TRACE_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

/// Spans only, grouped by the thread that recorded them.
fn spans_by_tid(events: &[TraceEvent]) -> std::collections::BTreeMap<u64, Vec<&TraceEvent>> {
    let mut by_tid: std::collections::BTreeMap<u64, Vec<&TraceEvent>> = Default::default();
    for e in events.iter().filter(|e| e.kind == TraceKind::Span) {
        by_tid.entry(e.tid).or_default().push(e);
    }
    by_tid
}

#[test]
fn spans_nest_per_thread_under_concurrency() {
    let _g = lock();
    trace::reset();
    trace::set_enabled(true);

    let engine = Arc::new(ServeEngine::for_kind(system(), BackendKind::Native).unwrap());
    const READERS: usize = 4;
    const READS: usize = 50;
    let paths: Vec<_> = ["//patient/name", "//patient", "//psn", "//regular"]
        .iter()
        .map(|q| xac_xpath::parse(q).unwrap())
        .collect();
    let gate = Barrier::new(READERS + 1);
    std::thread::scope(|scope| {
        for reader in 0..READERS {
            let engine = Arc::clone(&engine);
            let paths = &paths;
            let gate = &gate;
            scope.spawn(move || {
                gate.wait();
                for i in 0..READS {
                    engine.query(&paths[(i + reader) % paths.len()]);
                }
            });
        }
        gate.wait();
        engine
            .guarded_delete(&xac_xpath::parse("//regular").unwrap())
            .unwrap();
        engine
            .guarded_delete(&xac_xpath::parse("//patient[psn = \"042\"]/name").unwrap())
            .unwrap();
    });

    trace::set_enabled(false);
    let events = trace::take_events();
    assert_eq!(trace::dropped_events(), 0, "buffer must not overflow here");

    let names: std::collections::BTreeSet<&str> =
        events.iter().map(|e| e.name.as_str()).collect();
    assert!(
        names.len() >= 6,
        "expected >= 6 distinct span names, got {names:?}"
    );
    assert!(names.contains("serve.read"), "reader spans missing: {names:?}");
    assert!(names.contains("serve.update"), "writer spans missing: {names:?}");

    let by_tid = spans_by_tid(&events);
    assert!(
        by_tid.len() > READERS,
        "expected spans from {} threads, got {}",
        READERS + 1,
        by_tid.len()
    );
    for (tid, mut spans) in by_tid {
        spans.sort_by_key(|e| (e.start_ns, std::cmp::Reverse(e.start_ns + e.dur_ns)));
        for i in 0..spans.len() {
            let a = spans[i];
            let a_end = a.start_ns + a.dur_ns;
            for b in &spans[i + 1..] {
                if b.start_ns >= a_end {
                    continue; // disjoint
                }
                let b_end = b.start_ns + b.dur_ns;
                // b starts inside a: stack discipline demands it also
                // *ends* inside a and sits strictly deeper.
                assert!(
                    b_end <= a_end,
                    "tid {tid}: span {} [{}, {}) partially overlaps {} [{}, {})",
                    b.name,
                    b.start_ns,
                    b_end,
                    a.name,
                    a.start_ns,
                    a_end
                );
                if b.start_ns > a.start_ns || b_end < a_end {
                    assert!(
                        b.depth > a.depth,
                        "tid {tid}: nested span {} (depth {}) not deeper than {} (depth {})",
                        b.name,
                        b.depth,
                        a.name,
                        a.depth
                    );
                }
            }
        }
    }
}

#[test]
fn fault_events_appear_at_named_point() {
    let _g = lock();
    trace::reset();
    trace::set_enabled(true);

    let plan = FaultPlan::parse("mid_reannotate@1:error").unwrap();
    let engine =
        ServeEngine::for_kind_with_faults(system(), BackendKind::Native, plan).unwrap();
    // Drive the acceptance write sequence until the one-shot
    // mid-reannotate error trips inside some repair (the first whose
    // plan writes a sign); retry an errored op once, as the recovery
    // tests do. The injection must land in the trace either way.
    let ops: [(&str, Option<&str>); 5] = [
        ("//patient[psn = \"099\"]", Some("treatment")),
        ("//med", None),
        ("//regular", None),
        ("//treatment", Some("regular")),
        ("//patient[psn = \"042\"]/name", None),
    ];
    for (expr, insert_name) in ops {
        let path = xac_xpath::parse(expr).unwrap();
        let run = || match insert_name {
            Some(name) => engine.guarded_insert(&path, name, None),
            None => engine.guarded_delete(&path),
        };
        if run().is_err() {
            run().unwrap();
        }
    }

    trace::set_enabled(false);
    let events = trace::take_events();
    let fault_instants: Vec<_> = events
        .iter()
        .filter(|e| e.kind == TraceKind::Instant && e.name == "fault:mid_reannotate")
        .collect();
    assert_eq!(
        fault_instants.len(),
        1,
        "expected exactly one fault instant, got {:?}",
        events
            .iter()
            .filter(|e| e.kind == TraceKind::Instant)
            .map(|e| e.name.as_str())
            .collect::<Vec<_>>()
    );
    assert_eq!(engine.metrics().faults_injected, 1);
}

#[test]
fn ring_buffer_drops_oldest_first_without_reordering_survivors() {
    // Exercises the public TraceBuffer directly — no global state.
    let buf = TraceBuffer::with_capacity(8);
    for i in 0..20 {
        buf.push(TraceEvent {
            name: format!("e{i}"),
            kind: TraceKind::Span,
            tid: 1,
            depth: 0,
            start_ns: i,
            dur_ns: 0,
            seq: 0,
            trace_id: 0,
        });
    }
    assert_eq!(buf.dropped(), 12);
    let survivors = buf.drain();
    let names: Vec<&str> = survivors.iter().map(|e| e.name.as_str()).collect();
    let expected: Vec<String> = (12..20).map(|i| format!("e{i}")).collect();
    assert_eq!(names, expected, "oldest must go first, survivors in order");
    let seqs: Vec<u64> = survivors.iter().map(|e| e.seq).collect();
    assert!(
        seqs.windows(2).all(|w| w[1] == w[0] + 1),
        "survivor sequence numbers must stay contiguous: {seqs:?}"
    );
}

#[test]
fn ring_buffer_accounts_exactly_under_racing_writers() {
    // Four threads race 100 pushes each into a 64-slot ring. However
    // the interleaving lands, the ring must conserve events exactly:
    // survivors + dropped == pushed, eviction is oldest-first (the
    // survivors are precisely the last `capacity` sequence numbers,
    // contiguous), and nothing is duplicated.
    const WRITERS: usize = 4;
    const PUSHES: u64 = 100;
    const CAP: usize = 64;
    let buf = TraceBuffer::with_capacity(CAP);
    let gate = Barrier::new(WRITERS);
    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            let buf = &buf;
            let gate = &gate;
            scope.spawn(move || {
                gate.wait();
                for i in 0..PUSHES {
                    buf.push(TraceEvent {
                        name: format!("w{w}e{i}"),
                        kind: TraceKind::Span,
                        tid: w as u64,
                        depth: 0,
                        start_ns: i,
                        dur_ns: 0,
                        seq: 0,
                        trace_id: 0,
                    });
                }
            });
        }
    });
    let total = WRITERS as u64 * PUSHES;
    assert_eq!(buf.dropped(), total - CAP as u64, "exact drop accounting");
    let survivors = buf.drain();
    assert_eq!(survivors.len(), CAP);
    let seqs: Vec<u64> = survivors.iter().map(|e| e.seq).collect();
    let expected: Vec<u64> = (total - CAP as u64..total).collect();
    assert_eq!(seqs, expected, "survivors are the newest CAP events, oldest first");
    // Per-writer events retain their own program order.
    for w in 0..WRITERS as u64 {
        let starts: Vec<u64> = survivors
            .iter()
            .filter(|e| e.tid == w)
            .map(|e| e.start_ns)
            .collect();
        assert!(
            starts.windows(2).all(|p| p[0] < p[1]),
            "writer {w} events out of order: {starts:?}"
        );
    }
}
