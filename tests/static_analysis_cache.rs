//! Correctness of the static-analysis memoization layer: the containment
//! oracle must be a transparent cache over `contained_in`, and the
//! precomputed `PolicyAnalysis` must reproduce the free-function trigger
//! and re-annotation plans exactly.
//!
//! Property-style checks run on seeded randomized paths (in-repo
//! [`xac_xmlgen::SplitMix64`], no external property-testing crate), so
//! every run explores the same cases and failures reproduce.

use xac_core::reannotator;
use xac_policy::{trigger, DependencyGraph, PolicyAnalysis};
use xac_xmlgen::{delete_updates, hospital_schema, xmark_schema, SplitMix64};
use xac_xpath::{contained_in, Axis, ContainmentOracle, NodeTest, Path, Qualifier, Step};

const LABELS: &[&str] = &["a", "b", "c", "d"];

fn label(rng: &mut SplitMix64) -> &'static str {
    LABELS[rng.gen_range(0..LABELS.len())]
}

fn random_step(rng: &mut SplitMix64) -> Step {
    let axis = if rng.gen_bool(0.5) { Axis::Child } else { Axis::Descendant };
    let test = if rng.gen_bool(0.75) {
        NodeTest::Name(label(rng).to_string())
    } else {
        NodeTest::Wildcard
    };
    let predicates = (0..rng.gen_range(0..2usize))
        .map(|_| Qualifier::Exists(Path::relative(vec![Step::child(label(rng))])))
        .collect();
    Step { axis, test, predicates }
}

fn random_path(rng: &mut SplitMix64) -> Path {
    let steps = (0..rng.gen_range(1..4usize)).map(|_| random_step(rng)).collect();
    Path::absolute(steps)
}

/// The oracle is a transparent cache: over hundreds of random ordered
/// pairs, cached answers equal fresh `contained_in` calls — on first
/// query (miss path) and on repeat query (hit path) alike.
#[test]
fn oracle_matches_fresh_containment_on_random_pairs() {
    let mut rng = SplitMix64::seed_from_u64(0xCAFE);
    let oracle = ContainmentOracle::new();
    let mut pairs = Vec::new();
    for _ in 0..192 {
        let p = random_path(&mut rng);
        let q = random_path(&mut rng);
        let fresh = contained_in(&p, &q);
        assert_eq!(oracle.contained_in(&p, &q), fresh, "miss path differs: {p} vs {q}");
        pairs.push((p, q, fresh));
    }
    // Second sweep answers from the cache (stats prove it) and must not
    // change a single verdict.
    let misses_before = oracle.stats().misses;
    for (p, q, fresh) in &pairs {
        assert_eq!(oracle.contained_in(p, q), *fresh, "hit path differs: {p} vs {q}");
    }
    assert_eq!(oracle.stats().misses, misses_before, "second sweep recomputed");
    assert!(oracle.stats().hits >= pairs.len() as u64);
}

/// Interning is by canonical form: structurally equal paths constructed
/// separately share one id, so the pair cache stays dense under the
/// repeated-parse pattern of real workloads.
#[test]
fn oracle_agrees_across_reparsed_paths() {
    let mut rng = SplitMix64::seed_from_u64(0xBEEF);
    let oracle = ContainmentOracle::new();
    for _ in 0..64 {
        let p = random_path(&mut rng);
        let q = random_path(&mut rng);
        let first = oracle.contained_in(&p, &q);
        let (p2, q2) = (
            xac_xpath::parse(&p.to_string()).unwrap(),
            xac_xpath::parse(&q.to_string()).unwrap(),
        );
        assert_eq!(oracle.contained_in(&p2, &q2), first, "{p} vs {q} after reparse");
    }
    let stats = oracle.stats();
    assert!(
        stats.distinct_paths <= 2 * 64,
        "reparsed paths interned separately: {} ids",
        stats.distinct_paths
    );
}

/// `PolicyAnalysis::trigger` must reproduce the free-function `trigger`
/// rule-for-rule on the hospital workload, with and without the schema.
#[test]
fn policy_analysis_trigger_matches_free_trigger_on_hospital_workload() {
    let schema = hospital_schema();
    let policies = [
        xac_policy::policy::hospital_policy(),
        xac_policy::redundancy_elimination(&xac_policy::policy::hospital_policy()),
    ];
    let mut updates = delete_updates(&schema, 24, 13);
    updates.push(xac_xpath::parse("//patient/treatment").unwrap());
    updates.push(xac_xpath::parse("//staffinfo/staff").unwrap());
    for policy in &policies {
        let graph = DependencyGraph::build(policy);
        for schema_opt in [None, Some(&schema)] {
            let analysis = PolicyAnalysis::build(policy, schema_opt);
            for u in &updates {
                assert_eq!(
                    analysis.trigger(u),
                    trigger(policy, &graph, u, schema_opt),
                    "trigger diverges on {u} (schema: {})",
                    schema_opt.is_some()
                );
            }
        }
    }
}

/// Same equivalence on the larger XMark schema with a generated policy —
/// the workload shape the Fig. 12 sweep actually runs.
#[test]
fn policy_analysis_trigger_matches_free_trigger_on_xmark() {
    let schema = xmark_schema();
    let doc = xac_xmlgen::xmark_document(xac_xmlgen::XmarkConfig::with_factor(0.001));
    let policy = xac_xmlgen::coverage_policy(&doc, 0.5, 5);
    let graph = DependencyGraph::build(&policy);
    let analysis = PolicyAnalysis::build(&policy, Some(&schema));
    for u in &delete_updates(&schema, 24, 29) {
        assert_eq!(
            analysis.trigger(u),
            trigger(&policy, &graph, u, Some(&schema)),
            "trigger diverges on {u}"
        );
    }
}

/// The re-annotation fast path: `plan_with_analysis` must produce the
/// same plan (triggered rules, reset scopes, annotation query) as the
/// per-call `plan`.
#[test]
fn plan_with_analysis_matches_plan() {
    let schema = hospital_schema();
    let policy = xac_policy::redundancy_elimination(&xac_policy::policy::hospital_policy());
    let graph = DependencyGraph::build(&policy);
    let analysis = PolicyAnalysis::build(&policy, Some(&schema));
    let mut updates = delete_updates(&schema, 16, 41);
    updates.push(xac_xpath::parse("//patient/treatment").unwrap());
    for u in &updates {
        let slow = reannotator::plan(&policy, &graph, u, Some(&schema));
        let fast = reannotator::plan_with_analysis(&analysis, u);
        assert_eq!(fast.triggered_ids(), slow.triggered_ids(), "{u}");
        assert_eq!(
            fast.scope.iter().map(Path::to_string).collect::<Vec<_>>(),
            slow.scope.iter().map(Path::to_string).collect::<Vec<_>>(),
            "{u}"
        );
        assert_eq!(format!("{:?}", fast.query), format!("{:?}", slow.query), "{u}");
    }
}
