//! The three storage backends must enforce identical semantics: same
//! accessible node sets (cross-checked against the Table 2 reference
//! evaluation), same request decisions, on generated documents and
//! policies of varying coverage.

use std::collections::BTreeSet;
use xac_core::{Backend, NativeXmlBackend, RelationalBackend, System};
use xac_xmlgen::{
    coverage_policy_dataset, hospital_document, hospital_schema, query_workload,
    xmark_document, xmark_schema, XmarkConfig,
};

fn backends() -> Vec<Box<dyn Backend>> {
    vec![
        Box::new(RelationalBackend::row()),
        Box::new(RelationalBackend::column()),
        Box::new(NativeXmlBackend::new()),
    ]
}

/// Accessible universal ids of a relational backend; accessible node ids
/// of the native backend mapped through the shredded correspondence.
fn accessible_ids(s: &System, b: &mut dyn Backend) -> BTreeSet<i64> {
    // Reference mapping from the prepared document.
    let shredded = &s.prepared().shredded;
    // Use counts for the trait-level check and the reference mapping for
    // set-level checks on the native backend.
    let reference: BTreeSet<i64> = s
        .reference_accessible()
        .into_iter()
        .map(|n| shredded.id_of(n).expect("accessible nodes are elements"))
        .collect();
    assert_eq!(b.accessible_count().unwrap(), reference.len(), "{}", b.name());
    reference
}

#[test]
fn xmark_coverage_policies_agree() {
    let doc = xmark_document(XmarkConfig::with_factor(0.005));
    let dataset = coverage_policy_dataset(&doc, &[0.25, 0.5, 0.7], 21);
    for (target, policy) in dataset {
        let s = System::new(xmark_schema(), policy, doc.clone()).unwrap();
        let mut expected: Option<BTreeSet<i64>> = None;
        for mut b in backends() {
            s.load(b.as_mut()).unwrap();
            s.annotate(b.as_mut()).unwrap();
            let ids = accessible_ids(&s, b.as_mut());
            match &expected {
                None => expected = Some(ids),
                Some(e) => assert_eq!(
                    &ids, e,
                    "backend {} disagrees at coverage {target}",
                    b.name()
                ),
            }
        }
    }
}

#[test]
fn relational_accessible_set_matches_reference_exactly() {
    let doc = xmark_document(XmarkConfig::with_factor(0.003));
    let (_, policy) = coverage_policy_dataset(&doc, &[0.5], 4).pop().unwrap();
    let s = System::new(xmark_schema(), policy, doc).unwrap();
    let reference: BTreeSet<i64> = s
        .reference_accessible()
        .into_iter()
        .map(|n| s.prepared().shredded.id_of(n).unwrap())
        .collect();
    for kind in [xac_reldb::StorageKind::Row, xac_reldb::StorageKind::Column] {
        let mut b = RelationalBackend::new(kind);
        s.load(&mut b).unwrap();
        s.annotate(&mut b).unwrap();
        assert_eq!(b.accessible_ids().unwrap(), reference, "{kind:?}");
    }
}

#[test]
fn request_decisions_agree_across_backends() {
    let doc = xmark_document(XmarkConfig::with_factor(0.003));
    let (_, policy) = coverage_policy_dataset(&doc, &[0.45], 8).pop().unwrap();
    let s = System::new(xmark_schema(), policy, doc).unwrap();
    let queries = query_workload(&xmark_schema(), 40, 17);

    let mut decisions: Vec<Vec<(usize, bool)>> = Vec::new();
    for mut b in backends() {
        s.load(b.as_mut()).unwrap();
        s.annotate(b.as_mut()).unwrap();
        let ds: Vec<(usize, bool)> = queries
            .iter()
            .map(|q| {
                let d = s.request_path(b.as_mut(), q).unwrap();
                (d.node_count(), d.granted())
            })
            .collect();
        decisions.push(ds);
    }
    assert_eq!(decisions[0], decisions[1], "row vs column");
    assert_eq!(decisions[0], decisions[2], "relational vs native");
    // The workload must be discriminating: some granted, some denied.
    let granted = decisions[0].iter().filter(|(_, g)| *g).count();
    assert!(granted > 0, "no query granted");
    assert!(granted < queries.len(), "no query denied");
}

#[test]
fn hospital_documents_agree_across_seeds() {
    let policy = xac_policy::policy::hospital_policy();
    for seed in [1, 2, 3] {
        let doc = hospital_document(2, 40, seed);
        let s = System::new(hospital_schema(), policy.clone(), doc).unwrap();
        let expected = s.reference_accessible().len();
        for mut b in backends() {
            s.load(b.as_mut()).unwrap();
            s.annotate(b.as_mut()).unwrap();
            assert_eq!(
                b.accessible_count().unwrap(),
                expected,
                "{} seed {seed}",
                b.name()
            );
        }
    }
}

#[test]
fn all_four_policy_semantics_agree() {
    let doc = hospital_document(1, 30, 5);
    for ds in ["deny", "allow"] {
        for cr in ["deny-overrides", "allow-overrides"] {
            let policy = xac_policy::Policy::parse(&format!(
                "default {ds}\nconflict {cr}\n\
                 R1 allow //patient\nR3 deny //patient[treatment]\n\
                 R6 allow //regular\nR5 deny //patient[.//experimental]\n"
            ))
            .unwrap();
            let s = System::new(hospital_schema(), policy, doc.clone()).unwrap();
            let expected = s.reference_accessible().len();
            for mut b in backends() {
                s.load(b.as_mut()).unwrap();
                s.annotate(b.as_mut()).unwrap();
                assert_eq!(
                    b.accessible_count().unwrap(),
                    expected,
                    "{} ds={ds} cr={cr}",
                    b.name()
                );
            }
        }
    }
}
