//! The three storage backends must enforce identical semantics: same
//! accessible node sets (cross-checked against the Table 2 reference
//! evaluation), same request decisions, on generated documents and
//! policies of varying coverage.

use std::collections::BTreeSet;
use xac_core::{AnnotateMode, Backend, NativeXmlBackend, RelationalBackend, System};
use xac_xmlgen::{
    coverage_policy_dataset, hospital_document, hospital_schema, query_workload,
    xmark_document, xmark_schema, XmarkConfig,
};

fn backends() -> Vec<Box<dyn Backend>> {
    vec![
        Box::new(RelationalBackend::row()),
        Box::new(RelationalBackend::column()),
        Box::new(NativeXmlBackend::new()),
    ]
}

/// Accessible universal ids of a relational backend; accessible node ids
/// of the native backend mapped through the shredded correspondence.
fn accessible_ids(s: &System, b: &mut dyn Backend) -> BTreeSet<i64> {
    // Reference mapping from the prepared document.
    let shredded = &s.prepared().shredded;
    // Use counts for the trait-level check and the reference mapping for
    // set-level checks on the native backend.
    let reference: BTreeSet<i64> = s
        .reference_accessible()
        .into_iter()
        .map(|n| shredded.id_of(n).expect("accessible nodes are elements"))
        .collect();
    assert_eq!(b.accessible_count().unwrap(), reference.len(), "{}", b.name());
    reference
}

#[test]
fn xmark_coverage_policies_agree() {
    let doc = xmark_document(XmarkConfig::with_factor(0.005));
    let dataset = coverage_policy_dataset(&doc, &[0.25, 0.5, 0.7], 21);
    for (target, policy) in dataset {
        let s = System::builder(xmark_schema(), policy, doc.clone()).build().unwrap();
        let mut expected: Option<BTreeSet<i64>> = None;
        for mut b in backends() {
            s.load(b.as_mut()).unwrap();
            s.annotate(b.as_mut()).unwrap();
            let ids = accessible_ids(&s, b.as_mut());
            match &expected {
                None => expected = Some(ids),
                Some(e) => assert_eq!(
                    &ids, e,
                    "backend {} disagrees at coverage {target}",
                    b.name()
                ),
            }
        }
    }
}

#[test]
fn relational_accessible_set_matches_reference_exactly() {
    let doc = xmark_document(XmarkConfig::with_factor(0.003));
    let (_, policy) = coverage_policy_dataset(&doc, &[0.5], 4).pop().unwrap();
    let s = System::builder(xmark_schema(), policy, doc).build().unwrap();
    let reference: BTreeSet<i64> = s
        .reference_accessible()
        .into_iter()
        .map(|n| s.prepared().shredded.id_of(n).unwrap())
        .collect();
    for kind in [xac_reldb::StorageKind::Row, xac_reldb::StorageKind::Column] {
        let mut b = RelationalBackend::new(kind);
        s.load(&mut b).unwrap();
        s.annotate(&mut b).unwrap();
        assert_eq!(b.accessible_ids().unwrap(), reference, "{kind:?}");
    }
}

#[test]
fn request_decisions_agree_across_backends() {
    let doc = xmark_document(XmarkConfig::with_factor(0.003));
    let (_, policy) = coverage_policy_dataset(&doc, &[0.45], 8).pop().unwrap();
    let s = System::builder(xmark_schema(), policy, doc).build().unwrap();
    let queries = query_workload(&xmark_schema(), 40, 17);

    let mut decisions: Vec<Vec<(usize, bool)>> = Vec::new();
    for mut b in backends() {
        s.load(b.as_mut()).unwrap();
        s.annotate(b.as_mut()).unwrap();
        let ds: Vec<(usize, bool)> = queries
            .iter()
            .map(|q| {
                let d = s.request_path(b.as_mut(), q).unwrap();
                (d.node_count(), d.granted())
            })
            .collect();
        decisions.push(ds);
    }
    assert_eq!(decisions[0], decisions[1], "row vs column");
    assert_eq!(decisions[0], decisions[2], "relational vs native");
    // The workload must be discriminating: some granted, some denied.
    let granted = decisions[0].iter().filter(|(_, g)| *g).count();
    assert!(granted > 0, "no query granted");
    assert!(granted < queries.len(), "no query denied");
}

#[test]
fn hospital_documents_agree_across_seeds() {
    let policy = xac_policy::policy::hospital_policy();
    for seed in [1, 2, 3] {
        let doc = hospital_document(2, 40, seed);
        let s = System::builder(hospital_schema(), policy.clone(), doc).build().unwrap();
        let expected = s.reference_accessible().len();
        for mut b in backends() {
            s.load(b.as_mut()).unwrap();
            s.annotate(b.as_mut()).unwrap();
            assert_eq!(
                b.accessible_count().unwrap(),
                expected,
                "{} seed {seed}",
                b.name()
            );
        }
    }
}

/// Annotate one system in both relational write modes; assert identical
/// write counts and byte-identical sign state, and return the shared
/// accessible set for cross-backend checks.
fn annotate_both_modes(
    s: &System,
    kind: xac_reldb::StorageKind,
) -> (BTreeSet<i64>, usize) {
    let mut results = Vec::new();
    for mode in [AnnotateMode::PaperFaithful, AnnotateMode::Batched] {
        let mut b = RelationalBackend::with_mode(kind, mode);
        s.load(&mut b).unwrap();
        let writes = s.annotate(&mut b).unwrap();
        results.push((writes, b.sign_map().unwrap(), b.accessible_ids().unwrap()));
    }
    let (paper, batched) = (&results[0], &results[1]);
    assert_eq!(paper.0, batched.0, "write counts diverge on {kind:?}");
    assert_eq!(paper.1, batched.1, "sign state diverges on {kind:?}");
    assert_eq!(paper.2, batched.2, "accessible sets diverge on {kind:?}");
    (paper.2.clone(), paper.0)
}

#[test]
fn annotate_modes_identical_signs_on_hospital_and_xmark() {
    let systems = [
        System::builder(
            hospital_schema(),
            xac_policy::policy::hospital_policy(),
            hospital_document(2, 60, 3),
        ).build()
        .unwrap(),
        {
            let doc = xmark_document(XmarkConfig::with_factor(0.001));
            let (_, policy) = coverage_policy_dataset(&doc, &[0.5], 7).pop().unwrap();
            System::builder(xmark_schema(), policy, doc).build().unwrap()
        },
    ];
    for s in &systems {
        let mut native = NativeXmlBackend::new();
        s.load(&mut native).unwrap();
        s.annotate(&mut native).unwrap();
        let native_count = native.accessible_count().unwrap();
        for kind in [xac_reldb::StorageKind::Row, xac_reldb::StorageKind::Column] {
            let (accessible, _) = annotate_both_modes(s, kind);
            assert_eq!(accessible.len(), native_count, "native vs {kind:?}");
        }
    }
}

/// Both modes must also agree through the update path (delete +
/// re-annotation), where the batched partition map has to stay in sync
/// with the mutated document.
#[test]
fn annotate_modes_identical_signs_after_updates() {
    let doc = xmark_document(XmarkConfig::with_factor(0.001));
    let (_, policy) = coverage_policy_dataset(&doc, &[0.4], 11).pop().unwrap();
    let s = System::builder(xmark_schema(), policy, doc).build().unwrap();
    let u = xac_xpath::parse("//bidder").unwrap();
    let mut states = Vec::new();
    for mode in [AnnotateMode::PaperFaithful, AnnotateMode::Batched] {
        let mut b = RelationalBackend::with_mode(xac_reldb::StorageKind::Row, mode);
        s.load(&mut b).unwrap();
        s.annotate(&mut b).unwrap();
        s.apply_update(&mut b, &u).unwrap();
        s.apply_insert(&mut b, &xac_xpath::parse("//open_auction").unwrap(), "bidder", None)
            .unwrap();
        states.push(b.sign_map().unwrap());
    }
    assert_eq!(states[0], states[1], "sign state diverges after update + insert");
}

/// The acceptance bar for the batched write path: at factor 0.01 on the
/// row backend, writing the accessible set must be at least 5x faster
/// batched than with the paper's per-tuple UPDATE loop — with identical
/// sign outcomes (asserted above and re-asserted here).
#[test]
fn batched_sign_writes_beat_paper_faithful_by_5x_on_row() {
    let doc = xmark_document(XmarkConfig::with_factor(0.01));
    let (_, policy) = coverage_policy_dataset(&doc, &[0.5], 1).pop().unwrap();
    let s = System::builder(xmark_schema(), policy, doc).build().unwrap();
    let (accessible, _) = annotate_both_modes(&s, xac_reldb::StorageKind::Row);

    // Median-of-5 passes per mode over the same target set, interleaving
    // excluded: each backend re-writes its own already-annotated state.
    let median = |mode: AnnotateMode| -> std::time::Duration {
        let mut b = RelationalBackend::with_mode(xac_reldb::StorageKind::Row, mode);
        s.load(&mut b).unwrap();
        s.annotate(&mut b).unwrap();
        let mut samples: Vec<std::time::Duration> = (0..5)
            .map(|_| xac_core::time(|| b.write_signs(&accessible, '+').unwrap()).1)
            .collect();
        samples.sort();
        samples[2]
    };
    let paper = median(AnnotateMode::PaperFaithful);
    let batched = median(AnnotateMode::Batched);
    let speedup = paper.as_secs_f64() / batched.as_secs_f64().max(1e-12);
    assert!(
        speedup >= 5.0,
        "batched write path only {speedup:.1}x faster ({batched:?} vs {paper:?})"
    );
}

#[test]
fn all_four_policy_semantics_agree() {
    let doc = hospital_document(1, 30, 5);
    for ds in ["deny", "allow"] {
        for cr in ["deny-overrides", "allow-overrides"] {
            let policy = xac_policy::Policy::parse(&format!(
                "default {ds}\nconflict {cr}\n\
                 R1 allow //patient\nR3 deny //patient[treatment]\n\
                 R6 allow //regular\nR5 deny //patient[.//experimental]\n"
            ))
            .unwrap();
            let s = System::builder(hospital_schema(), policy, doc.clone()).build().unwrap();
            let expected = s.reference_accessible().len();
            for mut b in backends() {
                s.load(b.as_mut()).unwrap();
                s.annotate(b.as_mut()).unwrap();
                assert_eq!(
                    b.accessible_count().unwrap(),
                    expected,
                    "{} ds={ds} cr={cr}",
                    b.name()
                );
            }
        }
    }
}
