//! Property tests at the whole-pipeline level: for randomized policies
//! and documents, the annotation query materialized in the native store
//! must reproduce the Table 2 reference semantics, under all four
//! `(ds, cr)` combinations.
//!
//! Randomness comes from the seeded in-repo [`xac_xmlgen::SplitMix64`]
//! stream, so every run explores the same cases and failures reproduce.

use std::collections::BTreeSet;
use xac_policy::{AnnotationQuery, ConflictResolution, DefaultSemantics, Effect, Policy, Rule};
use xac_xml::Document;
use xac_xmlgen::SplitMix64;
use xac_xmlstore::{NodeSetExpr, StoredDocument};

// -- random documents over {a,b,c,d} ----------------------------------

const LABELS: &[&str] = &["a", "b", "c", "d"];

fn label(rng: &mut SplitMix64) -> &'static str {
    LABELS[rng.gen_range(0..LABELS.len())]
}

fn attach_random(doc: &mut Document, parent: xac_xml::NodeId, rng: &mut SplitMix64, depth: usize) {
    let n = doc.add_element(parent, label(rng));
    if depth > 0 && rng.gen_bool(0.6) {
        for _ in 0..rng.gen_range(0..4usize) {
            attach_random(doc, n, rng, depth - 1);
        }
    }
}

fn random_document(rng: &mut SplitMix64) -> Document {
    let mut doc = Document::new(label(rng));
    let root = doc.root();
    for _ in 0..rng.gen_range(0..4usize) {
        attach_random(&mut doc, root, rng, 2);
    }
    doc
}

// -- random policies ----------------------------------------------------

fn random_rule_src(rng: &mut SplitMix64) -> String {
    const STEPS: &[&str] = &["a", "b", "c", "d", "*"];
    let mut s = format!("//{}", STEPS[rng.gen_range(0..STEPS.len())]);
    if rng.gen_bool(0.5) {
        s.push_str(&format!("[{}]", STEPS[rng.gen_range(0..STEPS.len())]));
    }
    if rng.gen_bool(0.5) {
        s.push_str(&format!("/{}", STEPS[rng.gen_range(0..STEPS.len())]));
    }
    s
}

fn random_policy(rng: &mut SplitMix64) -> Policy {
    let rules = (0..rng.gen_range(0..6usize))
        .map(|i| {
            Rule::parse(
                format!("G{i}"),
                &random_rule_src(rng),
                if rng.gen_bool(0.5) { Effect::Allow } else { Effect::Deny },
            )
            .expect("generated rule parses")
        })
        .collect();
    Policy::new(
        if rng.gen_bool(0.5) { DefaultSemantics::Allow } else { DefaultSemantics::Deny },
        if rng.gen_bool(0.5) {
            ConflictResolution::AllowOverrides
        } else {
            ConflictResolution::DenyOverrides
        },
        rules,
    )
    .expect("generated ids unique")
}

/// Accessibility as materialized in a native store by the annotation
/// query: the selected nodes get the mark, everything else the default.
fn materialized_accessible(doc: &Document, policy: &Policy) -> BTreeSet<xac_xml::NodeId> {
    let query = AnnotationQuery::from_policy(policy);
    let mut sdoc = StoredDocument::new(doc.clone());
    if let Some(include) = NodeSetExpr::union_of(query.include.clone()) {
        let expr = match NodeSetExpr::union_of(query.except.clone()) {
            Some(except) => include.except(except),
            None => include,
        };
        sdoc.annotate_expr(&expr, query.mark.sign());
    }
    let default_accessible = policy.default_semantics == DefaultSemantics::Allow;
    doc.all_elements()
        .filter(|&n| match sdoc.sign_of(n) {
            Some('+') => true,
            Some(_) => false,
            None => default_accessible,
        })
        .collect()
}

/// The materialized annotation equals the reference semantics for
/// every policy/document pair.
#[test]
fn materialized_annotation_matches_table2() {
    let mut rng = SplitMix64::seed_from_u64(0x21);
    for _ in 0..128 {
        let policy = random_policy(&mut rng);
        let doc = random_document(&mut rng);
        let reference = xac_policy::accessible_nodes(&doc, &policy);
        let materialized = materialized_accessible(&doc, &policy);
        assert_eq!(
            materialized, reference,
            "ds={:?} cr={:?} policy:\n{}",
            policy.default_semantics,
            policy.conflict_resolution,
            policy.to_text()
        );
    }
}

/// Redundancy elimination never changes the semantics.
#[test]
fn optimization_preserves_semantics() {
    let mut rng = SplitMix64::seed_from_u64(0x22);
    for _ in 0..128 {
        let policy = random_policy(&mut rng);
        let doc = random_document(&mut rng);
        let optimized = xac_policy::redundancy_elimination(&policy);
        assert!(optimized.len() <= policy.len());
        assert_eq!(
            xac_policy::accessible_nodes(&doc, &optimized),
            xac_policy::accessible_nodes(&doc, &policy),
            "optimizer changed semantics of:\n{}",
            policy.to_text()
        );
    }
}

/// The security view never leaks: every element in the view
/// corresponds to an accessible element, in both modes.
#[test]
fn security_views_never_leak() {
    let mut rng = SplitMix64::seed_from_u64(0x23);
    for _ in 0..128 {
        let policy = random_policy(&mut rng);
        let doc = random_document(&mut rng);
        let accessible = xac_policy::accessible_nodes(&doc, &policy);
        for mode in [xac_core::ViewMode::Prune, xac_core::ViewMode::Promote] {
            let view = xac_core::security_view(&doc, &accessible, mode);
            // Count elements per label in the view; none may exceed the
            // accessible count of that label (root excepted — it is always
            // emitted as the document shell).
            for label in LABELS {
                let in_view = view
                    .all_elements()
                    .filter(|&n| n != view.root() && view.name(n) == Some(label))
                    .count();
                let allowed = accessible
                    .iter()
                    .filter(|&&n| doc.name(n) == Some(label))
                    .count();
                assert!(
                    in_view <= allowed,
                    "{mode:?}: {in_view} `{label}` elements in view, {allowed} accessible"
                );
            }
            if mode == xac_core::ViewMode::Promote {
                // Promote preserves every accessible non-root element.
                let total_view = view.all_elements().count() - 1;
                let total_accessible =
                    accessible.iter().filter(|&&n| n != doc.root()).count();
                assert_eq!(total_view, total_accessible);
            }
        }
    }
}
