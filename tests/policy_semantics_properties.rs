//! Property tests at the whole-pipeline level: for randomized policies
//! and documents, the annotation query materialized in the native store
//! must reproduce the Table 2 reference semantics, under all four
//! `(ds, cr)` combinations.

use proptest::prelude::*;
use std::collections::BTreeSet;
use xac_policy::{AnnotationQuery, ConflictResolution, DefaultSemantics, Effect, Policy, Rule};
use xac_xml::Document;
use xac_xmlstore::{NodeSetExpr, StoredDocument};

// -- random documents over {a,b,c,d} ----------------------------------

#[derive(Debug, Clone)]
enum Tree {
    Leaf(&'static str),
    Node(&'static str, Vec<Tree>),
}

fn arb_label() -> impl Strategy<Value = &'static str> {
    prop_oneof![Just("a"), Just("b"), Just("c"), Just("d")]
}

fn arb_tree() -> impl Strategy<Value = Tree> {
    let leaf = arb_label().prop_map(Tree::Leaf);
    leaf.prop_recursive(3, 24, 4, |inner| {
        (arb_label(), proptest::collection::vec(inner, 0..4))
            .prop_map(|(l, kids)| Tree::Node(l, kids))
    })
}

fn to_document(tree: &Tree) -> Document {
    fn attach(doc: &mut Document, parent: xac_xml::NodeId, t: &Tree) {
        match t {
            Tree::Leaf(l) => {
                doc.add_element(parent, *l);
            }
            Tree::Node(l, kids) => {
                let n = doc.add_element(parent, *l);
                for k in kids {
                    attach(doc, n, k);
                }
            }
        }
    }
    let (label, kids) = match tree {
        Tree::Leaf(l) => (*l, Vec::new()),
        Tree::Node(l, kids) => (*l, kids.clone()),
    };
    let mut doc = Document::new(label);
    let root = doc.root();
    for k in &kids {
        attach(&mut doc, root, k);
    }
    doc
}

// -- random policies ----------------------------------------------------

fn arb_rule_src() -> impl Strategy<Value = String> {
    let step = prop_oneof![
        Just("a".to_string()),
        Just("b".to_string()),
        Just("c".to_string()),
        Just("d".to_string()),
        Just("*".to_string()),
    ];
    (step.clone(), proptest::option::of(step.clone()), proptest::option::of(step))
        .prop_map(|(first, child, pred)| {
            let mut s = format!("//{first}");
            if let Some(p) = pred {
                s.push_str(&format!("[{p}]"));
            }
            if let Some(c) = child {
                s.push_str(&format!("/{c}"));
            }
            s
        })
}

fn arb_policy() -> impl Strategy<Value = Policy> {
    let rule = (arb_rule_src(), proptest::bool::ANY);
    (
        proptest::bool::ANY,
        proptest::bool::ANY,
        proptest::collection::vec(rule, 0..6),
    )
        .prop_map(|(ds, cr, rules)| {
            let rules = rules
                .into_iter()
                .enumerate()
                .map(|(i, (src, allow))| {
                    Rule::parse(
                        format!("G{i}"),
                        &src,
                        if allow { Effect::Allow } else { Effect::Deny },
                    )
                    .expect("generated rule parses")
                })
                .collect();
            Policy::new(
                if ds { DefaultSemantics::Allow } else { DefaultSemantics::Deny },
                if cr {
                    ConflictResolution::AllowOverrides
                } else {
                    ConflictResolution::DenyOverrides
                },
                rules,
            )
            .expect("generated ids unique")
        })
}

/// Accessibility as materialized in a native store by the annotation
/// query: the selected nodes get the mark, everything else the default.
fn materialized_accessible(doc: &Document, policy: &Policy) -> BTreeSet<xac_xml::NodeId> {
    let query = AnnotationQuery::from_policy(policy);
    let mut sdoc = StoredDocument::new(doc.clone());
    if let Some(include) = NodeSetExpr::union_of(query.include.clone()) {
        let expr = match NodeSetExpr::union_of(query.except.clone()) {
            Some(except) => include.except(except),
            None => include,
        };
        sdoc.annotate_expr(&expr, query.mark.sign());
    }
    let default_accessible = policy.default_semantics == DefaultSemantics::Allow;
    doc.all_elements()
        .filter(|&n| match sdoc.sign_of(n) {
            Some('+') => true,
            Some(_) => false,
            None => default_accessible,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The materialized annotation equals the reference semantics for
    /// every policy/document pair.
    #[test]
    fn materialized_annotation_matches_table2(policy in arb_policy(), t in arb_tree()) {
        let doc = to_document(&t);
        let reference = xac_policy::accessible_nodes(&doc, &policy);
        let materialized = materialized_accessible(&doc, &policy);
        prop_assert_eq!(
            materialized, reference,
            "ds={:?} cr={:?} policy:\n{}",
            policy.default_semantics, policy.conflict_resolution, policy.to_text()
        );
    }

    /// Redundancy elimination never changes the semantics.
    #[test]
    fn optimization_preserves_semantics(policy in arb_policy(), t in arb_tree()) {
        let doc = to_document(&t);
        let optimized = xac_policy::redundancy_elimination(&policy);
        prop_assert!(optimized.len() <= policy.len());
        prop_assert_eq!(
            xac_policy::accessible_nodes(&doc, &optimized),
            xac_policy::accessible_nodes(&doc, &policy),
            "optimizer changed semantics of:\n{}",
            policy.to_text()
        );
    }

    /// The security view never leaks: every element in the view
    /// corresponds to an accessible element, in both modes.
    #[test]
    fn security_views_never_leak(policy in arb_policy(), t in arb_tree()) {
        let doc = to_document(&t);
        let accessible = xac_policy::accessible_nodes(&doc, &policy);
        for mode in [xac_core::ViewMode::Prune, xac_core::ViewMode::Promote] {
            let view = xac_core::security_view(&doc, &accessible, mode);
            // Count elements per label in the view; none may exceed the
            // accessible count of that label (root excepted — it is always
            // emitted as the document shell).
            for label in ["a", "b", "c", "d"] {
                let in_view = view
                    .all_elements()
                    .filter(|&n| n != view.root() && view.name(n) == Some(label))
                    .count();
                let allowed = accessible
                    .iter()
                    .filter(|&&n| doc.name(n) == Some(label))
                    .count();
                prop_assert!(
                    in_view <= allowed,
                    "{mode:?}: {in_view} `{label}` elements in view, {allowed} accessible"
                );
            }
            if mode == xac_core::ViewMode::Promote {
                // Promote preserves every accessible non-root element.
                let total_view = view.all_elements().count() - 1;
                let total_accessible =
                    accessible.iter().filter(|&&n| n != doc.root()).count();
                prop_assert_eq!(total_view, total_accessible);
            }
        }
    }
}
