//! Kill-and-reopen crash-recovery acceptance suite (DESIGN.md §4i).
//!
//! The tentpole invariant: for every storage fault point
//! (`wal_mid_record`, `wal_before_commit`, `page_torn_write`,
//! `checkpoint_mid_flush`), at every transaction position, on all three
//! backends, killing the process at the fault instant and reopening the
//! data dir recovers a `sign_state()` **byte-identical** to an
//! uncrashed reference run:
//!
//! 1. pre-commit faults (`wal_*`) lose exactly the crashed transaction —
//!    recovery lands on the state after the previous commit;
//! 2. post-commit faults (`page_torn_write`, `checkpoint_mid_flush`)
//!    lose nothing — the commit record is durable and the pages are
//!    repaired from the log;
//! 3. the log's folded sign map, the repaired pages, and the replayed
//!    backend agree byte for byte.
//!
//! The direct harness drives [`Durability`] itself so the on-disk bytes
//! at the fault instant are exactly what a crash leaves (cleanup is
//! lazy). The engine-level tests check the same seams through the
//! serving ladder: a WAL fault rolls back by replaying the log, an
//! absorbed page fault commits, quarantine does not outlive a reopen,
//! and recovery is idempotent.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;
use xac_core::{Backend, Error, FaultAction, FaultPlan, FaultPoint, FaultSpec, System};
use xac_policy::policy::hospital_policy;
use xac_serve::{
    BackendKind, Durability, DurabilityConfig, LoggedOp, Request, Response, ServeEngine,
};
use xac_xmlgen::{figure2_document, hospital_schema};

fn system() -> System {
    System::builder(hospital_schema(), hospital_policy(), figure2_document())
        .build()
        .unwrap()
}

/// Fresh scratch dir per scenario; stale state from a previous run is
/// removed so reopen tests never recover someone else's WAL.
fn data_dir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("xac_durability_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The committed transaction sequence: the three guaranteed-applied
/// guarded updates of the fault_recovery sweep sequence.
fn txns() -> Vec<LoggedOp> {
    vec![
        LoggedOp::Insert {
            parent: "//patient[psn = \"099\"]".to_string(),
            name: "treatment".to_string(),
            text: None,
        },
        LoggedOp::Delete { path: "//regular".to_string() },
        LoggedOp::Delete { path: "//patient[psn = \"042\"]/name".to_string() },
    ]
}

/// Apply one logged op through the system's guarded-update path (access
/// check + update + partial re-annotation), asserting it applies.
fn apply_txn(s: &System, b: &mut dyn Backend, op: &LoggedOp) {
    let applied = match op {
        LoggedOp::Delete { path } => s
            .guarded_delete(b, &xac_xpath::parse(path).unwrap())
            .unwrap()
            .applied(),
        LoggedOp::Insert { parent, name, text } => s
            .guarded_insert(b, &xac_xpath::parse(parent).unwrap(), name, text.as_deref())
            .unwrap()
            .applied(),
    };
    assert!(applied, "sequence ops must apply");
}

/// Drive one logged op through the engine's write path.
fn engine_txn(engine: &ServeEngine, op: &LoggedOp) -> xac_core::Result<bool> {
    let g = match op {
        LoggedOp::Delete { path } => engine.guarded_delete(&xac_xpath::parse(path).unwrap())?,
        LoggedOp::Insert { parent, name, text } => {
            engine.guarded_insert(&xac_xpath::parse(parent).unwrap(), name, text.as_deref())?
        }
    };
    Ok(g.applied())
}

fn engine_signs(engine: &ServeEngine) -> BTreeMap<i64, char> {
    engine.with_writer(|b| b.sign_state().unwrap()).unwrap()
}

/// Uncrashed reference: `states[i]` is the sign state after `i`
/// committed transactions (index 0 = the initial annotation).
fn reference_states(kind: BackendKind) -> Vec<BTreeMap<i64, char>> {
    let s = system();
    let mut b = kind.make(s.annotate_mode());
    s.load(b.as_mut()).unwrap();
    s.annotate(b.as_mut()).unwrap();
    let mut states = vec![b.sign_state().unwrap()];
    for op in txns() {
        apply_txn(&s, b.as_mut(), &op);
        states.push(b.sign_state().unwrap());
    }
    states
}

/// One kill-and-reopen cycle: crash at `point` while committing
/// transaction index `crash_at`, reopen, and return the recovered
/// backend's sign state (asserting the log's folded map and the
/// repaired pages agree with it).
fn crash_and_recover(
    kind: BackendKind,
    point: FaultPoint,
    crash_at: usize,
    name: &str,
) -> BTreeMap<i64, char> {
    let dir = data_dir(name);
    std::fs::create_dir_all(&dir).unwrap();
    let config = DurabilityConfig::new(&dir);
    let pre_commit =
        matches!(point, FaultPoint::WalMidRecord | FaultPoint::WalBeforeCommit);
    {
        let s = system();
        let mut b = kind.make(s.annotate_mode());
        s.load(b.as_mut()).unwrap();
        s.annotate(b.as_mut()).unwrap();
        let plan = FaultPlan::new()
            .with(FaultSpec::once(point, FaultAction::Error).skip(crash_at as u32));
        let mut dur = Durability::fresh(
            &config,
            plan,
            b.name(),
            s.annotate_mode().name(),
            &b.sign_state().unwrap(),
            b.epoch(),
        )
        .unwrap();
        for (i, op) in txns().iter().take(crash_at + 1).enumerate() {
            apply_txn(&s, b.as_mut(), op);
            let signs = b.sign_state().unwrap();
            match dur.log_txn(op, &signs, b.epoch()) {
                Ok(_) => assert!(
                    i < crash_at || !pre_commit,
                    "{name}: a pre-commit fault must fail txn {crash_at}"
                ),
                Err(e) => {
                    assert_eq!(i, crash_at, "{name}: fault fired at the wrong txn");
                    assert!(
                        matches!(e, Error::FaultInjected { .. }),
                        "{name}: expected the injected fault, got {e}"
                    );
                }
            }
        }
        // Kill: drop with no cleanup. The dead WAL tail / torn page is
        // left exactly as the fault wrote it.
    }
    let s = system();
    let mut b = kind.make(s.annotate_mode());
    let (dur, report) =
        Durability::recover(&config, FaultPlan::new(), &s, b.as_mut()).unwrap();
    let recovered = b.sign_state().unwrap();
    assert_eq!(report.backend, b.name(), "{name}");
    assert_eq!(
        dur.committed_signs(),
        &recovered,
        "{name}: recovered backend diverged from the log's committed map"
    );
    assert_eq!(
        dur.page_sign_state(),
        recovered,
        "{name}: repaired pages diverged from the recovered state"
    );
    recovered
}

fn kill_and_reopen_sweep(kind: BackendKind) {
    let reference = reference_states(kind);
    for point in FaultPoint::STORAGE {
        let pre_commit =
            matches!(point, FaultPoint::WalMidRecord | FaultPoint::WalBeforeCommit);
        for crash_at in 0..txns().len() {
            let name = format!("{}_{}_{crash_at}", kind.cli_name(), point.name());
            let recovered = crash_and_recover(kind, point, crash_at, &name);
            // A pre-commit crash loses exactly the in-flight txn; a
            // post-commit crash loses nothing.
            let expected = if pre_commit { crash_at } else { crash_at + 1 };
            assert_eq!(
                recovered, reference[expected],
                "{name}: recovered sign state diverged from the uncrashed \
                 reference after {expected} txns"
            );
        }
    }
}

#[test]
fn kill_and_reopen_sweep_native() {
    kill_and_reopen_sweep(BackendKind::Native);
}

#[test]
fn kill_and_reopen_sweep_row() {
    kill_and_reopen_sweep(BackendKind::Row);
}

#[test]
fn kill_and_reopen_sweep_column() {
    kill_and_reopen_sweep(BackendKind::Column);
}

/// Clean shutdown + reopen through the engine: recovery replays the ops
/// and serves the exact pre-shutdown state without re-annotating.
#[test]
fn durable_engine_reopens_byte_identical() {
    for kind in BackendKind::ALL {
        let dir = data_dir(&format!("engine_reopen_{}", kind.cli_name()));
        let config = DurabilityConfig::new(&dir);
        let (golden, epoch_before) = {
            let engine =
                ServeEngine::durable(Arc::new(system()), kind, &config).unwrap();
            assert!(engine.is_durable());
            assert!(engine.recovery().is_none(), "a fresh boot recovers nothing");
            let ops = txns();
            assert!(engine_txn(&engine, &ops[0]).unwrap());
            // Denied updates commit nothing and log nothing (the two
            // denied ops of the canonical sequence, at their usual
            // positions).
            let denied =
                engine.guarded_delete(&xac_xpath::parse("//med").unwrap()).unwrap();
            assert!(!denied.applied());
            assert!(engine_txn(&engine, &ops[1]).unwrap());
            let denied = engine
                .guarded_insert(&xac_xpath::parse("//treatment").unwrap(), "regular", None)
                .unwrap();
            assert!(!denied.applied());
            assert!(engine_txn(&engine, &ops[2]).unwrap());
            let (wal, _pager) = engine.storage_stats().unwrap();
            // The initial annotation is txn 1; then one commit per
            // applied guarded update.
            assert_eq!(wal.commits, 4, "{kind}");
            (engine_signs(&engine), engine.epoch())
        };
        let engine = ServeEngine::durable(Arc::new(system()), kind, &config).unwrap();
        let report = engine.recovery().expect("a reopen must recover");
        assert_eq!(report.ops_replayed, 3, "{kind}");
        assert_eq!(report.wal_truncated_bytes, 0, "clean shutdown leaves no tail");
        assert_eq!(report.torn_pages_repaired, 0, "{kind}");
        assert_eq!(engine_signs(&engine), golden, "{kind}: reopened state diverged");
        assert!(engine.epoch() >= epoch_before, "epochs never regress across reopen");
        assert!(matches!(
            engine.serve(&Request::query("//patient/name")),
            Response::Decision { granted: true, .. }
        ));
    }
}

/// The ladder's rollback rung, durable edition: a WAL fault fails the
/// transaction, the engine replays the log instead of restoring a clone
/// image, and the retry succeeds. Both actions; a reopen agrees.
#[test]
fn wal_faults_roll_back_by_replaying_the_log() {
    let reference = reference_states(BackendKind::Native);
    for (point, action) in [
        ("wal_before_commit", "error"),
        ("wal_mid_record", "error"),
        ("wal_before_commit", "panic"),
        ("wal_mid_record", "panic"),
    ] {
        let label = format!("{point}:{action}");
        let dir = data_dir(&format!("ladder_{point}_{action}"));
        let config = DurabilityConfig::new(&dir);
        let plan = FaultPlan::parse(&label).unwrap();
        {
            let engine = ServeEngine::durable_with_faults(
                Arc::new(system()),
                BackendKind::Native,
                &config,
                plan,
            )
            .unwrap();
            let ops = txns();
            let err = engine_txn(&engine, &ops[0]).unwrap_err();
            // Injected errors and injected panics both keep their
            // classification through the ladder.
            assert!(matches!(err, Error::FaultInjected { .. }), "{label}: {err}");
            assert!(!engine.quarantined(), "{label}: the rollback rung must recover");
            let m = engine.metrics();
            assert_eq!(m.update_errors, 1, "{label}");
            assert_eq!(m.rollbacks, 1, "{label}: the WAL-replay rung ran");
            assert_eq!(
                engine_signs(&engine),
                reference[0],
                "{label}: rolled-back state must equal the initial annotation"
            );
            // The one-shot fault is spent: the retry applies and the
            // rest of the sequence lands.
            for op in &ops {
                assert!(engine_txn(&engine, op).unwrap(), "{label}");
            }
            assert_eq!(engine_signs(&engine), *reference.last().unwrap(), "{label}");
        }
        let engine =
            ServeEngine::durable(Arc::new(system()), BackendKind::Native, &config)
                .unwrap();
        assert_eq!(
            engine_signs(&engine),
            *reference.last().unwrap(),
            "{label}: reopen after the faulted run diverged"
        );
    }
}

/// Post-commit faults are absorbed: the update succeeds, no error
/// surfaces, and a reopen repairs the torn page from the log. The tear
/// is armed on the last transaction so no later flush repairs the disk
/// before the "crash".
#[test]
fn absorbed_page_faults_commit_and_reopen_repairs() {
    let reference = reference_states(BackendKind::Column);
    let dir = data_dir("absorbed");
    let config = DurabilityConfig::new(&dir);
    let plan = FaultPlan::parse("checkpoint_mid_flush+1,page_torn_write+2").unwrap();
    {
        let engine = ServeEngine::durable_with_faults(
            Arc::new(system()),
            BackendKind::Column,
            &config,
            plan,
        )
        .unwrap();
        for op in txns() {
            assert!(
                engine_txn(&engine, &op).unwrap(),
                "absorbed faults must not fail the update"
            );
        }
        let m = engine.metrics();
        assert_eq!(m.update_errors, 0, "post-commit faults never surface");
        assert_eq!(m.rollbacks, 0);
        assert_eq!(engine_signs(&engine), *reference.last().unwrap());
    }
    let engine =
        ServeEngine::durable(Arc::new(system()), BackendKind::Column, &config).unwrap();
    let report = engine.recovery().unwrap();
    assert!(
        report.torn_pages_repaired >= 1,
        "the torn page must be detected and rebuilt: {report:?}"
    );
    assert_eq!(
        engine_signs(&engine),
        *reference.last().unwrap(),
        "absorbed faults lose no committed transaction"
    );
}

/// A WAL written by one backend refuses to recover another — the
/// checkpoint backend-tag-mismatch matrix, ported to the durable path.
#[test]
fn recovery_rejects_backend_tag_mismatch() {
    let dir = data_dir("tag_mismatch");
    let config = DurabilityConfig::new(&dir);
    drop(ServeEngine::durable(Arc::new(system()), BackendKind::Native, &config).unwrap());
    let mode = system().annotate_mode();
    for wrong in [BackendKind::Row, BackendKind::Column] {
        let err = match ServeEngine::durable(Arc::new(system()), wrong, &config) {
            Err(e) => e,
            Ok(_) => panic!("{} must not recover a native wal", wrong.cli_name()),
        };
        match &err {
            Error::Storage { source_kind, context } => {
                assert_eq!(source_kind, "corrupt");
                assert!(context.contains("native/xml"), "{context}");
                assert!(context.contains(wrong.make(mode).name()), "{context}");
            }
            other => panic!("expected a storage error, got {other}"),
        }
    }
    // The matching backend still recovers.
    let engine =
        ServeEngine::durable(Arc::new(system()), BackendKind::Native, &config).unwrap();
    assert!(engine.recovery().is_some());
}

/// Booting fresh over a populated WAL is refused rather than silently
/// truncating history.
#[test]
fn fresh_refuses_a_populated_wal() {
    let dir = data_dir("fresh_refuses");
    let config = DurabilityConfig::new(&dir);
    drop(ServeEngine::durable(Arc::new(system()), BackendKind::Row, &config).unwrap());
    let s = system();
    let mut b = BackendKind::Row.make(s.annotate_mode());
    s.load(b.as_mut()).unwrap();
    s.annotate(b.as_mut()).unwrap();
    let err = match Durability::fresh(
        &config,
        FaultPlan::new(),
        b.name(),
        s.annotate_mode().name(),
        &b.sign_state().unwrap(),
        b.epoch(),
    ) {
        Err(e) => e,
        Ok(_) => panic!("fresh must refuse a populated wal"),
    };
    assert!(
        matches!(&err, Error::Storage { source_kind, .. } if source_kind == "corrupt"),
        "{err}"
    );
}

/// Quarantine is an in-memory verdict; the durable state is the log. A
/// reopen after quarantine comes up clean, serving the last committed
/// transaction — the durable analogue of "restore while quarantined".
#[test]
fn quarantine_does_not_survive_reopen() {
    let dir = data_dir("quarantine");
    let config = DurabilityConfig::new(&dir);
    // Txn 1 (a delete) commits. Txn 2 trips the WAL fault; the rollback
    // replays txn 1, whose delete trips the skipped backend-point spec —
    // the replay fails and the ladder is out of rungs.
    let plan = FaultPlan::parse("wal_before_commit:error+1,before_delete:error+1").unwrap();
    let golden = {
        let engine = ServeEngine::durable_with_faults(
            Arc::new(system()),
            BackendKind::Native,
            &config,
            plan,
        )
        .unwrap();
        let del = xac_xpath::parse("//regular").unwrap();
        assert!(engine.guarded_delete(&del).unwrap().applied());
        let golden = engine_signs(&engine);
        let parent = xac_xpath::parse("//patient[psn = \"099\"]").unwrap();
        let err = engine.guarded_insert(&parent, "treatment", None).unwrap_err();
        assert!(matches!(err, Error::Quarantined { .. }), "{err}");
        assert!(engine.quarantined());
        // Reads outlive the quarantine; writes are rejected.
        assert!(matches!(
            engine.serve(&Request::query("//patient/name")),
            Response::Decision { .. }
        ));
        let rejected = engine.guarded_delete(&del).unwrap_err();
        assert!(matches!(rejected, Error::Quarantined { .. }));
        assert_eq!(engine.metrics().quarantines, 1);
        golden
    };
    let engine =
        ServeEngine::durable(Arc::new(system()), BackendKind::Native, &config).unwrap();
    assert!(!engine.quarantined(), "quarantine must not persist across reopen");
    assert_eq!(engine.recovery().unwrap().ops_replayed, 1);
    assert_eq!(engine_signs(&engine), golden, "reopen serves the last committed state");
    // And the reopened engine accepts writes again.
    let parent = xac_xpath::parse("//patient[psn = \"099\"]").unwrap();
    assert!(engine.guarded_insert(&parent, "treatment", None).unwrap().applied());
}

/// Recovering the same data dir twice is idempotent — the
/// double-restore edge case on the WAL path — and so is the rollback
/// rebuild.
#[test]
fn double_recover_and_double_rebuild_are_idempotent() {
    let dir = data_dir("double_recover");
    let config = DurabilityConfig::new(&dir);
    {
        let engine =
            ServeEngine::durable(Arc::new(system()), BackendKind::Row, &config).unwrap();
        for op in txns() {
            assert!(engine_txn(&engine, &op).unwrap());
        }
    }
    let (first_signs, first_replayed) = {
        let engine =
            ServeEngine::durable(Arc::new(system()), BackendKind::Row, &config).unwrap();
        (engine_signs(&engine), engine.recovery().unwrap().ops_replayed)
    };
    let engine =
        ServeEngine::durable(Arc::new(system()), BackendKind::Row, &config).unwrap();
    assert_eq!(
        engine.recovery().unwrap().ops_replayed,
        first_replayed,
        "the second recover replays the same ops"
    );
    assert_eq!(
        engine_signs(&engine),
        first_signs,
        "the second recover reaches the same state"
    );
    // Double rebuild (the rollback rung run twice in a row) converges
    // to the same committed state both times.
    let s = system();
    let (once, twice) = engine
        .with_durability(|dur| {
            let mut b = BackendKind::Row.make(s.annotate_mode());
            dur.rebuild_backend(&s, b.as_mut()).unwrap();
            let once = b.sign_state().unwrap();
            dur.rebuild_backend(&s, b.as_mut()).unwrap();
            (once, b.sign_state().unwrap())
        })
        .unwrap();
    assert_eq!(once, twice, "rebuild is idempotent");
    assert_eq!(once, first_signs);
}

/// Every committed prefix is recoverable through the engine: dropping
/// the engine *is* the shutdown (there is no flush-on-exit hook), so
/// after any number of applied updates a reopen must land exactly on
/// that prefix of the reference run.
#[test]
fn every_committed_prefix_is_recoverable() {
    let dir = data_dir("prefix");
    let config = DurabilityConfig::new(&dir);
    let reference = reference_states(BackendKind::Native);
    let ops = txns();
    for (committed, expected) in reference.iter().enumerate().skip(1) {
        let _ = std::fs::remove_dir_all(&dir);
        {
            let engine =
                ServeEngine::durable(Arc::new(system()), BackendKind::Native, &config)
                    .unwrap();
            for op in ops.iter().take(committed) {
                assert!(engine_txn(&engine, op).unwrap());
            }
        }
        let engine =
            ServeEngine::durable(Arc::new(system()), BackendKind::Native, &config)
                .unwrap();
        assert_eq!(
            &engine_signs(&engine),
            expected,
            "a prefix of {committed} committed txns must recover exactly"
        );
        assert_eq!(engine.recovery().unwrap().ops_replayed, committed);
    }
}
