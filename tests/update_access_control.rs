//! The §8 future-work extension implemented here: insert updates with
//! re-annotation, and access-controlled (guarded) updates with
//! all-or-nothing write semantics — tested across all backends.

use xac_core::{Backend, GuardedUpdate, NativeXmlBackend, RelationalBackend, System};
use xac_policy::policy::hospital_policy;
use xac_xmlgen::{figure2_document, hospital_document, hospital_schema};

fn backends() -> Vec<Box<dyn Backend>> {
    vec![
        Box::new(RelationalBackend::row()),
        Box::new(RelationalBackend::column()),
        Box::new(NativeXmlBackend::new()),
    ]
}

fn system() -> System {
    System::builder(hospital_schema(), hospital_policy(), figure2_document()).build().unwrap()
}

/// Inserting a treatment under the accessible (treatment-less) patient
/// must flip that patient to denied after re-annotation (R3 applies).
#[test]
fn insert_triggers_reannotation() {
    let s = system();
    let parent = xac_xpath::parse("//patient[psn = \"099\"]").unwrap();
    for mut b in backends() {
        s.load(b.as_mut()).unwrap();
        s.annotate(b.as_mut()).unwrap();
        assert!(s.request(b.as_mut(), "//patient[psn = \"099\"]").unwrap().granted());

        let outcome = s.apply_insert(b.as_mut(), &parent, "treatment", None).unwrap();
        assert_eq!(outcome.inserted_elements, 1, "{}", b.name());
        assert!(outcome.plan.triggered_ids().contains(&"R3"), "{}", b.name());

        assert!(
            !s.request(b.as_mut(), "//patient[psn = \"099\"]").unwrap().granted(),
            "{}: patient must be denied once treated",
            b.name()
        );
    }
}

/// Insert + partial re-annotation must equal full re-annotation.
#[test]
fn insert_consistency_with_full_annotation() {
    let doc = hospital_document(2, 30, 77);
    let s = System::builder(hospital_schema(), hospital_policy(), doc).build().unwrap();
    let parent = xac_xpath::parse("//patient").unwrap();
    for mut b in backends() {
        s.load(b.as_mut()).unwrap();
        s.annotate(b.as_mut()).unwrap();
        // NOTE: patients already having a treatment would become invalid
        // under the schema, but the stores do not re-validate; the policy
        // semantics still apply uniformly, which is what we check.
        s.apply_insert(b.as_mut(), &parent, "treatment", None).unwrap();
        let partial = b.accessible_count().unwrap();

        s.load(b.as_mut()).unwrap();
        s.annotate(b.as_mut()).unwrap();
        b.insert(&parent, "treatment", None).unwrap();
        s.full_reannotate(b.as_mut()).unwrap();
        let full = b.accessible_count().unwrap();

        assert_eq!(partial, full, "{}", b.name());
    }
}

/// Inserted leaf values participate in value predicates.
#[test]
fn inserted_text_is_queryable() {
    let s = system();
    for mut b in backends() {
        s.load(b.as_mut()).unwrap();
        s.annotate(b.as_mut()).unwrap();
        let parent = xac_xpath::parse("//regular").unwrap();
        // The figure-2 regular treatment gains a second med element.
        let n = b.insert(&parent, "med", Some("celecoxib")).unwrap();
        assert_eq!(n, 1, "{}", b.name());
        let (count, _) = b
            .query_nodes_allowed(&xac_xpath::parse("//regular[med = \"celecoxib\"]").unwrap())
            .unwrap();
        assert_eq!(count, 1, "{}", b.name());
    }
}

/// Guarded deletes: denied for inaccessible targets, applied (with
/// re-annotation) for accessible ones.
#[test]
fn guarded_delete_enforces_write_access() {
    let s = system();
    for mut b in backends() {
        s.load(b.as_mut()).unwrap();
        s.annotate(b.as_mut()).unwrap();

        // //med is inaccessible (default deny): the delete is refused and
        // nothing changes.
        let med = xac_xpath::parse("//med").unwrap();
        let before = b.accessible_count().unwrap();
        let g = s.guarded_delete(b.as_mut(), &med).unwrap();
        assert!(!g.applied(), "{}", b.name());
        assert_eq!(b.accessible_count().unwrap(), before, "{}", b.name());
        let (n, _) = b.query_nodes_allowed(&med).unwrap();
        assert_eq!(n, 1, "{}: med must still exist", b.name());

        // //regular is accessible (R6): the delete goes through.
        let regular = xac_xpath::parse("//regular").unwrap();
        let g = s.guarded_delete(b.as_mut(), &regular).unwrap();
        match g {
            GuardedUpdate::Applied(outcome) => {
                assert!(outcome.removed_elements >= 3, "{}", b.name());
            }
            GuardedUpdate::Denied(d) => panic!("{}: denied {d:?}", b.name()),
        }
        let (n, _) = b.query_nodes_allowed(&regular).unwrap();
        assert_eq!(n, 0, "{}: regular must be gone", b.name());
    }
}

/// Guarded inserts: extending an inaccessible parent is refused.
#[test]
fn guarded_insert_enforces_write_access() {
    let s = system();
    for mut b in backends() {
        s.load(b.as_mut()).unwrap();
        s.annotate(b.as_mut()).unwrap();

        // treatment elements are inaccessible: no inserting below them.
        let denied_parent = xac_xpath::parse("//treatment").unwrap();
        let g = s.guarded_insert(b.as_mut(), &denied_parent, "regular", None).unwrap();
        assert!(!g.applied(), "{}", b.name());

        // The accessible patient can receive children.
        let allowed_parent = xac_xpath::parse("//patient[psn = \"099\"]").unwrap();
        let g = s
            .guarded_insert(b.as_mut(), &allowed_parent, "treatment", None)
            .unwrap();
        assert!(g.applied(), "{}", b.name());
    }
}

/// Unknown element types are rejected by the relational backend (no
/// table to put them in) — error, not silent data loss.
#[test]
fn relational_insert_of_unmapped_element_errors() {
    let s = system();
    let mut b = RelationalBackend::row();
    s.load(&mut b).unwrap();
    let parent = xac_xpath::parse("//patient").unwrap();
    assert!(b.insert(&parent, "martian", None).is_err());
}

/// A denied guarded update is a true no-op: the backend's sign state is
/// byte-identical and its epoch unchanged on every backend — readers
/// snapshotting the store can tell nothing happened.
#[test]
fn denied_update_leaves_sign_state_and_epoch_unchanged() {
    let s = system();
    let med = xac_xpath::parse("//med").unwrap();
    let treatment = xac_xpath::parse("//treatment").unwrap();
    for mut b in backends() {
        s.load(b.as_mut()).unwrap();
        s.annotate(b.as_mut()).unwrap();
        let epoch = b.epoch();
        let signs = b.sign_state().unwrap();

        let g = s.guarded_delete(b.as_mut(), &med).unwrap();
        assert!(!g.applied(), "{}", b.name());
        let g = s.guarded_insert(b.as_mut(), &treatment, "regular", None).unwrap();
        assert!(!g.applied(), "{}", b.name());

        assert_eq!(b.epoch(), epoch, "{}: denied updates must not bump the epoch", b.name());
        assert_eq!(
            b.sign_state().unwrap(),
            signs,
            "{}: denied updates must not change sign state",
            b.name()
        );
    }
}

/// `reset_annotations` invalidates snapshots: the epoch advances, so a
/// serving layer knows its published snapshot is stale.
#[test]
fn reset_annotations_advances_epoch() {
    let s = system();
    for mut b in backends() {
        s.load(b.as_mut()).unwrap();
        s.annotate(b.as_mut()).unwrap();
        let annotated = b.epoch();
        b.reset_annotations().unwrap();
        assert!(b.epoch() > annotated, "{}", b.name());
        // Re-annotating advances it again — epochs never repeat.
        s.annotate(b.as_mut()).unwrap();
        assert!(b.epoch() > annotated + 1, "{}", b.name());
    }
}
