//! Protocol robustness suite for the `xac-net` wire layer.
//!
//! Every malformed conversation — wrong magic, version mismatch,
//! unknown-role handshake, garbage/truncated/oversized frames, mid-frame
//! disconnects, clients slower than the read timeout — must be answered
//! with a typed error frame or a clean close. The server must never
//! panic, never hang past its read timeout, and stay healthy for the
//! next well-behaved client. Admission control and per-role rate
//! limiting are exercised over real sockets, and the frame codec is
//! fuzzed with the in-repo SplitMix64 stream.

use std::sync::Arc;
use std::time::Duration;
use xac_core::FaultPlan;
use xac_net::wire::{self, tag, Frame, WireError};
use xac_net::{raw_exchange, NetClient, NetServer, ServerConfig};
use xac_policy::policy::hospital_policy;
use xac_serve::{BackendKind, ErrorKind, Request, Response, Role, ServeEngine};
use xac_xmlgen::{figure2_document, hospital_schema, SplitMix64};

fn engine() -> Arc<ServeEngine> {
    let system = xac_core::System::builder(
        hospital_schema(),
        hospital_policy(),
        figure2_document(),
    )
    .build()
    .unwrap();
    Arc::new(ServeEngine::for_kind(Arc::new(system), BackendKind::Native).unwrap())
}

/// A server with a short read timeout so the slow-client tests finish
/// quickly.
fn server_with(config: ServerConfig) -> NetServer {
    NetServer::start(engine(), config).unwrap()
}

fn quick_server() -> NetServer {
    server_with(ServerConfig {
        read_timeout: Duration::from_millis(250),
        ..ServerConfig::default()
    })
}

/// Decode a raw server reply into frames; panics on undecodable bytes
/// (the server must only ever emit well-formed frames).
fn decode_frames(mut bytes: &[u8]) -> Vec<Frame> {
    let mut out = Vec::new();
    loop {
        match wire::read_frame(&mut bytes) {
            Ok(f) => out.push(f),
            Err(WireError::Closed) => return out,
            Err(e) => panic!("server emitted undecodable bytes: {e}"),
        }
    }
}

/// Hand-build a frame: header, tag, payload.
fn raw_frame(tag_byte: u8, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(5 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.push(tag_byte);
    out.extend_from_slice(payload);
    out
}

/// Hand-build a hello frame for an arbitrary (possibly invalid) role.
fn raw_hello(role: &str) -> Vec<u8> {
    let mut payload = Vec::new();
    payload.extend_from_slice(&(role.len() as u32).to_be_bytes());
    payload.extend_from_slice(role.as_bytes());
    raw_frame(tag::HELLO, &payload)
}

fn preamble() -> Vec<u8> {
    let mut out = Vec::new();
    wire::write_preamble(&mut out).unwrap();
    out
}

const EXCHANGE_TIMEOUT: Duration = Duration::from_secs(5);

#[test]
fn wrong_magic_gets_typed_protocol_error() {
    let server = quick_server();
    let reply =
        raw_exchange(server.local_addr(), b"GET / HTTP/1.1\r\n", EXCHANGE_TIMEOUT).unwrap();
    match &decode_frames(&reply)[..] {
        [Frame::Error { kind: ErrorKind::Protocol, message }] => {
            assert!(message.contains("bad magic"), "got: {message}");
        }
        other => panic!("expected one protocol error frame, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn version_mismatch_gets_typed_protocol_error() {
    let server = quick_server();
    let mut bytes = Vec::from(wire::MAGIC);
    bytes.extend_from_slice(&99u16.to_be_bytes());
    let reply = raw_exchange(server.local_addr(), &bytes, EXCHANGE_TIMEOUT).unwrap();
    match &decode_frames(&reply)[..] {
        [Frame::Error { kind: ErrorKind::Protocol, message }] => {
            assert!(message.contains("version 99"), "got: {message}");
        }
        other => panic!("expected one protocol error frame, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn unknown_role_handshake_gets_the_shared_error_shape() {
    let server = quick_server();
    let mut bytes = preamble();
    bytes.extend_from_slice(&raw_hello("root"));
    let reply = raw_exchange(server.local_addr(), &bytes, EXCHANGE_TIMEOUT).unwrap();
    match &decode_frames(&reply)[..] {
        [Frame::Error { kind: ErrorKind::Protocol, message }] => {
            assert!(
                message.contains(
                    "unknown role `root` (valid roles: reader, writer, admin)"
                ),
                "got: {message}"
            );
        }
        other => panic!("expected one protocol error frame, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn frame_instead_of_hello_is_a_protocol_error() {
    let server = quick_server();
    let mut bytes = preamble();
    bytes.extend_from_slice(&Frame::Request(Request::Status, None).to_bytes());
    let reply = raw_exchange(server.local_addr(), &bytes, EXCHANGE_TIMEOUT).unwrap();
    match &decode_frames(&reply)[..] {
        [Frame::Error { kind: ErrorKind::Protocol, message }] => {
            assert!(message.contains("expected a hello frame"), "got: {message}");
        }
        other => panic!("expected one protocol error frame, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn garbage_tag_after_handshake_is_a_protocol_error() {
    let server = quick_server();
    let mut bytes = preamble();
    bytes.extend_from_slice(&raw_hello("reader"));
    bytes.extend_from_slice(&raw_frame(0xAA, &[1, 2, 3]));
    let reply = raw_exchange(server.local_addr(), &bytes, EXCHANGE_TIMEOUT).unwrap();
    match &decode_frames(&reply)[..] {
        [Frame::Welcome { .. }, Frame::Error { kind: ErrorKind::Protocol, message }] => {
            assert!(message.contains("unknown frame tag"), "got: {message}");
        }
        other => panic!("expected welcome then protocol error, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn truncated_frame_then_disconnect_is_answered_not_hung() {
    let server = quick_server();
    let mut bytes = preamble();
    bytes.extend_from_slice(&raw_hello("reader"));
    let whole = Frame::Request(Request::query("//patient/name"), None).to_bytes();
    bytes.extend_from_slice(&whole[..whole.len() / 2]);
    // raw_exchange closes its write side after sending: the server sees
    // a torn frame, not a slow client.
    let reply = raw_exchange(server.local_addr(), &bytes, EXCHANGE_TIMEOUT).unwrap();
    match &decode_frames(&reply)[..] {
        [Frame::Welcome { .. }, Frame::Error { kind: ErrorKind::Protocol, message }] => {
            assert!(message.contains("truncated"), "got: {message}");
        }
        other => panic!("expected welcome then protocol error, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn oversized_frame_is_refused_from_the_header() {
    let server = quick_server();
    let plan = FaultPlan::parse("net_oversized_frame").unwrap();
    let mut client = NetClient::connect_with(
        server.local_addr(),
        Role::Reader,
        plan,
        Duration::from_millis(50),
    )
    .unwrap();
    match client.query("//patient/name").unwrap() {
        Response::Error { kind: ErrorKind::Protocol, message } => {
            assert!(message.contains("cap is"), "got: {message}");
        }
        other => panic!("expected protocol error, got {other:?}"),
    }
    assert!(client.is_dead(), "the session is over after a protocol error");
    // The server survives for the next client.
    let mut next = NetClient::connect(server.local_addr(), Role::Reader).unwrap();
    assert!(matches!(
        next.query("//patient/name").unwrap(),
        Response::Decision { granted: true, .. }
    ));
    next.close();
    server.shutdown();
}

#[test]
fn mid_frame_disconnect_leaves_server_healthy() {
    let server = quick_server();
    let plan = FaultPlan::parse("net_mid_frame_disconnect").unwrap();
    let mut client = NetClient::connect_with(
        server.local_addr(),
        Role::Writer,
        plan,
        Duration::from_millis(50),
    )
    .unwrap();
    assert_eq!(client.delete("//regular"), Err(WireError::Closed));
    assert!(client.is_dead());
    // The torn delete never reached the engine; a fresh session still
    // sees the nodes and the server still answers.
    let mut next = NetClient::connect(server.local_addr(), Role::Reader).unwrap();
    match next.query("//regular").unwrap() {
        Response::Decision { nodes, .. } => assert!(nodes > 0),
        other => panic!("expected decision, got {other:?}"),
    }
    next.close();
    server.shutdown();
}

#[test]
fn slow_client_is_cut_off_by_the_read_timeout() {
    let server = server_with(ServerConfig {
        read_timeout: Duration::from_millis(100),
        ..ServerConfig::default()
    });
    let plan = FaultPlan::parse("net_slow_client").unwrap();
    let mut client = NetClient::connect_with(
        server.local_addr(),
        Role::Reader,
        plan,
        // Stall well past the server's timeout.
        Duration::from_millis(500),
    )
    .unwrap();
    match client.query("//patient/name").unwrap() {
        Response::Error { kind: ErrorKind::Protocol, message } => {
            assert!(message.contains("timed out"), "got: {message}");
        }
        other => panic!("expected timeout protocol error, got {other:?}"),
    }
    assert!(client.is_dead());
    server.shutdown();
}

#[test]
fn slow_client_within_the_timeout_is_served_normally() {
    let server = server_with(ServerConfig {
        read_timeout: Duration::from_millis(2_000),
        ..ServerConfig::default()
    });
    let plan = FaultPlan::parse("net_slow_client").unwrap();
    let mut client = NetClient::connect_with(
        server.local_addr(),
        Role::Reader,
        plan,
        // Stalls, but inside the server's patience.
        Duration::from_millis(50),
    )
    .unwrap();
    assert!(matches!(
        client.query("//patient/name").unwrap(),
        Response::Decision { granted: true, .. }
    ));
    server.shutdown();
}

#[test]
fn admission_control_refuses_connections_beyond_the_cap() {
    let server = server_with(ServerConfig {
        max_connections: 1,
        read_timeout: Duration::from_millis(500),
        ..ServerConfig::default()
    });
    let first = NetClient::connect(server.local_addr(), Role::Reader).unwrap();
    match NetClient::connect(server.local_addr(), Role::Reader) {
        Err(WireError::Rejected { kind: ErrorKind::RateLimited, message }) => {
            assert!(message.contains("connection limit"), "got: {message}");
        }
        other => panic!("expected admission refusal, got {other:?}"),
    }
    first.close();
    // The slot frees once the first session drains; retry until then.
    let mut admitted = None;
    for _ in 0..500 {
        match NetClient::connect(server.local_addr(), Role::Reader) {
            Ok(c) => {
                admitted = Some(c);
                break;
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    let mut admitted = admitted.expect("slot must free after the first session closes");
    assert!(matches!(
        admitted.query("//psn").unwrap(),
        Response::Decision { .. }
    ));
    admitted.close();
    server.shutdown();
}

#[test]
fn rate_limit_refuses_the_burst_overflow_but_keeps_the_session() {
    let server = server_with(ServerConfig {
        rate_limit: Some(2),
        read_timeout: Duration::from_secs(5),
        ..ServerConfig::default()
    });
    let mut client = NetClient::connect(server.local_addr(), Role::Reader).unwrap();
    assert!(matches!(
        client.query("//psn").unwrap(),
        Response::Decision { .. }
    ));
    assert!(matches!(
        client.query("//psn").unwrap(),
        Response::Decision { .. }
    ));
    match client.query("//psn").unwrap() {
        Response::Error { kind: ErrorKind::RateLimited, message } => {
            assert!(message.contains("reader"), "got: {message}");
        }
        other => panic!("expected rate-limit refusal, got {other:?}"),
    }
    assert!(!client.is_dead(), "rate limiting must not end the session");
    // Waiting out the refill (2 tokens/sec) makes the same session work.
    std::thread::sleep(Duration::from_millis(700));
    assert!(matches!(
        client.query("//psn").unwrap(),
        Response::Decision { .. }
    ));
    client.close();
    server.shutdown();
}

#[test]
fn v1_client_is_served_by_the_v2_server() {
    // A legacy client: version-1 preamble, request frames with no
    // trailing trace context. The v2 server must serve it unchanged.
    let server = quick_server();
    let mut bytes = Vec::new();
    wire::write_preamble_versioned(&mut bytes, 1).unwrap();
    bytes.extend_from_slice(&raw_hello("reader"));
    bytes.extend_from_slice(&Frame::Request(Request::query("//patient/name"), None).to_bytes());
    let reply = raw_exchange(server.local_addr(), &bytes, EXCHANGE_TIMEOUT).unwrap();
    match &decode_frames(&reply)[..] {
        [Frame::Welcome { .. }, Frame::Response(Response::Decision { granted, .. })] => {
            assert!(granted, "v1 client must get the same decision");
        }
        other => panic!("expected welcome + decision, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn v2_trace_context_is_accepted_and_v3_preamble_refused() {
    let server = quick_server();
    // A v2 client sending the trailing trace context is served.
    let trace = wire::WireTrace { trace_id: 0xabcd, parent_span: 9 };
    let mut bytes = preamble();
    bytes.extend_from_slice(&raw_hello("reader"));
    bytes.extend_from_slice(&Frame::Request(Request::Status, Some(trace)).to_bytes());
    let reply = raw_exchange(server.local_addr(), &bytes, EXCHANGE_TIMEOUT).unwrap();
    match &decode_frames(&reply)[..] {
        [Frame::Welcome { .. }, Frame::Response(Response::Status { .. })] => {}
        other => panic!("expected welcome + status, got {other:?}"),
    }
    // A from-the-future preamble is refused with a typed error.
    let mut future = Vec::new();
    wire::write_preamble_versioned(&mut future, wire::VERSION + 1).unwrap();
    let reply = raw_exchange(server.local_addr(), &future, EXCHANGE_TIMEOUT).unwrap();
    match &decode_frames(&reply)[..] {
        [Frame::Error { kind: ErrorKind::Protocol, message }] => {
            assert!(message.contains("version"), "got: {message}");
        }
        other => panic!("expected protocol error, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn truncated_trace_context_on_the_wire_is_a_protocol_error() {
    // A request frame whose declared length includes only *part* of the
    // 24-byte trace trailer: the server must answer with a typed
    // protocol error, never treat it as an untraced request.
    let server = quick_server();
    for keep in [4usize, 8, 12, 16, 23] {
        let full = Frame::Request(Request::Status, Some(wire::WireTrace {
            trace_id: 7,
            parent_span: 1,
        }))
        .to_bytes();
        // Rebuild the frame with the trailer cut to `keep` bytes and the
        // header re-declared to match (so it is a *complete* frame whose
        // payload ends mid-trailer, not a torn stream).
        let payload = &full[5..full.len() - (24 - keep)];
        let mut frame = Vec::new();
        frame.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        frame.push(tag::REQUEST);
        frame.extend_from_slice(payload);
        let mut bytes = preamble();
        bytes.extend_from_slice(&raw_hello("reader"));
        bytes.extend_from_slice(&frame);
        let reply = raw_exchange(server.local_addr(), &bytes, EXCHANGE_TIMEOUT).unwrap();
        match &decode_frames(&reply)[..] {
            [Frame::Welcome { .. }, Frame::Error { kind: ErrorKind::Protocol, message }] => {
                assert!(
                    message.contains("malformed") || message.contains("truncated"),
                    "keep {keep}: got {message}"
                );
            }
            other => panic!("keep {keep}: expected welcome + protocol error, got {other:?}"),
        }
    }
    server.shutdown();
}

#[test]
fn graceful_shutdown_drains_sessions() {
    let server = quick_server();
    let addr = server.local_addr();
    let mut client = NetClient::connect(addr, Role::Reader).unwrap();
    assert!(matches!(
        client.query("//psn").unwrap(),
        Response::Decision { .. }
    ));
    server.shutdown();
    // The server half-closed our read side and exited; the next request
    // fails on the wire instead of hanging.
    assert!(client.query("//psn").is_err() || client.is_dead());
    // And nothing is listening anymore.
    assert!(NetClient::connect(addr, Role::Reader).is_err());
}

// ---- codec fuzzing ------------------------------------------------------

fn rand_string(rng: &mut SplitMix64) -> String {
    const ALPHABET: &[char] =
        &['a', 'b', '/', '[', ']', '=', '"', 'ß', '日', ' ', '\n', '\0'];
    let len = rng.gen_range(0..16usize);
    (0..len)
        .map(|_| ALPHABET[rng.gen_range(0..ALPHABET.len())])
        .collect()
}

fn rand_request(rng: &mut SplitMix64) -> Request {
    match rng.gen_range(0..7u32) {
        0 => Request::query(rand_string(rng)),
        1 => Request::delete(rand_string(rng)),
        2 => Request::insert(
            rand_string(rng),
            rand_string(rng),
            rng.gen_bool(0.5).then(|| rand_string(rng)),
        ),
        3 => Request::Status,
        4 => Request::Scrape,
        5 => Request::tail(rng.next_u64() as u32),
        _ => Request::Metrics,
    }
}

fn rand_trace(rng: &mut SplitMix64) -> Option<wire::WireTrace> {
    rng.gen_bool(0.5).then(|| wire::WireTrace {
        trace_id: (rng.next_u64() as u128) << 64 | rng.next_u64() as u128,
        parent_span: rng.next_u64(),
    })
}

fn rand_response(rng: &mut SplitMix64) -> Response {
    match rng.gen_range(0..8u32) {
        0 => Response::Decision {
            granted: rng.gen_bool(0.5),
            nodes: rng.next_u64(),
            epoch: rng.next_u64(),
        },
        6 => Response::Update {
            applied: rng.gen_bool(0.5),
            removed: rng.next_u64(),
            inserted: rng.next_u64(),
            sign_writes: rng.next_u64(),
            denied_nodes: rng.next_u64(),
            epoch: rng.next_u64(),
        },
        2 => Response::Status {
            backend: rand_string(rng),
            epoch: rng.next_u64(),
            accessible: rng.next_u64(),
            quarantined: rng.gen_bool(0.5),
        },
        3 => Response::Metrics { rendered: rand_string(rng) },
        4 => Response::Scrape { exposition: rand_string(rng) },
        5 => Response::Tail {
            records: (0..rng.gen_range(0..4u32))
                .map(|_| xac_obs::FlightRecord {
                    trace_id: (rng.next_u64() as u128) << 64 | rng.next_u64() as u128,
                    verb: rand_string(rng),
                    backend: rand_string(rng),
                    outcome: rand_string(rng),
                    epoch: rng.next_u64(),
                    decode_us: rng.next_u64(),
                    queue_us: rng.next_u64(),
                    execute_us: rng.next_u64(),
                    total_us: rng.next_u64(),
                    seq: rng.next_u64(),
                })
                .collect(),
        },
        _ => Response::Error {
            kind: ErrorKind::ALL[rng.gen_range(0..ErrorKind::ALL.len())],
            message: rand_string(rng),
        },
    }
}

/// Property: every encodable frame round-trips bit-exactly, and
/// truncating it anywhere yields a typed decode error, never a panic.
#[test]
fn codec_round_trip_property() {
    let mut rng = SplitMix64::seed_from_u64(0x0e7_f2a3e);
    for i in 0..256 {
        let frame = if i % 2 == 0 {
            Frame::Request(rand_request(&mut rng), rand_trace(&mut rng))
        } else {
            Frame::Response(rand_response(&mut rng))
        };
        let bytes = frame.to_bytes();
        let mut r = &bytes[..];
        assert_eq!(wire::read_frame(&mut r).unwrap(), frame, "iteration {i}");
        assert!(r.is_empty());
        let cut = rng.gen_range(1..bytes.len());
        match wire::read_frame(&mut &bytes[..cut]) {
            Err(WireError::Malformed(_)) => {}
            other => panic!("iteration {i}, cut {cut}: got {other:?}"),
        }
    }
}

/// Property: random byte soup never panics the frame reader — it
/// decodes or fails with a typed error.
#[test]
fn codec_survives_byte_soup() {
    let mut rng = SplitMix64::seed_from_u64(0x0b17_50e7);
    for _ in 0..256 {
        let len = rng.gen_range(0..64usize);
        let bytes: Vec<u8> = (0..len).map(|_| rng.gen_range(0..=255u32) as u8).collect();
        let _ = wire::read_frame(&mut &bytes[..]);
    }
}
