//! Acceptance test for the serving engine: concurrent readers against a
//! writer applying guarded updates.
//!
//! The invariants checked:
//!
//! 1. every read observes a *consistent* epoch — its (epoch,
//!    accessible-count, decision) triple matches the state a
//!    single-threaded `System` replay of the same update sequence had at
//!    that exact epoch, and epochs observed by one thread never go
//!    backwards;
//! 2. the final sign state is byte-identical to the single-threaded
//!    replay's;
//! 3. the metrics account for every request issued:
//!    `allowed + denied + errors == issued` on both paths.

use std::collections::BTreeMap;
use std::sync::{Arc, Barrier};
use xac_core::{Backend, System};
use xac_policy::policy::hospital_policy;
use xac_serve::{BackendKind, Request, Response, ServeEngine};
use xac_xmlgen::{figure2_document, hospital_schema};
use xac_xpath::Path;

const READERS: usize = 4;
const READS_PER_READER: usize = 250;

fn system() -> System {
    System::builder(hospital_schema(), hospital_policy(), figure2_document())
        .build()
        .unwrap()
}

/// The guarded update sequence the writer applies: three that write
/// access allows (insert under the treatment-less patient, delete the
/// accessible regular treatment, delete an accessible name) and two the
/// access check must refuse (delete the inaccessible med, insert under
/// an inaccessible treatment).
enum Op {
    Delete(&'static str, bool),
    Insert(&'static str, &'static str, bool),
}

fn write_sequence() -> Vec<Op> {
    vec![
        Op::Insert("//patient[psn = \"099\"]", "treatment", true),
        Op::Delete("//med", false),
        Op::Delete("//regular", true),
        Op::Insert("//treatment", "regular", false),
        Op::Delete("//patient[psn = \"042\"]/name", true),
    ]
}

const READ_QUERIES: [&str; 4] = ["//patient/name", "//patient", "//psn", "//regular"];

fn read_paths() -> Vec<Path> {
    READ_QUERIES.iter().map(|q| xac_xpath::parse(q).unwrap()).collect()
}

/// State the replay had at one epoch: accessible count plus the decision
/// for each read path.
#[derive(Debug, Clone, PartialEq, Eq)]
struct EpochState {
    accessible: usize,
    granted: Vec<bool>,
}

fn observe(b: &mut dyn Backend, paths: &[Path]) -> (u64, EpochState) {
    let snap = b.snapshot().unwrap();
    let state = EpochState {
        accessible: snap.accessible_count(),
        granted: paths.iter().map(|p| snap.query(p).granted()).collect(),
    };
    (snap.epoch(), state)
}

/// Run the update sequence on a fresh single-threaded `System` + backend
/// of the same kind; return the per-epoch states and the final sign
/// state. Backend epochs are a deterministic mutation counter, so the
/// replay's epochs are exactly the ones the engine publishes.
fn single_threaded_replay(
    kind: BackendKind,
    paths: &[Path],
) -> (BTreeMap<u64, EpochState>, BTreeMap<i64, char>, usize) {
    let s = system();
    let mut b = kind.make(s.annotate_mode());
    s.load(b.as_mut()).unwrap();
    s.annotate(b.as_mut()).unwrap();
    let mut epochs = BTreeMap::new();
    let (e0, st0) = observe(b.as_mut(), paths);
    epochs.insert(e0, st0);
    let mut applied = 0;
    for op in write_sequence() {
        let g = match op {
            Op::Delete(expr, _) => {
                s.guarded_delete(b.as_mut(), &xac_xpath::parse(expr).unwrap()).unwrap()
            }
            Op::Insert(parent, name, _) => {
                let parent = xac_xpath::parse(parent).unwrap();
                s.guarded_insert(b.as_mut(), &parent, name, None).unwrap()
            }
        };
        let expect = match op {
            Op::Delete(_, a) | Op::Insert(_, _, a) => a,
        };
        assert_eq!(g.applied(), expect, "replay on {}", b.name());
        if g.applied() {
            applied += 1;
            let (e, st) = observe(b.as_mut(), paths);
            epochs.insert(e, st);
        }
    }
    (epochs, b.sign_state().unwrap(), applied)
}

fn concurrent_serve(kind: BackendKind) {
    let paths = read_paths();
    let (epoch_states, expected_signs, applied) = single_threaded_replay(kind, &paths);
    assert_eq!(applied, 3, "the sequence must contain 3 applied updates");

    let engine = Arc::new(ServeEngine::for_kind(Arc::new(system()), kind).unwrap());
    let start = Barrier::new(READERS + 1);
    // (path index, epoch observed, granted, accessible count) per read.
    let mut observations: Vec<(usize, u64, bool, usize)> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for reader in 0..READERS {
            let engine = Arc::clone(&engine);
            let paths = &paths;
            let start = &start;
            handles.push(scope.spawn(move || {
                start.wait();
                let mut seen = Vec::with_capacity(READS_PER_READER);
                let mut last_epoch = 0;
                for i in 0..READS_PER_READER {
                    let idx = (i + reader) % paths.len();
                    // The unified request path: decision and epoch come
                    // from one response, so they belong to one snapshot
                    // by construction, and the engine's metrics count
                    // the read.
                    let (granted, epoch) =
                        match engine.serve(&Request::query(READ_QUERIES[idx])) {
                            Response::Decision { granted, epoch, .. } => (granted, epoch),
                            other => panic!("query answered with {other:?}"),
                        };
                    let snap = engine.snapshot();
                    assert!(
                        epoch >= last_epoch,
                        "epoch went backwards: {epoch} after {last_epoch}"
                    );
                    last_epoch = epoch;
                    // The separately-fetched snapshot is itself consistent.
                    let count = snap.accessible_count();
                    seen.push((idx, epoch, granted, count));
                    let _ = snap;
                }
                seen
            }));
        }
        start.wait();
        // The writer: same guarded sequence, against the live engine.
        for op in write_sequence() {
            let g = match op {
                Op::Delete(expr, _) => {
                    engine.guarded_delete(&xac_xpath::parse(expr).unwrap()).unwrap()
                }
                Op::Insert(parent, name, _) => {
                    let parent = xac_xpath::parse(parent).unwrap();
                    engine.guarded_insert(&parent, name, None).unwrap()
                }
            };
            let expect = match op {
                Op::Delete(_, a) | Op::Insert(_, _, a) => a,
            };
            assert_eq!(g.applied(), expect, "engine on {}", engine.backend_name());
        }
        for h in handles {
            observations.extend(h.join().unwrap());
        }
    });

    // 1. Every read observed an epoch the single-threaded replay also
    //    reached, with the exact decision the replay had at that epoch.
    for (idx, epoch, granted, _count) in &observations {
        let state = epoch_states.get(epoch).unwrap_or_else(|| {
            panic!("{}: read observed unpublished epoch {epoch}", engine.backend_name())
        });
        assert_eq!(
            *granted, state.granted[*idx],
            "{}: inconsistent decision for path {idx} at epoch {epoch}",
            engine.backend_name()
        );
    }
    // The separately-fetched snapshots must match some published state
    // too (they may be newer than the read's epoch, never torn).
    let valid_counts: Vec<usize> = epoch_states.values().map(|s| s.accessible).collect();
    for (_, _, _, count) in &observations {
        assert!(
            valid_counts.contains(count),
            "{}: snapshot accessible count {count} matches no published epoch",
            engine.backend_name()
        );
    }

    // 2. Final sign state is byte-identical to the replay's.
    let final_signs = engine.with_writer(|b| b.sign_state().unwrap()).unwrap();
    assert_eq!(
        final_signs,
        expected_signs,
        "{}: concurrent sign state diverged from single-threaded replay",
        engine.backend_name()
    );
    let last_epoch = *epoch_states.keys().last().unwrap();
    assert_eq!(engine.epoch(), last_epoch, "{}", engine.backend_name());

    // 3. Metrics account for every request issued.
    let m = engine.metrics();
    assert_eq!(
        m.reads_issued(),
        (READERS * READS_PER_READER) as u64,
        "{}: reads_allowed + reads_denied + read_errors must equal reads issued",
        engine.backend_name()
    );
    assert_eq!(m.read_errors, 0);
    assert_eq!(m.updates_applied, 3, "{}", engine.backend_name());
    assert_eq!(m.updates_denied, 2, "{}", engine.backend_name());
    assert_eq!(m.update_errors, 0);
    assert_eq!(m.updates_issued(), 5);
    // Initial publication + one per applied update.
    assert_eq!(m.epochs_published, 4, "{}", engine.backend_name());
    assert_eq!(m.current_epoch, last_epoch);
    assert_eq!(m.read_latency.count, m.reads_issued());
    assert_eq!(m.update_latency.count, m.updates_issued());
    assert_eq!(m.full_fallbacks, 0);
}

#[test]
fn concurrent_serving_native() {
    concurrent_serve(BackendKind::Native);
}

#[test]
fn concurrent_serving_row() {
    concurrent_serve(BackendKind::Row);
}

#[test]
fn concurrent_serving_column() {
    concurrent_serve(BackendKind::Column);
}

/// `reset_annotations` invalidates the epoch: a snapshot taken before is
/// stale (its epoch differs from the backend's) and the backend's sign
/// state actually changed.
#[test]
fn reset_annotations_invalidates_epoch() {
    let s = system();
    for kind in BackendKind::ALL {
        let mut b = kind.make(s.annotate_mode());
        s.load(b.as_mut()).unwrap();
        s.annotate(b.as_mut()).unwrap();
        let before = b.snapshot().unwrap();
        b.reset_annotations().unwrap();
        assert!(
            b.epoch() > before.epoch(),
            "{}: reset_annotations must advance the epoch",
            b.name()
        );
        // The stale snapshot still answers from its own frozen state.
        assert_eq!(before.accessible_count(), before.accessible().len());
    }
}
