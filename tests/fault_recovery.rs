//! Fault-recovery acceptance sweep: every fault point × every backend,
//! errors and panics, against the serving engine's degradation ladder.
//!
//! For each scenario the writer drives the same guarded-update sequence
//! as `serve_concurrency.rs` with a one-shot fault armed, retrying an
//! operation once when it errors. The invariants:
//!
//! 1. after recovery the backend's `sign_state()` is byte-identical to
//!    a no-fault single-threaded replay of the same sequence;
//! 2. the published epoch never goes backwards, and readers during the
//!    faulted run only observe states some committed epoch of the
//!    replay also had — never a half-applied one;
//! 3. the metrics accounting identity holds: every guarded call lands
//!    in exactly one of applied / denied / errors / rejected;
//! 4. an injected panic leaves the engine serving reads (quarantined at
//!    worst), never poisoned.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use xac_core::{Error, FaultPlan, GuardedUpdate, System};
use xac_serve::{BackendKind, Request, Response, ServeEngine};
use xac_policy::policy::hospital_policy;
use xac_xmlgen::{figure2_document, hospital_schema};

fn system() -> System {
    System::builder(hospital_schema(), hospital_policy(), figure2_document())
        .build()
        .unwrap()
}

/// The guarded sequence: three applied, two denied (same as the
/// serve_concurrency acceptance test).
enum Op {
    Delete(&'static str, bool),
    Insert(&'static str, &'static str, bool),
}

fn write_sequence() -> Vec<Op> {
    vec![
        Op::Insert("//patient[psn = \"099\"]", "treatment", true),
        Op::Delete("//med", false),
        Op::Delete("//regular", true),
        Op::Insert("//treatment", "regular", false),
        Op::Delete("//patient[psn = \"042\"]/name", true),
    ]
}

fn apply_op(engine: &ServeEngine, op: &Op) -> xac_core::Result<GuardedUpdate> {
    match op {
        Op::Delete(expr, _) => engine.guarded_delete(&xac_xpath::parse(expr).unwrap()),
        Op::Insert(parent, name, _) => {
            engine.guarded_insert(&xac_xpath::parse(parent).unwrap(), name, None)
        }
    }
}

fn expected(op: &Op) -> bool {
    match op {
        Op::Delete(_, a) | Op::Insert(_, _, a) => *a,
    }
}

/// No-fault single-threaded replay: final sign state plus the
/// accessible count at every committed state (the only states readers
/// may ever observe).
fn replay(kind: BackendKind) -> (BTreeMap<i64, char>, BTreeSet<usize>) {
    let s = system();
    let mut b = kind.make(s.annotate_mode());
    s.load(b.as_mut()).unwrap();
    s.annotate(b.as_mut()).unwrap();
    let mut counts = BTreeSet::new();
    counts.insert(b.snapshot().unwrap().accessible_count());
    for op in write_sequence() {
        let g = match op {
            Op::Delete(expr, _) => {
                s.guarded_delete(b.as_mut(), &xac_xpath::parse(expr).unwrap()).unwrap()
            }
            Op::Insert(parent, name, _) => {
                s.guarded_insert(b.as_mut(), &xac_xpath::parse(parent).unwrap(), name, None)
                    .unwrap()
            }
        };
        assert_eq!(g.applied(), expected(&op), "no-fault replay on {}", b.name());
        if g.applied() {
            counts.insert(b.snapshot().unwrap().accessible_count());
        }
    }
    (b.sign_state().unwrap(), counts)
}

/// The one-shot plan exercising a fault point during serving. `+1`
/// skips spare the arrival `ServeEngine::new` makes at startup;
/// `before_annotate` only fires on the full-re-annotation fallback, so
/// its scenario arms a `mid_reannotate` error to force that rung first.
fn plan_for(point: &str, action: &str) -> FaultPlan {
    let spec = match point {
        "before_annotate" => format!("mid_reannotate@1:error,before_annotate:{action}+1"),
        "mid_reannotate" => format!("mid_reannotate@1:{action}"),
        "before_snapshot" | "before_checkpoint" => format!("{point}:{action}+1"),
        _ => format!("{point}:{action}"),
    };
    FaultPlan::parse(&spec).unwrap()
}

/// Drive the sequence against a faulted engine, retrying each errored
/// operation once (the plans are one-shot, so the retry must succeed).
/// Returns how many operations surfaced an error.
fn drive(engine: &ServeEngine) -> u64 {
    let mut errors = 0u64;
    for op in write_sequence() {
        match apply_op(engine, &op) {
            Ok(g) => assert_eq!(g.applied(), expected(&op)),
            Err(e) => {
                assert!(
                    !matches!(e, Error::Quarantined { .. }),
                    "sweep plans must never quarantine, got: {e}"
                );
                errors += 1;
                let g = apply_op(engine, &op).unwrap_or_else(|e2| {
                    panic!("retry after one-shot fault failed: {e2} (first: {e})")
                });
                assert_eq!(g.applied(), expected(&op));
            }
        }
    }
    errors
}

/// Points swept with a plain one-shot spec at both actions.
/// `before_restore` is exercised by the quarantine tests instead — a
/// restore fault by construction defeats the rollback rung.
const SWEPT_POINTS: [&str; 10] = [
    "before_annotate",
    "before_delete",
    "after_delete",
    "before_insert",
    "after_insert",
    "before_reannotate",
    "mid_reannotate",
    "after_reannotate",
    "before_snapshot",
    "before_checkpoint",
];

fn sweep(kind: BackendKind) {
    let (golden_signs, valid_counts) = replay(kind);
    for point in SWEPT_POINTS {
        for action in ["error", "panic"] {
            let engine = Arc::new(
                ServeEngine::for_kind_with_faults(
                    Arc::new(system()),
                    kind,
                    plan_for(point, action),
                )
                .unwrap(),
            );
            // A reader races the faulted writer: it may only ever see
            // committed states, with a monotone epoch.
            let stop = AtomicBool::new(false);
            let start = Barrier::new(2);
            let errors = std::thread::scope(|scope| {
                let reader_engine = Arc::clone(&engine);
                let reader_counts = &valid_counts;
                let (stop, start) = (&stop, &start);
                let reader = scope.spawn(move || {
                    start.wait();
                    let mut last_epoch = 0u64;
                    let mut observed = 0usize;
                    // At least one read even if the writer already won
                    // the race to finish.
                    loop {
                        let snap = reader_engine.snapshot();
                        assert!(snap.epoch() >= last_epoch, "epoch went backwards");
                        last_epoch = snap.epoch();
                        assert!(
                            reader_counts.contains(&snap.accessible_count()),
                            "reader observed uncommitted state: {} accessible at epoch {}",
                            snap.accessible_count(),
                            snap.epoch()
                        );
                        observed += 1;
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                    }
                    observed
                });
                start.wait();
                let errors = drive(&engine);
                stop.store(true, Ordering::Relaxed);
                assert!(reader.join().unwrap() > 0);
                errors
            });
            let label = format!("{}/{point}:{action}", kind.cli_name());
            assert!(!engine.quarantined(), "{label}: must recover, not quarantine");
            assert_eq!(
                engine.with_writer(|b| b.sign_state().unwrap()).unwrap(),
                golden_signs,
                "{label}: post-recovery sign state diverged from no-fault replay"
            );
            let m = engine.metrics();
            assert_eq!(m.updates_applied, 3, "{label}");
            assert_eq!(m.updates_denied, 2, "{label}");
            assert_eq!(m.update_errors, errors, "{label}");
            assert_eq!(m.rejected_while_quarantined, 0, "{label}");
            assert_eq!(m.updates_issued(), 5 + errors, "{label}: accounting identity");
            assert_eq!(m.update_latency.count, m.updates_issued(), "{label}");
            assert!(m.faults_injected >= 1, "{label}: the armed fault must fire");
            assert_eq!(m.quarantines, 0, "{label}");
            // Errors that surfaced were rolled back; absorbed ones fell
            // back to full re-annotation instead.
            assert!(
                m.rollbacks + m.full_fallbacks >= errors.max(1),
                "{label}: every fault must land on a ladder rung \
                 (rollbacks {} + fallbacks {})",
                m.rollbacks,
                m.full_fallbacks
            );
        }
    }
}

#[test]
fn fault_sweep_native() {
    sweep(BackendKind::Native);
}

#[test]
fn fault_sweep_row() {
    sweep(BackendKind::Row);
}

#[test]
fn fault_sweep_column() {
    sweep(BackendKind::Column);
}

/// `before_restore` defeats the rollback rung: the engine must end in
/// read-only quarantine — still serving reads at the last-good epoch,
/// rejecting writes with the structured error.
fn quarantine_scenario(kind: BackendKind, restore_action: &str) {
    let plan =
        FaultPlan::parse(&format!("after_delete:error,before_restore:{restore_action}")).unwrap();
    let engine =
        ServeEngine::for_kind_with_faults(Arc::new(system()), kind, plan).unwrap();
    // Op 1 applies cleanly and publishes.
    let g = apply_op(&engine, &write_sequence()[0]).unwrap();
    assert!(g.applied());
    let last_good_epoch = engine.epoch();
    let accessible = engine.accessible_count();
    // Op 3 (the first real delete) trips `after_delete`; the rollback
    // trips `before_restore`; the ladder is out of rungs.
    let err = apply_op(&engine, &write_sequence()[2]).unwrap_err();
    let label = format!("{}:{restore_action}", kind.cli_name());
    match &err {
        Error::Quarantined { last_good_epoch: e, cause } => {
            assert_eq!(*e, last_good_epoch, "{label}");
            assert!(cause.contains("before_restore") || cause.contains("restore"), "{label}: {cause}");
        }
        other => panic!("{label}: expected Quarantined, got {other}"),
    }
    assert!(engine.quarantined(), "{label}");
    assert!(engine.quarantine_cause().is_some(), "{label}");
    // Reads survive, frozen at the last-good epoch.
    assert_eq!(engine.epoch(), last_good_epoch, "{label}");
    assert_eq!(engine.accessible_count(), accessible, "{label}");
    assert!(
        matches!(
            engine.serve(&Request::query("//patient/name")),
            Response::Decision { granted: true, .. }
        ),
        "{label}"
    );
    // Writes are rejected with the structured error, and counted.
    let rejected = apply_op(&engine, &write_sequence()[4]).unwrap_err();
    assert!(matches!(rejected, Error::Quarantined { .. }), "{label}: {rejected}");
    let m = engine.metrics();
    assert_eq!(m.quarantines, 1, "{label}");
    assert_eq!(m.rejected_while_quarantined, 1, "{label}");
    assert_eq!(m.updates_applied, 1, "{label}");
    assert_eq!(m.update_errors, 1, "{label}");
    assert_eq!(m.updates_issued(), 3, "{label}: accounting identity");
    assert_eq!(m.rollbacks, 0, "{label}: the restore never completed");
    assert!(m.faults_injected >= 2, "{label}: both armed faults fired");
    assert_eq!(m.current_epoch, last_good_epoch, "{label}");
}

#[test]
fn quarantine_when_restore_fails() {
    for kind in BackendKind::ALL {
        quarantine_scenario(kind, "error");
        quarantine_scenario(kind, "panic");
    }
}

/// A panic seeded mid-update must leave the engine functional (rolled
/// back), and the recovery must be replayable: the same seed twice
/// produces byte-identical outcomes.
#[test]
fn seeded_plans_are_replayable() {
    let run = |seed: u64| {
        let plan = xac_serve::seeded_fault_plan(seed, 4);
        let engine =
            ServeEngine::for_kind_with_faults(Arc::new(system()), BackendKind::Row, plan)
                .unwrap();
        for op in write_sequence() {
            // Retry until the one-shot specs at this point are spent.
            for _ in 0..6 {
                match apply_op(&engine, &op) {
                    Ok(g) => {
                        assert_eq!(g.applied(), expected(&op));
                        break;
                    }
                    Err(e) => assert!(!matches!(e, Error::Quarantined { .. }), "{e}"),
                }
            }
        }
        let signs = engine.with_writer(|b| b.sign_state().unwrap()).unwrap();
        let m = engine.metrics();
        (signs, m.faults_injected, m.rollbacks, m.full_fallbacks, m.updates_issued())
    };
    let (golden, _) = (replay(BackendKind::Row).0, ());
    for seed in [7u64, 1234] {
        let a = run(seed);
        let b = run(seed);
        assert_eq!(a, b, "seed {seed}: replay must be byte-identical");
        assert_eq!(a.0, golden, "seed {seed}: recovery must reach the no-fault state");
    }
}
